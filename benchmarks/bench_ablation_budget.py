"""Ablation — view selection under a storage budget (DESIGN.md §6).

The paper's problem is unconstrained; real warehouses cap the space
materialized views may occupy.  This benchmark sweeps the budget from
zero to the unconstrained design's footprint and traces the cost/space
trade-off curve, checking monotonicity and that the heuristic stays close
to the budget-constrained exhaustive optimum.
"""

from repro.analysis import format_blocks, render_table
from repro.mvpp import MVPPCostCalculator, exhaustive_optimal, select_views


def sweep(paper_mvpp):
    calc = MVPPCostCalculator(paper_mvpp)
    unconstrained = select_views(paper_mvpp, calc, refine=True)
    footprint = sum(v.stats.blocks for v in unconstrained.materialized)
    rows = []
    for fraction in (0.0, 0.05, 0.25, 0.5, 0.75, 1.0):
        budget = footprint * fraction
        chosen = select_views(
            paper_mvpp, calc, refine=True, space_budget=budget
        )
        used = sum(v.stats.blocks for v in chosen.materialized)
        total = calc.breakdown(chosen.materialized).total
        _, optimum = exhaustive_optimal(
            paper_mvpp, calc, max_candidates=16, space_budget=budget
        )
        rows.append((fraction, budget, chosen.names, used, total, optimum.total))
    return rows


def test_budget_tradeoff_curve(benchmark, paper_mvpp):
    rows = benchmark.pedantic(lambda: sweep(paper_mvpp), rounds=1, iterations=1)

    # Budgets are respected and the achieved cost is monotone in budget.
    previous_cost = None
    for fraction, budget, names, used, total, optimum in rows:
        assert used <= budget + 1e-9
        if previous_cost is not None:
            assert total <= previous_cost + 1e-6
        previous_cost = total
        # Heuristic within 2x of the space-constrained optimum everywhere.
        assert total <= 2.0 * optimum + 1e-9, fraction

    # Full budget recovers the unconstrained design's cost.
    assert rows[-1][4] == min(r[4] for r in rows)

    print()
    print(
        render_table(
            ["Budget", "Views", "Blocks used", "Total cost", "Optimal (same budget)"],
            [
                [
                    f"{fraction:.0%}",
                    ", ".join(names) or "(none)",
                    f"{used:,.0f}",
                    format_blocks(total),
                    format_blocks(optimum),
                ]
                for fraction, budget, names, used, total, optimum in rows
            ],
            title="Space-budget trade-off (paper example)",
        )
    )
