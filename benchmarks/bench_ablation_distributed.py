"""Ablation — distributed communication costs (DESIGN.md §6.5).

The paper notes the cost function "should incorporate the costs of data
transferring among different sites" in a distributed warehouse.  This
ablation compares:

* the centralized design vs the site-aware design on the same MVPP;
* the penalty of deploying the centralized choice under distributed
  costs (ignoring transfer when designing is never better);
* the Figure-1 mirroring decisions for the member databases.
"""

from repro.analysis import format_blocks, render_table
from repro.distributed import (
    DistributedCostCalculator,
    Topology,
    assign_round_robin,
    mirror_decisions,
)
from repro.mvpp import MVPPCostCalculator, select_views


def build_setup(paper_mvpp):
    topology = Topology(["warehouse", "site1", "site2", "site3"])
    topology.set_link("site1", "warehouse", 1.0)
    topology.set_link("site2", "warehouse", 8.0)
    topology.set_link("site3", "warehouse", 2.0)
    placement = assign_round_robin(
        sorted(leaf.name for leaf in paper_mvpp.leaves),
        ["site1", "site2", "site3"],
    )
    calculator = DistributedCostCalculator(
        paper_mvpp, topology, placement, warehouse_site="warehouse"
    )
    return topology, placement, calculator


def test_distributed_design(benchmark, paper_mvpp):
    def run():
        topology, placement, distributed = build_setup(paper_mvpp)
        centralized = MVPPCostCalculator(paper_mvpp)
        central_choice = select_views(paper_mvpp, centralized, refine=True)
        distributed_choice = select_views(paper_mvpp, distributed, refine=True)
        return (
            centralized.breakdown(central_choice.materialized).total,
            distributed.breakdown(central_choice.materialized).total,
            distributed.breakdown(distributed_choice.materialized).total,
            central_choice.names,
            distributed_choice.names,
        )

    (
        central_total,
        cross_total,
        distributed_total,
        central_names,
        distributed_names,
    ) = benchmark.pedantic(run, rounds=1, iterations=1)

    # Designing with the right cost model never loses.
    assert distributed_total <= cross_total + 1e-6
    # Transfer charges make everything dearer than the centralized view.
    assert cross_total >= central_total

    print()
    print(
        render_table(
            ["Design", "Priced under", "Total"],
            [
                [f"centralized {central_names}", "centralized", format_blocks(central_total)],
                [f"centralized {central_names}", "distributed", format_blocks(cross_total)],
                [f"distributed {distributed_names}", "distributed", format_blocks(distributed_total)],
            ],
            title="Distributed-cost ablation",
        )
    )


def test_mirror_decisions(benchmark, paper_mvpp):
    def run():
        topology, placement, _ = build_setup(paper_mvpp)
        return mirror_decisions(
            paper_mvpp, topology, placement, "warehouse"
        )

    decisions = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(decisions) == 5
    # With fu=1 everywhere and hot queries, mirroring should win for the
    # relations feeding the hot queries.
    by_name = {d.relation: d for d in decisions}
    assert by_name["Division"].choice == "mirror"
    print()
    print(
        render_table(
            ["Relation", "Choice", "Mirror cost/period", "Remote cost/period"],
            [
                [
                    d.relation,
                    d.choice,
                    format_blocks(d.mirror_cost),
                    format_blocks(d.remote_cost),
                ]
                for d in decisions
            ],
            title="Figure-1 member-database mirroring decisions",
        )
    )
