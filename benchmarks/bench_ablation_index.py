"""Ablation — indexing materialized views (paper Section 3.2).

The paper argues that sharing a temporary result can be a *loss* in
classic multiple-query processing when base relations are indexed, but
never for MVPP materialization, because "if an intermediate result is
materialized, we can establish a proper index on it afterwards".

This benchmark measures that claim end to end: the same query answered
(a) by recomputing from base relations, (b) by scanning the stored view,
and (c) through an index-nested-loop engine that probes indexes on the
stored tables.
"""

from repro.analysis import render_table
from repro.executor.engine import INDEX_NESTED_LOOP
from repro.warehouse import DataWarehouse
from repro.workload import paper_rows, paper_workload


def measure():
    scan_wh = DataWarehouse.from_workload(paper_workload())
    index_wh = DataWarehouse.from_workload(
        paper_workload(), join_method=INDEX_NESTED_LOOP
    )
    data = paper_rows(scale=0.05, seed=41)
    for wh in (scan_wh, index_wh):
        wh.design()
        for relation, rows in data.items():
            wh.load(relation, rows)
        wh.materialize()

    out = {}
    for name in ("Q1", "Q2", "Q3", "Q4"):
        _, io_recompute = scan_wh.execute(name, use_views=False)
        _, io_scan = scan_wh.execute(name, use_views=True)
        # Warm the index once, then measure the steady state.
        index_wh.execute(name, use_views=True)
        _, io_indexed = index_wh.execute(name, use_views=True)
        out[name] = (io_recompute.total, io_scan.total, io_indexed.total)
    return out


def test_indexed_views_never_lose(benchmark):
    measured = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = []
    for name, (recompute, scan, indexed) in measured.items():
        # The paper's guarantee: materialized (scanned or indexed) never
        # costs more than recomputing from base relations.
        assert scan <= recompute, name
        assert indexed <= recompute, name
        rows.append(
            [
                name,
                f"{recompute:,}",
                f"{scan:,}",
                f"{indexed:,}",
                f"{recompute / max(min(scan, indexed), 1):.1f}x",
            ]
        )
    # Somewhere the index probe beats even the plain view scan.
    assert any(
        indexed < scan for _, scan, indexed in measured.values()
    )
    print()
    print(
        render_table(
            ["Query", "Recompute I/O", "View-scan I/O", "Indexed I/O", "Best gain"],
            rows,
            title="Section 3.2 — indexing materialized views (measured)",
        )
    )
