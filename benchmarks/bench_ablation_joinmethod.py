"""Ablation — join method (DESIGN.md §6.4).

The paper assumes nested-loop joins.  Re-running the Table-2 comparison
under a hash-join cost model changes every absolute number but must not
change the paper's qualitative conclusion: the shared intermediates
{tmp2, tmp4} remain the best strategy and the heuristic still finds a
design no worse than the naive extremes.
"""

from repro.analysis import format_blocks, render_table, strategy_table
from repro.mvpp import MVPPCostCalculator, generate_mvpps, select_views, strategies
from repro.optimizer import HashJoinCostModel, SortMergeCostModel
from repro.workload import paper_workload


def run_model(cost_model):
    workload = paper_workload()
    mvpp = generate_mvpps(workload, cost_model=cost_model, rotations=1)[0]
    calc = MVPPCostCalculator(mvpp)
    from repro.algebra.operators import Join

    def join_over(bases):
        for v in mvpp.operations:
            if isinstance(v.operator, Join) and v.operator.base_relations() == frozenset(bases):
                return v
        raise AssertionError(bases)

    tmp2 = join_over({"Product", "Division"})
    tmp4 = join_over({"Order", "Customer"})
    rows = {
        "all-virtual": strategies.materialize_nothing(mvpp, calc),
        "{tmp2,tmp4}": strategies.custom(
            mvpp, calc, "{tmp2,tmp4}", [tmp2.name, tmp4.name]
        ),
        "materialize-queries": strategies.materialize_all_queries(mvpp, calc),
        "heuristic": strategies.heuristic(mvpp, calc),
    }
    return mvpp, rows


def test_hash_join_shifts_balance_toward_materialization(benchmark):
    """Finding: under hash joins recomputation is so cheap that *more*
    materialization pays off — materialize-queries overtakes the shared
    pair, and the heuristic mixes shared nodes with a query result.  The
    paper's exact Table-2 ordering is a property of its nested-loop
    model; the robust claims (sharing beats all-virtual, the heuristic
    at least ties every baseline) survive."""
    _, rows = benchmark.pedantic(
        lambda: run_model(HashJoinCostModel()), rounds=1, iterations=1
    )
    assert rows["{tmp2,tmp4}"].total_cost < rows["all-virtual"].total_cost
    assert rows["heuristic"].total_cost <= min(
        rows["{tmp2,tmp4}"].total_cost,
        rows["all-virtual"].total_cost,
        rows["materialize-queries"].total_cost,
    ) * 1.01
    print()
    print(strategy_table(list(rows.values()), title="Table 2 under hash joins"))
    print("note: materialize-queries overtakes {tmp2,tmp4} here — the")
    print("paper's ordering depends on its nested-loop cost model.")


def test_sort_merge_preserves_core_conclusions(benchmark):
    _, rows = benchmark.pedantic(
        lambda: run_model(SortMergeCostModel()), rounds=1, iterations=1
    )
    assert rows["{tmp2,tmp4}"].total_cost < rows["all-virtual"].total_cost
    assert rows["heuristic"].total_cost <= min(
        r.total_cost for r in rows.values()
    ) * 1.01
    print()
    print(strategy_table(list(rows.values()), title="Table 2 under sort-merge joins"))


def test_magnitudes_shift_across_models(benchmark):
    """Absolute costs differ wildly across join methods — the reason only
    qualitative agreement with the paper's arithmetic is claimed."""

    def run():
        from repro.optimizer import NestedLoopCostModel

        out = {}
        for model in (NestedLoopCostModel(), HashJoinCostModel(), SortMergeCostModel()):
            _, rows = run_model(model)
            out[model.name] = rows["all-virtual"].total_cost
        return out

    totals = benchmark.pedantic(run, rounds=1, iterations=1)
    assert totals["nested-loop"] > totals["hash"]
    print()
    print(
        render_table(
            ["Join method", "All-virtual total"],
            [[name, format_blocks(total)] for name, total in totals.items()],
            title="Cost magnitude by join method",
        )
    )
