"""Ablation — maintenance policy (DESIGN.md §6.1).

Two questions the paper's recompute assumption raises:

1. *Measured*: how much cheaper is incremental (delta) refresh than
   recomputation on real data?  (The paper assumes recompute; incremental
   maintenance is its future-work direction.)
2. *Model*: does charging the materialization write cost (``Cm = Ca +
   B(v)``) change which views the heuristic picks on the example?
"""

import datetime

from repro.analysis import format_blocks, render_table
from repro.mvpp import MVPPCostCalculator, generate_mvpps, select_views
from repro.mvpp.cost import PER_BASE, PER_PERIOD
from repro.warehouse import INCREMENTAL, RECOMPUTE, DataWarehouse
from repro.workload import paper_rows, paper_workload


def test_incremental_vs_recompute_measured(benchmark):
    """Measured block I/O of maintaining the designed views after a batch
    of Order inserts, under both policies."""

    def run():
        wh = DataWarehouse.from_workload(paper_workload())
        wh.design()
        for relation, rows in paper_rows(scale=0.05, seed=31).items():
            wh.load(relation, rows)
        wh.materialize()
        delta = [
            {
                "Pid": i % 100,
                "Cid": i % 50,
                "quantity": 150,
                "date": datetime.date(1996, 8, 1),
            }
            for i in range(25)
        ]
        recompute_io = sum(
            r.io.total for r in wh.apply_update("Order", delta, policy=RECOMPUTE)
        )
        incremental_io = sum(
            r.io.total
            for r in wh.apply_update("Order", delta, policy=INCREMENTAL)
        )
        return recompute_io, incremental_io

    recompute_io, incremental_io = benchmark.pedantic(run, rounds=1, iterations=1)
    assert incremental_io < recompute_io
    print()
    print(
        render_table(
            ["Policy", "Measured block I/O per refresh"],
            [
                ["recompute (paper)", f"{recompute_io:,}"],
                ["incremental (extension)", f"{incremental_io:,}"],
                ["ratio", f"{recompute_io / max(incremental_io, 1):.1f}x"],
            ],
            title="Maintenance policy ablation (measured)",
        )
    )


def test_write_cost_and_trigger_modes(benchmark, workload):
    """Model-side ablation: Cm write charge and refresh-trigger accounting."""

    def run():
        rows = []
        for write, trigger in (
            (False, PER_PERIOD),
            (False, PER_BASE),
            (True, PER_PERIOD),
            (True, PER_BASE),
        ):
            infos_mvpp = generate_mvpps(workload, rotations=1)[0]
            if write:
                from repro.mvpp.generation import build_mvpp, prepare_queries

                infos = sorted(
                    prepare_queries(workload), key=lambda i: -i.rank
                )
                infos_mvpp = build_mvpp(
                    infos, workload, maintenance_write=True, name="w"
                )
            calc = MVPPCostCalculator(infos_mvpp, trigger)
            chosen = select_views(infos_mvpp, calc)
            rows.append(
                (
                    write,
                    trigger,
                    chosen.names,
                    calc.breakdown(chosen.materialized).total,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    # The example's design is robust: the same two shared nodes win
    # under every accounting variant.
    selections = {tuple(sorted(names)) for _, _, names, _ in rows}
    assert len(selections) == 1
    print()
    print(
        render_table(
            ["Cm includes write", "Trigger", "Selected", "Total"],
            [
                [str(w), t, ", ".join(names), format_blocks(total)]
                for w, t, names, total in rows
            ],
            title="Maintenance accounting ablation (paper example)",
        )
    )
