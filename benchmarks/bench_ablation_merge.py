"""Ablation — the value of the Figure-4 merge itself (DESIGN.md §6.3).

How much of the design's benefit comes from the *generation* algorithm
(re-using join patterns across queries, rotating seeds) versus simply
interning each query's individually-optimal plan and sharing whatever
coincides?  The naive builder (:func:`repro.mvpp.builder.build_from_workload`)
is the no-merge baseline.
"""

from repro.analysis import format_blocks, render_table
from repro.mvpp import MVPPCostCalculator, build_from_workload, design, select_views
from repro.workload import (
    GeneratorConfig,
    OverlapConfig,
    generate_workload,
    overlap_workload,
    paper_workload,
)


def evaluate(mvpp):
    calc = MVPPCostCalculator(mvpp)
    chosen = select_views(mvpp, calc, refine=True)
    shared = sum(
        1 for v in mvpp.operations if len(mvpp.queries_using(v)) >= 2
    )
    return calc.breakdown(chosen.materialized).total, shared


def run(workload):
    naive_total, naive_shared = evaluate(build_from_workload(workload))
    merged = design(workload)
    merged_total = merged.total_cost
    merged_shared = sum(
        1
        for v in merged.mvpp.operations
        if len(merged.mvpp.queries_using(v)) >= 2
    )
    return naive_total, naive_shared, merged_total, merged_shared


def test_merge_vs_naive_sharing(benchmark):
    def sweep():
        rows = []
        rows.append(("paper example", *run(paper_workload())))
        rows.append(
            (
                "overlap 100%",
                *run(
                    overlap_workload(
                        OverlapConfig(overlap=1.0, num_queries=6, seed=2)
                    )
                ),
            )
        )
        rows.append(
            (
                "synthetic seed 4",
                *run(
                    generate_workload(
                        GeneratorConfig(
                            num_relations=6, num_queries=5, seed=4
                        )
                    ).workload
                ),
            )
        )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    by_name = {r[0]: r for r in rows}

    # Finding 1: when queries share join cores but filter differently,
    # only the Figure-4 merge (via disjunctive push-down) can share —
    # it beats naive interning decisively.
    _, naive_total, _, merged_total, _ = by_name["overlap 100%"]
    assert merged_total < 0.6 * naive_total

    # Finding 2: the merge always finds at least as many sharing points…
    for name, _, naive_shared, _, merged_shared in rows:
        assert merged_shared >= naive_shared, name

    # …but NOT always a cheaper design: on the paper example the naive
    # build keeps per-query selections exact (no disjunctive stems) and
    # wins on total cost.  An honest deviation, reported below; the
    # design(include_naive=True) option takes the best of both.
    from repro.mvpp import design as run_design

    for name, workload in (
        ("paper example", paper_workload()),
        (
            "overlap 100%",
            overlap_workload(OverlapConfig(overlap=1.0, num_queries=6, seed=2)),
        ),
    ):
        combined = run_design(workload, include_naive=True)
        _, naive_total, _, merged_total, _ = by_name[name]
        assert combined.total_cost <= min(naive_total, merged_total) + 1e-6

    print()
    print(
        render_table(
            [
                "Workload",
                "Naive total",
                "Naive shared nodes",
                "Fig-4 total",
                "Fig-4 shared nodes",
            ],
            [
                [
                    name,
                    format_blocks(naive_total),
                    naive_shared,
                    format_blocks(merged_total),
                    merged_shared,
                ]
                for name, naive_total, naive_shared, merged_total, merged_shared in rows
            ],
            title="Figure-4 merge vs naive plan interning",
        )
    )
