"""Ablation — MVPP design vs multiple-query optimization (Section 3.2).

The paper positions MVPP against MQO: MQO minimizes one batch execution
by sharing temporaries; MVPP weighs repeated accesses against view
maintenance.  This benchmark quantifies both sides on the example:

* the MQO batch saving (sharing pays off within a single execution);
* MQO's sharing set, persisted as views, priced under the MVPP total —
  versus the Figure-9 design, across cold and hot frequency regimes.
"""

from repro.analysis import format_blocks, render_table
from repro.mvpp import MVPPCostCalculator, select_views
from repro.mvpp.mqo import batch_execution, mqo_as_design


def test_mqo_batch_saving(benchmark, paper_mvpp):
    result = benchmark(lambda: batch_execution(paper_mvpp))
    assert result.shared_cost < result.serial_cost
    print()
    print(
        f"MQO batch objective: serial {format_blocks(result.serial_cost)} "
        f"vs shared {format_blocks(result.shared_cost)} "
        f"({result.speedup:.2f}x); shared temporaries: "
        f"{', '.join(result.shared_vertices)}"
    )


def test_mqo_choice_vs_mvpp_design(benchmark, paper_mvpp):
    def run():
        rows = []
        base = {root.name: root.frequency for root in paper_mvpp.roots}
        try:
            for label, factor in (("cold x0.01", 0.01), ("paper x1", 1.0), ("hot x25", 25.0)):
                for root in paper_mvpp.roots:
                    root.frequency = base[root.name] * factor
                calc = MVPPCostCalculator(paper_mvpp)
                virtual = calc.breakdown(()).total
                _, mqo_breakdown = mqo_as_design(paper_mvpp, calc)
                heuristic = select_views(paper_mvpp, calc, refine=True)
                heuristic_total = calc.breakdown(heuristic.materialized).total
                rows.append(
                    (label, virtual, mqo_breakdown.total, heuristic_total)
                )
        finally:
            for root in paper_mvpp.roots:
                root.frequency = base[root.name]
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for label, virtual, mqo_total, heuristic_total in rows:
        # The MVPP-aware design never loses to the MQO sharing choice.
        assert heuristic_total <= mqo_total + 1e-9, label
        assert heuristic_total <= virtual + 1e-9, label
    # In the cold regime MQO's persisted sharing is a net loss vs virtual.
    cold = rows[0]
    assert cold[2] > cold[1]
    print()
    print(
        render_table(
            ["Regime", "All-virtual", "MQO sharing persisted", "MVPP design"],
            [
                [label, format_blocks(v), format_blocks(m), format_blocks(h)]
                for label, v, m, h in rows
            ],
            title="MQO's objective vs the MVPP objective (paper §3.2)",
        )
    )
