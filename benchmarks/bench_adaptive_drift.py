"""Benchmark — adaptive redesign vs the static and eager baselines.

Replays the seeded drifting workload (phase A = design-time profile,
phase B = inverted hot set, phase C = alternating) through
:func:`repro.adaptive.simulate_drift` and checks the tentpole contract:

* **payoff** — the drift-triggered, cost-gated adaptive controller ends
  with a lower cumulative cost (serving + migration) than *both* the
  never-redesign baseline and the redesign-every-window baseline;
* **stability** — on the stationary control run (phase A throughout,
  same seeded jitter) the controller accepts zero redesigns, so its
  trajectory is exactly the static one;
* **determinism** — the whole trajectory (decisions, costs, tick
  stamps) reproduces bit-identically for a fixed seed.

Set ``REPRO_BENCH_SMOKE=1`` to shrink the replay (fewer windows, one
seed) for CI smoke runs.
"""

import os

from repro.adaptive import simulate_drift
from repro.analysis import render_table

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

SEEDS = (7,) if SMOKE else (7, 11)
WINDOWS_PER_PHASE = 2 if SMOKE else 4


def run_replays():
    out = {}
    for seed in SEEDS:
        out[seed] = simulate_drift(
            seed=seed, windows_per_phase=WINDOWS_PER_PHASE
        )
    out["stationary"] = simulate_drift(
        seed=SEEDS[0], windows_per_phase=WINDOWS_PER_PHASE, stationary=True
    )
    return out


def test_adaptive_beats_both_baselines(benchmark):
    results = benchmark.pedantic(run_replays, rounds=1, iterations=1)

    rows = []
    for seed in SEEDS:
        result = results[seed]
        # The tentpole payoff, per seed: adaptive < static and < eager.
        assert result.adaptive_beats_static, result.describe()
        assert result.adaptive_beats_eager, result.describe()
        assert result.accepted >= 1
        # Hysteresis keeps the controller calmer than eager redesign.
        assert (
            result.variants["adaptive"].migrations
            < result.variants["eager"].migrations
        )
        for name in ("static", "adaptive", "eager"):
            outcome = result.variants[name]
            rows.append(
                [
                    f"seed {seed}" if name == "static" else "",
                    name,
                    f"{outcome.serving_cost:,.0f}",
                    f"{outcome.migration_cost:,.0f}",
                    f"{outcome.total_cost:,.0f}",
                    str(outcome.migrations),
                ]
            )

    stationary = results["stationary"]
    assert stationary.accepted == 0, stationary.describe()
    assert (
        stationary.variants["adaptive"].total_cost
        == stationary.variants["static"].total_cost
    )

    # Determinism: the same seed reproduces the trajectory bit for bit.
    again = simulate_drift(
        seed=SEEDS[0], windows_per_phase=WINDOWS_PER_PHASE
    )
    assert again.to_dict() == results[SEEDS[0]].to_dict()

    print()
    print(
        render_table(
            ["Replay", "Policy", "Serving", "Migration", "Total", "Moves"],
            rows,
        )
    )
    print(
        f"stationary control: {stationary.accepted} accepted over "
        f"{stationary.windows} windows (decisions: "
        f"{', '.join(sorted(set(stationary.decisions)))})"
    )
