"""Crossover study — where each strategy starts to win (our extension).

The total-cost trade-off ``Σ fq·C_access + Σ fu·C_maintain`` implies
regime changes as query frequencies grow relative to update frequencies:

* **cold warehouse** (fq → 0): maintenance dominates; all-virtual wins;
* **middle**: shared intermediates ({tmp2, tmp4}) win — the paper's
  operating point;
* **hot warehouse** (fq → ∞): query cost dominates; materializing every
  query result wins.

This benchmark sweeps a uniform multiplier over the example's query
frequencies and locates both crossover points, asserting the regimes
appear in that order and that the Figure-9 heuristic tracks the best
strategy across the sweep.
"""

from repro.analysis import format_blocks, render_table
from repro.mvpp import MVPPCostCalculator, select_views, strategies


FACTORS = [0.001, 0.01, 0.1, 0.5, 1.0, 5.0, 25.0, 100.0, 1000.0]


def sweep(paper_mvpp, paper_nodes):
    """Scale every fq uniformly; fu stays at 1 (the paper's period)."""
    base = {root.name: root.frequency for root in paper_mvpp.roots}
    tmp2, tmp4 = paper_nodes["tmp2"], paper_nodes["tmp4"]
    rows = []
    try:
        for factor in FACTORS:
            for root in paper_mvpp.roots:
                root.frequency = base[root.name] * factor
            calc = MVPPCostCalculator(paper_mvpp)
            virtual = strategies.materialize_nothing(paper_mvpp, calc)
            shared = strategies.custom(
                paper_mvpp, calc, "{tmp2,tmp4}", [tmp2.name, tmp4.name]
            )
            queries = strategies.materialize_all_queries(paper_mvpp, calc)
            heuristic = select_views(paper_mvpp, calc, refine=True)
            heuristic_total = calc.breakdown(heuristic.materialized).total
            contenders = {
                "all-virtual": virtual.total_cost,
                "{tmp2,tmp4}": shared.total_cost,
                "materialize-queries": queries.total_cost,
            }
            winner = min(contenders, key=contenders.get)
            rows.append((factor, contenders, winner, heuristic_total))
    finally:
        for root in paper_mvpp.roots:
            root.frequency = base[root.name]
    return rows


def test_crossover_regimes(benchmark, paper_mvpp, paper_nodes):
    rows = benchmark.pedantic(
        lambda: sweep(paper_mvpp, paper_nodes), rounds=1, iterations=1
    )
    winners = [winner for _, _, winner, _ in rows]

    # Regime 1: at the coldest point, keeping everything virtual wins.
    assert winners[0] == "all-virtual"
    # Regime 3: at the hottest point, materializing query results wins.
    assert winners[-1] == "materialize-queries"
    # Regime 2 exists: the shared intermediates win somewhere in between.
    assert "{tmp2,tmp4}" in winners
    # Regimes appear in order (no oscillation back to a colder regime).
    order = {"all-virtual": 0, "{tmp2,tmp4}": 1, "materialize-queries": 2}
    ranks = [order[w] for w in winners]
    assert ranks == sorted(ranks)

    table = []
    for factor, contenders, winner, heuristic_total in rows:
        best = min(contenders.values())
        table.append(
            [
                f"x{factor:g}",
                format_blocks(contenders["all-virtual"]),
                format_blocks(contenders["{tmp2,tmp4}"]),
                format_blocks(contenders["materialize-queries"]),
                winner,
                format_blocks(heuristic_total),
                f"{heuristic_total / best:.2f}x",
            ]
        )
    print()
    print(
        render_table(
            [
                "fq scale",
                "all-virtual",
                "{tmp2,tmp4}",
                "mat-queries",
                "winner",
                "heuristic",
                "heur/best",
            ],
            table,
            title="Frequency-scaling crossover (paper example)",
        )
    )


def test_heuristic_tracks_best_strategy(benchmark, paper_mvpp, paper_nodes):
    """Across the whole sweep the refined heuristic stays within 1.5x of
    the best canonical strategy (it sometimes *beats* all three, e.g. at
    x5, and trails most around the hot-regime crossover where its
    shared-node bias undershoots full query materialization)."""
    rows = benchmark.pedantic(
        lambda: sweep(paper_mvpp, paper_nodes), rounds=1, iterations=1
    )
    beats_all = 0
    for factor, contenders, _, heuristic_total in rows:
        best = min(contenders.values())
        assert heuristic_total <= 1.5 * best + 1e-6, factor
        if heuristic_total < best:
            beats_all += 1
    # And at least once the heuristic finds something strictly better
    # than every canonical strategy.
    assert beats_all >= 1
