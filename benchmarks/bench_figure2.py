"""Figure 2 — individual plans for Q1/Q2 and their merge via the shared
common subexpression.

The paper's Figure 2(a) shows separate access plans for Query 1 and
Query 2, both containing ``tmp1 = σ_city='LA'(Division)`` and
``tmp2 = Product ⋈ tmp1``; Figure 2(b) merges the plans on that common
subexpression.  This benchmark regenerates the merged structure and
verifies the sharing.
"""

from repro.algebra.tree import common_subexpressions, maximal_common_subexpressions
from repro.analysis import to_dot
from repro.mvpp import build_from_plans
from repro.optimizer import CardinalityEstimator, optimize_query
from repro.sql import parse_query


def q1_q2_plans(workload):
    estimator = CardinalityEstimator(workload.statistics)
    plans = []
    for name in ("Q1", "Q2"):
        spec = workload.query(name)
        plans.append(
            (
                name,
                optimize_query(parse_query(spec.sql, workload.catalog), estimator),
                spec.frequency,
            )
        )
    return estimator, plans


def test_figure2_common_subexpression_detected(benchmark, workload):
    estimator, plans = q1_q2_plans(workload)
    shared = benchmark(
        lambda: common_subexpressions([p for _, p, _ in plans])
    )
    # tmp1 (the Division selection) and tmp2 (the join) are both shared.
    shared_nodes = [nodes[0] for nodes in shared.values()]
    assert any(
        node.base_relations() == frozenset({"Division"}) for node in shared_nodes
    ), "σ(Division) not detected as shared"
    assert any(
        node.base_relations() == frozenset({"Product", "Division"})
        for node in shared_nodes
    ), "Product⋈σ(Division) not detected as shared"

    maximal = maximal_common_subexpressions([p for _, p, _ in plans])
    assert all(
        nodes[0].base_relations() == frozenset({"Product", "Division"})
        for nodes in maximal.values()
    ), "the maximal shared node is tmp2"
    print()
    print(f"Figure 2: {len(shared)} shared subexpressions, "
          f"{len(maximal)} maximal (the paper's tmp2)")


def test_figure2_merged_plan_shares_vertices(benchmark, workload):
    estimator, plans = q1_q2_plans(workload)

    def merge():
        return build_from_plans(plans, estimator, name="figure2")

    mvpp = benchmark(merge)
    # Merged graph must be smaller than the two plans side by side.
    separate = sum(p.node_count() for _, p, _ in plans)
    merged_ops = len(mvpp.operations) + len(mvpp.leaves)
    assert merged_ops < separate
    shared = [v for v in mvpp.operations if len(mvpp.queries_using(v)) == 2]
    assert shared, "no vertex shared by Q1 and Q2 after merging"
    print()
    print(f"Figure 2(b): merged MVPP has {len(mvpp)} vertices "
          f"({separate} in the separate plans); shared: "
          f"{[v.name for v in shared]}")
    print(to_dot(mvpp).splitlines()[0] + " ... (DOT export available)")
