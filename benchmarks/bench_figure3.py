"""Figure 3 — the four-query MVPP with per-node costs and frequencies.

Regenerates the example MVPP (Q4's plan merged first, as the paper's
ordered list dictates) and prints every vertex with its ``Ca``/``Cm``
annotations — the analogue of Figure 3's node labels.  Asserts the
structural properties the figure shows: the shared Product⋈σ(Division)
node feeding Q1/Q2/Q3 and the shared Order⋈Customer node feeding Q3/Q4,
and the all-virtual total matching the frequency-weighted sum of query
costs (the paper's 95.671m row, our cost model's magnitudes).
"""

import pytest

from repro.analysis import format_blocks, mvpp_cost_table
from repro.mvpp import generate_mvpps
from repro.workload import paper_workload


def test_figure3_structure_and_costs(benchmark, workload, paper_nodes):
    mvpp = benchmark.pedantic(
        lambda: generate_mvpps(paper_workload())[0], rounds=3, iterations=1
    )
    # Frequencies fq = 10, 0.5, 0.8, 5 on the roots; fu = 1 on the leaves.
    frequencies = {r.name: r.frequency for r in mvpp.roots}
    assert frequencies == {"Q1": 10.0, "Q2": 0.5, "Q3": 0.8, "Q4": 5.0}
    assert all(leaf.frequency == 1.0 for leaf in mvpp.leaves)

    # The two sharing points of Figure 3.
    tmp2, tmp4 = paper_nodes["tmp2"], paper_nodes["tmp4"]
    assert {q.name for q in mvpp.queries_using(
        mvpp.vertex_by_signature(tmp2.signature)
    )} == {"Q1", "Q2", "Q3"}
    assert {q.name for q in mvpp.queries_using(
        mvpp.vertex_by_signature(tmp4.signature)
    )} == {"Q3", "Q4"}

    print()
    print(mvpp_cost_table(mvpp))


def test_figure3_query_costs(benchmark, paper_mvpp, paper_calculator):
    """The per-query Ca labels (the paper's 35.37k / 50.082m / ... values,
    under our documented cost model)."""
    totals = benchmark(
        lambda: {
            root.name: (root.frequency, root.access_cost)
            for root in paper_mvpp.roots
        }
    )
    weighted = sum(fq * ca for fq, ca in totals.values())
    all_virtual = paper_calculator.breakdown(()).total
    assert weighted == pytest.approx(all_virtual)
    print()
    print("Figure 3 query-cost labels (our cost model):")
    for name, (fq, ca) in sorted(totals.items()):
        print(f"  {name}: fq={fq:g}  Ca={format_blocks(ca)}  fq*Ca={format_blocks(fq * ca)}")
    print(f"  all-virtual total: {format_blocks(all_virtual)} "
          f"(paper reports 95.671m under its arithmetic)")
