"""Figure 5 — the individually-optimal processing plans for Q1–Q4.

Regenerates each query's optimal plan (exact DP join ordering under the
nested-loop model), prints the cost-annotated trees, and checks the
ordering the paper derives from them: ranked by ``fq · Ca`` the list is
``<op4, op2, op3, op1>`` (Q4's plan first), which drives Figure 6.
"""

from repro.analysis import format_blocks
from repro.mvpp import prepare_queries
from repro.optimizer import AnnotatedPlan, CardinalityEstimator


def test_figure5_optimal_plans(benchmark, workload):
    infos = benchmark.pedantic(
        lambda: prepare_queries(workload), rounds=3, iterations=1
    )
    by_name = {info.spec.name: info for info in infos}

    # Selections must sit on leaves in each optimal plan (the paper's
    # Figure 5 shows σ(Division) under the first join of op1/op2/op3).
    from repro.algebra.operators import Relation, Select
    from repro.algebra.tree import find

    for info in infos:
        for select in find(info.plan, lambda n: isinstance(n, Select)):
            assert isinstance(select.child, Relation), info.spec.name

    # The paper's ordering: Q4 ranks first (5 × its Ca dominates).
    ranked = sorted(infos, key=lambda i: -i.rank)
    assert ranked[0].spec.name == "Q4"
    assert ranked[-1].spec.name == "Q1"

    estimator = CardinalityEstimator(workload.statistics)
    print()
    print("Figure 5 — individual optimal plans (fq·Ca descending):")
    for info in ranked:
        print(
            f"\n{info.spec.name} (fq={info.spec.frequency:g}, "
            f"Ca={format_blocks(info.access_cost)}, "
            f"rank={format_blocks(info.rank)}):"
        )
        print(AnnotatedPlan(info.plan, estimator).describe())


def test_figure5_join_order_quality(benchmark, workload):
    """The DP plan is never worse than the translator's FROM-order plan."""
    from repro.optimizer import optimize_query
    from repro.sql import parse_query

    estimator = CardinalityEstimator(workload.statistics)

    def optimize_all():
        out = {}
        for spec in workload.queries:
            raw = parse_query(spec.sql, workload.catalog)
            out[spec.name] = (
                AnnotatedPlan(raw, estimator).total_cost,
                AnnotatedPlan(optimize_query(raw, estimator), estimator).total_cost,
            )
        return out

    costs = benchmark(optimize_all)
    for name, (raw_cost, optimal_cost) in costs.items():
        assert optimal_cost <= raw_cost + 1e-9, name
    print()
    for name, (raw_cost, optimal_cost) in sorted(costs.items()):
        print(
            f"  {name}: FROM-order plan {format_blocks(raw_cost)} "
            f"-> optimal {format_blocks(optimal_cost)} "
            f"({raw_cost / max(optimal_cost, 1):.1f}x)"
        )
