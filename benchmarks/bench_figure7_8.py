"""Figures 7 & 8 — the MVPP before and after select/project push-down.

Uses the paper's Figure 5/7/8 workload variant, where three queries
filter Division *differently* (city='LA', name='Re', city='SF').  The
paper pushes the disjunction ``city='LA' ∨ city='SF' ∨ name='Re'`` down
to the Division leaf and the union of projection attributes down to each
relation (Figure 8).  This benchmark builds both forms and verifies:

* the Figure-7 form keeps bare base-relation leaves;
* the Figure-8 form carries the 3-term disjunction on Division and a
  2-term disjunction on Order (date vs quantity);
* push-down never loses query semantics (same relations and schemas);
* leaf projections keep join attributes (paper step 6).
"""

from repro.algebra.expressions import Or
from repro.algebra.operators import Project, Select
from repro.mvpp import MVPPCostCalculator, generate_mvpps
from repro.analysis import format_blocks


def build_both(fig7_workload):
    before = generate_mvpps(fig7_workload, rotations=1, push_down=False)[0]
    after = generate_mvpps(fig7_workload, rotations=1, push_down=True)[0]
    return before, after


def stems_over(mvpp, leaf_name):
    leaf = mvpp.vertex_by_name(leaf_name)
    return [p for p in mvpp.parents_of(leaf)]


def test_figure7_8_push_down(benchmark, fig7_workload):
    before, after = benchmark.pedantic(
        lambda: build_both(fig7_workload), rounds=3, iterations=1
    )

    # Figure 7: no selection stems directly over leaves.
    division_parents_before = stems_over(before, "Division")
    assert not any(
        isinstance(p.operator, Select) for p in division_parents_before
    )

    # Figure 8: the Division stem is the three-way disjunction.
    division_stems = [
        p for p in stems_over(after, "Division") if isinstance(p.operator, Select)
    ]
    assert division_stems
    predicate = division_stems[0].operator.predicate
    assert isinstance(predicate, Or) and len(predicate.children) == 3

    # Order carries date ∨ quantity (Q3 vs Q4).
    order_stems = [
        p for p in stems_over(after, "Order") if isinstance(p.operator, Select)
    ]
    assert order_stems
    order_predicate = order_stems[0].operator.predicate
    assert isinstance(order_predicate, Or) and len(order_predicate.children) == 2

    # Projections pushed to leaves keep the join attributes (step 6).
    projected = [
        p
        for leaf in after.leaves
        for p in after.parents_of(leaf)
        if isinstance(p.operator, Select) or isinstance(p.operator, Project)
    ]
    assert projected

    # Semantics preserved: same output schema per query in both forms.
    for name in after.query_names:
        assert set(
            after.query_root(name).operator.schema.attribute_names
        ) == set(before.query_root(name).operator.schema.attribute_names)

    print()
    print("Figure 7 (before push-down) vs Figure 8 (after):")
    print(f"  Division stem predicate: {predicate.signature}")
    print(f"  Order stem predicate:    {order_predicate.signature}")


def test_figure8_costs(benchmark, fig7_workload):
    """Push-down changes per-node costs; the design step still finds a
    profitable set on the optimized MVPP."""

    def run():
        mvpp = generate_mvpps(fig7_workload, rotations=1, push_down=True)[0]
        calc = MVPPCostCalculator(mvpp)
        from repro.mvpp import select_views

        chosen = select_views(mvpp, calc, refine=True)
        return calc.breakdown(chosen.materialized), calc.breakdown(())

    chosen, virtual = benchmark.pedantic(run, rounds=3, iterations=1)
    assert chosen.total <= virtual.total
    print()
    print(
        f"Figure 8 MVPP: designed total {format_blocks(chosen.total)} vs "
        f"all-virtual {format_blocks(virtual.total)}"
    )
