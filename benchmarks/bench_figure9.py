"""Figure 9 — the materialized-view selection algorithm, traced.

The paper's Section-4.3 walk-through on the example MVPP:

    LV = <tmp4, result4, tmp7, tmp2, result1, tmp1>
    tmp4: Cs = (5+0.8)·12.03m − 12.03m > 0  -> materialize
    result4: Cs < 0                          -> reject, prune tmp7
    tmp2: Cs > 0                             -> materialize
    tmp1: skipped (parent tmp2 already in M)
    M = {tmp2, tmp4}

This benchmark runs the implementation on the same MVPP, prints the
trace, and asserts the same decisions: the Order⋈Customer node is
accepted first, the query-result nodes are rejected, and the final set
is exactly the {tmp2, tmp4} pair.
"""

from repro.analysis import format_blocks
from repro.mvpp import MVPPCostCalculator, select_views


def test_figure9_trace(benchmark, paper_mvpp, paper_nodes):
    calc = MVPPCostCalculator(paper_mvpp)
    result = benchmark(lambda: select_views(paper_mvpp, calc))

    tmp2, tmp4 = paper_nodes["tmp2"], paper_nodes["tmp4"]

    # Final set: exactly the two shared intermediates.
    assert {v.vertex_id for v in result.materialized} == {
        tmp2.vertex_id,
        tmp4.vertex_id,
    }

    # The first decision materializes the tmp4 analogue (highest weight).
    first = result.trace[0]
    assert first.vertex == tmp4.name and first.decision == "materialize"

    # Some branch was pruned after a rejection (the paper prunes tmp7
    # when result4 is rejected) — unless nothing was rejected at all.
    rejections = [s for s in result.trace if s.decision == "reject"]
    if rejections:
        assert any(s.pruned for s in rejections)

    print()
    print("Figure 9 selection trace (our MVPP node names):")
    for step in result.trace:
        saving = "-" if step.saving is None else format_blocks(step.saving)
        pruned = f"  pruned={list(step.pruned)}" if step.pruned else ""
        print(
            f"  {step.vertex:>8}: w={format_blocks(step.weight):>10} "
            f"Cs={saving:>10} -> {step.decision}{pruned}"
        )
    print(
        f"  M = {{{', '.join(result.names)}}} "
        f"(paper: {{tmp2, tmp4}} — the same two shared nodes)"
    )


def test_figure9_weight_ordering(benchmark, paper_mvpp, paper_nodes):
    """The weight ranking puts the Order⋈Customer node on top, as the
    paper's initial LV does."""
    calc = MVPPCostCalculator(paper_mvpp)
    weights = benchmark(
        lambda: sorted(
            ((calc.weight(v), v.name) for v in paper_mvpp.operations),
            reverse=True,
        )
    )
    positive = [(w, name) for w, name in weights if w > 0]
    assert positive[0][1] == paper_nodes["tmp4"].name
    print()
    print("Initial LV (positive weights, descending):")
    for weight, name in positive:
        print(f"  {name:>8}: w = {format_blocks(weight)}")
