"""Macro benchmark — the whole lifecycle behind ``repro bench --suite macro``.

One run sweeps design, load, the scaled Table-2 query sweep, a resilient
refresh, and an adaptive drift replay, producing the schema-versioned
document committed at the repo root as ``BENCH_macro.json``.  This
wrapper times :func:`repro.obs.macro.run_macro` with pytest-benchmark
and asserts the document's invariants: it validates, it self-compares
clean, and (in smoke mode) it reproduces the committed baseline
bit-compatibly.

Set ``REPRO_BENCH_SMOKE=1`` for the deterministic CI mode: wall-clock
readings are zeroed, leaving a document that is a pure function of the
seed.
"""

import json
import os

from repro.obs.macro import (
    MacroConfig,
    compare_bench,
    run_macro,
    validate_bench,
)

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: Mirrors the `repro bench --suite macro` defaults, so this benchmark
#: exercises the exact configuration behind the committed baseline.
CONFIG = MacroConfig(smoke=SMOKE)

BASELINE = os.path.join(os.path.dirname(__file__), "..", "BENCH_macro.json")


def test_macro_suite(benchmark):
    document = benchmark.pedantic(
        lambda: run_macro(CONFIG), rounds=1, iterations=1
    )

    assert validate_bench(document) == []
    assert compare_bench(document, document) == []
    phases = document["phases"]
    assert phases["load"]["io_blocks"] > 0
    assert phases["queries"]["io_blocks"] > 0
    assert document["calibration"]["samples"] > 0
    assert document["journal"]["events"] > 0

    if SMOKE and os.path.exists(BASELINE):
        with open(BASELINE) as handle:
            baseline = json.load(handle)
        assert compare_bench(baseline, document) == [], (
            "macro suite regressed against the committed BENCH_macro.json"
        )
        assert json.dumps(baseline, sort_keys=True) == json.dumps(
            document, sort_keys=True
        ), "smoke-mode document is no longer bit-compatible with baseline"

    benchmark.extra_info["phases"] = phases
    benchmark.extra_info["calibration"] = document["calibration"]

    print()
    print(f"{'phase':<10} {'wall_ms':>10} {'io_blocks':>10}")
    for name, bucket in phases.items():
        print(
            f"{name:<10} {bucket['wall_ms']:>10.3f} "
            f"{bucket['io_blocks']:>10.0f}"
        )
