"""Sharing-degree study — how overlap drives the value of MVPP design.

The paper's core motivation: materializing *shared* portions of the base
data beats both extremes when queries overlap.  This benchmark sweeps the
probability that queries reuse a shared join core and measures, per
overlap level (averaged over seeds):

* the MVPP design's total cost vs all-virtual and materialize-queries;
* how much of the design's advantage over per-query materialization is
  attributable to sharing (it should widen as overlap grows).
"""

from repro.analysis import format_blocks, render_table
from repro.mvpp import MVPPCostCalculator, generate_mvpps, select_views, strategies
from repro.workload.overlap import OverlapConfig, overlap_workload

OVERLAPS = (0.0, 0.5, 1.0)
SEEDS = (1, 2, 3)


def run_level(overlap):
    virtual = queries = designed = fanout = size = 0.0
    for seed in SEEDS:
        workload = overlap_workload(
            OverlapConfig(overlap=overlap, num_queries=6, seed=seed)
        )
        mvpp = generate_mvpps(workload, rotations=1)[0]
        calc = MVPPCostCalculator(mvpp)
        virtual += strategies.materialize_nothing(mvpp, calc).total_cost
        queries += strategies.materialize_all_queries(mvpp, calc).total_cost
        chosen = select_views(mvpp, calc, refine=True)
        designed += calc.breakdown(chosen.materialized).total
        shared = [
            len(mvpp.queries_using(v))
            for v in mvpp.operations
            if len(mvpp.queries_using(v)) >= 2
        ]
        fanout += sum(shared) / max(len(shared), 1)
        size += len(mvpp)
    n = len(SEEDS)
    return virtual / n, queries / n, designed / n, fanout / n, size / n


def test_overlap_drives_sharing_value(benchmark):
    rows = benchmark.pedantic(
        lambda: [(o, *run_level(o)) for o in OVERLAPS], rounds=1, iterations=1
    )

    # More overlap -> shared nodes serve more queries each, and the merged
    # MVPP gets more compact (fewer vertices for the same query count).
    fanouts = [r[4] for r in rows]
    sizes = [r[5] for r in rows]
    assert fanouts[-1] > fanouts[0]
    assert sizes[-1] < sizes[0]

    # The design never loses to either extreme at any overlap level.
    for overlap, virtual, queries, designed, _, _ in rows:
        assert designed <= virtual + 1e-6, overlap
        assert designed <= queries + 1e-6, overlap

    # The design's advantage over materialize-queries widens with overlap
    # (shared views amortize maintenance across queries).
    advantage = [queries / designed for _, _, queries, designed, _, _ in rows]
    assert advantage[-1] > advantage[0]

    print()
    print(
        render_table(
            [
                "Overlap",
                "All-virtual",
                "Mat-queries",
                "MVPP design",
                "Avg fan-out",
                "MVPP size",
                "Queries/design",
            ],
            [
                [
                    f"{overlap:.0%}",
                    format_blocks(virtual),
                    format_blocks(queries),
                    format_blocks(designed),
                    f"{fanout:.2f}",
                    f"{size:.1f}",
                    f"{queries / designed:.2f}x",
                ]
                for overlap, virtual, queries, designed, fanout, size in rows
            ],
            title="Sharing degree vs design value (3-seed averages)",
        )
    )
