"""Benchmark — parallel candidate search with the shared cost cache.

Runs the full ``design()`` sweep on a synthetic workload (8 queries, so
8 Figure-4 candidate MVPPs; ``--rotations``-style capping keeps at least
4) serially and with the thread executor at several worker counts, and
verifies the tentpole contract:

* **determinism** — every parallel run returns a ``DesignResult``
  identical to the serial one (same chosen MVPP, same views, same
  costs, bit for bit);
* **payoff** — either the wall-clock speedup at 4 workers reaches 1.5×
  or the shared :class:`~repro.mvpp.cost.CostCache` ends the sweep with
  a hit ratio of at least 50% (pure-Python cost arithmetic is
  GIL-serialized on the thread backend, so memoization rather than raw
  concurrency is the expected win there).

Set ``REPRO_BENCH_SMOKE=1`` to shrink the sweep (fewer queries, fewer
worker counts) for CI smoke runs.
"""

import os
import time

from repro.analysis import format_blocks, render_table
from repro.mvpp import DesignConfig, design
from repro.workload import GeneratorConfig, generate_workload

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

QUERIES = 6 if SMOKE else 8
WORKER_COUNTS = (1, 4) if SMOKE else (1, 2, 4)
CANDIDATES = 4 if SMOKE else None  # None = one rotation per query


def sweep_workload():
    return generate_workload(
        GeneratorConfig(num_relations=6, num_queries=QUERIES, seed=7)
    ).workload


def design_key(result):
    return (
        result.mvpp.name,
        result.views,
        result.breakdown.query_processing,
        result.breakdown.maintenance,
    )


def run_sweep():
    workload = sweep_workload()
    rows = []
    serial_key = None
    serial_seconds = None
    final_hit_ratio = 0.0
    for workers in WORKER_COUNTS:
        config = DesignConfig(
            rotations=CANDIDATES, workers=workers, executor="thread"
        )
        started = time.perf_counter()
        result = design(workload, config)
        elapsed = time.perf_counter() - started
        key = design_key(result)
        if serial_key is None:
            serial_key, serial_seconds = key, elapsed
        assert key == serial_key, f"workers={workers} diverged from serial"
        hit_ratio = result.cache_stats["hit_ratio"]
        final_hit_ratio = hit_ratio
        rows.append(
            (
                workers,
                elapsed,
                serial_seconds / elapsed,
                hit_ratio,
                result.total_cost,
            )
        )
    return rows, len(result.candidates), final_hit_ratio


def test_parallel_design_sweep(benchmark):
    rows, candidates, hit_ratio = benchmark.pedantic(
        run_sweep, rounds=1, iterations=1
    )
    assert candidates >= 4

    # The acceptance gate: real speedup or a cache that carries its weight.
    best_speedup = max(speedup for _, _, speedup, _, _ in rows)
    assert best_speedup >= 1.5 or hit_ratio >= 0.5, (
        f"neither speedup ({best_speedup:.2f}x) nor cache hit ratio "
        f"({hit_ratio:.0%}) reached the documented floor"
    )

    print()
    print(f"synthetic sweep: {QUERIES} queries, {candidates} candidate MVPPs")
    print(
        render_table(
            ["Workers", "Wall (s)", "Speedup", "Cache hits", "Total cost"],
            [
                [
                    str(workers),
                    f"{seconds:.3f}",
                    f"{speedup:.2f}x",
                    f"{ratio:.0%}",
                    format_blocks(total),
                ]
                for workers, seconds, speedup, ratio, total in rows
            ],
        )
    )
