"""Scaling study — the Figure-9 heuristic vs baselines on synthetic
workloads (our extension; the paper evaluates only the worked example).

Measures, across seeded random SPJ design problems:

* solution quality: heuristic total cost vs the exhaustive 2^n optimum
  (small instances) and vs forward-greedy;
* runtime: heuristic vs exhaustive as candidate count grows.

The paper's claim that the weight-greedy search "captures a reasonable
subset" translates here to a bounded optimality gap on small instances.
"""

import time

import pytest

from repro.analysis import render_table
from repro.mvpp import (
    AnnealingConfig,
    GeneticConfig,
    MVPPCostCalculator,
    exhaustive_optimal,
    generate_mvpps,
    genetic_search,
    greedy_forward,
    select_views,
    simulated_annealing,
)
from repro.workload import GeneratorConfig, generate_workload

SMALL_SEEDS = list(range(6))


def build_mvpp(seed, relations=4, queries=3, max_query_relations=3):
    workload = generate_workload(
        GeneratorConfig(
            num_relations=relations,
            num_queries=queries,
            max_query_relations=max_query_relations,
            seed=seed,
        )
    ).workload
    return generate_mvpps(workload, rotations=1)[0]


def test_quality_vs_exhaustive(benchmark):
    def sweep():
        rows = []
        for seed in SMALL_SEEDS:
            mvpp = build_mvpp(seed)
            if len(mvpp.operations) > 14:
                continue
            calc = MVPPCostCalculator(mvpp)
            heuristic = select_views(mvpp, calc, refine=True)
            heuristic_cost = calc.breakdown(heuristic.materialized).total
            greedy_cost = greedy_forward(mvpp, calc)[1].total
            annealing_cost = simulated_annealing(
                mvpp, calc, config=AnnealingConfig(seed=seed)
            )[1].total
            genetic_cost = genetic_search(
                mvpp, calc, config=GeneticConfig(seed=seed)
            )[1].total
            optimum = exhaustive_optimal(mvpp, calc)[1].total
            rows.append(
                (
                    seed,
                    len(mvpp.operations),
                    heuristic_cost,
                    greedy_cost,
                    annealing_cost,
                    genetic_cost,
                    optimum,
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert rows, "no instance was small enough for exhaustive search"
    table = []
    for (
        seed,
        candidates,
        heuristic_cost,
        greedy_cost,
        annealing_cost,
        genetic_cost,
        optimum,
    ) in rows:
        gap = heuristic_cost / optimum if optimum else 1.0
        assert heuristic_cost <= 2.0 * optimum + 1e-9, seed
        assert annealing_cost <= 2.0 * optimum + 1e-9, seed
        assert genetic_cost <= 2.0 * optimum + 1e-9, seed
        table.append(
            [
                f"seed {seed}",
                candidates,
                f"{optimum:,.0f}",
                f"{heuristic_cost:,.0f}",
                f"{greedy_cost:,.0f}",
                f"{annealing_cost:,.0f}",
                f"{genetic_cost:,.0f}",
                f"{gap:.3f}x",
            ]
        )
    mean_gap = sum(r[2] / r[6] for r in rows) / len(rows)
    print()
    print(
        render_table(
            [
                "Instance",
                "Candidates",
                "Optimal",
                "Heuristic",
                "Greedy",
                "Annealing",
                "Genetic",
                "Gap",
            ],
            table,
            title="Heuristic vs baselines vs exhaustive optimum",
        )
    )
    print(f"mean heuristic/optimal gap: {mean_gap:.3f}x")
    assert mean_gap <= 1.25


def test_heuristic_runtime_scaling(benchmark):
    """The heuristic stays near-linear while exhaustive explodes."""

    def sweep():
        rows = []
        for relations, queries in ((4, 3), (6, 5), (8, 8), (10, 12)):
            workload = generate_workload(
                GeneratorConfig(
                    num_relations=relations,
                    num_queries=queries,
                    max_query_relations=min(4, relations),
                    seed=99,
                )
            ).workload
            mvpp = generate_mvpps(workload, rotations=1)[0]
            calc = MVPPCostCalculator(mvpp)
            start = time.perf_counter()
            select_views(mvpp, calc)
            elapsed = time.perf_counter() - start
            rows.append((relations, queries, len(mvpp.operations), elapsed))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(
        render_table(
            ["Relations", "Queries", "Candidates", "Heuristic time"],
            [
                [r, q, c, f"{t * 1e3:.1f} ms"]
                for r, q, c, t in rows
            ],
            title="Heuristic runtime scaling",
        )
    )
    # Even the largest instance finishes fast.
    assert rows[-1][3] < 5.0


def test_bench_heuristic_medium_instance(benchmark):
    """Steady-state timing of the selection heuristic on a mid-size MVPP."""
    mvpp = build_mvpp(7, relations=8, queries=8, max_query_relations=4)
    calc = MVPPCostCalculator(mvpp)
    result = benchmark(lambda: select_views(mvpp, calc))
    assert calc.breakdown(result.materialized).total <= calc.breakdown(()).total * 1.05


def test_bench_generation_medium_instance(benchmark):
    """Timing of full MVPP generation (all rotations) on a mid-size
    workload."""
    workload = generate_workload(
        GeneratorConfig(num_relations=8, num_queries=6, max_query_relations=4, seed=21)
    ).workload
    mvpps = benchmark.pedantic(
        lambda: generate_mvpps(workload), rounds=3, iterations=1
    )
    assert len(mvpps) == 6
