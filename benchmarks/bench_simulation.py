"""Simulation study — the analytical objective vs measured operations.

The paper's future work asks for a model that can "simulate various
environments with different view mixes".  This benchmark runs the
multi-period simulator over the Table-2 view mixes on real (synthetic)
data and checks the *measured* per-period block I/O reproduces the
analytical verdicts: the designed shared pair beats both extremes, and
the relative ordering of the mixes matches the cost model's predictions
for query-side and maintenance-side costs.
"""

from repro.analysis import render_table
from repro.warehouse import DataWarehouse, MaterializedView
from repro.warehouse.simulation import SimulationConfig, simulate
from repro.workload import paper_rows, paper_workload


def build_warehouse(view_vertices):
    warehouse = DataWarehouse.from_workload(paper_workload())
    design = warehouse.design()  # provides MVPP query plans
    if view_vertices == "designed":
        chosen = design.materialized
    elif view_vertices == "queries":
        chosen = [
            design.mvpp.children_of(root)[0] for root in design.mvpp.roots
        ]
    else:
        chosen = []
    warehouse.install_views(
        [
            MaterializedView(name=f"mv_{v.name}", plan=v.operator)
            for v in chosen
        ]
    )
    for relation, rows in paper_rows(scale=0.02, seed=13).items():
        warehouse.load(relation, rows)
    warehouse.materialize()
    return warehouse


def run_mixes():
    config = SimulationConfig(periods=3, seed=21, update_batch_size=10)
    out = {}
    for mix in ("virtual", "designed", "queries"):
        report = simulate(build_warehouse(mix), config)
        out[mix] = report
    return out


def test_simulated_view_mixes(benchmark):
    reports = benchmark.pedantic(run_mixes, rounds=1, iterations=1)

    virtual = reports["virtual"]
    designed = reports["designed"]
    queries = reports["queries"]

    # Analytical verdicts, now measured:
    # 1. the designed mix beats both extremes in total I/O;
    assert designed.total_io < virtual.total_io
    assert designed.total_io < queries.total_io
    # 2. all-virtual pays nothing for maintenance beyond base inserts,
    #    and the most for queries;
    assert virtual.maintenance_io <= designed.maintenance_io
    assert virtual.query_io >= designed.query_io
    # 3. materializing every query result minimizes query I/O and
    #    maximizes maintenance I/O.
    assert queries.query_io <= designed.query_io
    assert queries.maintenance_io >= designed.maintenance_io

    print()
    print(
        render_table(
            ["View mix", "Query I/O", "Maintenance I/O", "Total", "Per period"],
            [
                [
                    mix,
                    f"{r.query_io:,}",
                    f"{r.maintenance_io:,}",
                    f"{r.total_io:,}",
                    f"{r.per_period_io:,.0f}",
                ]
                for mix, r in reports.items()
            ],
            title="Three periods of simulated operations (2% scale data)",
        )
    )
