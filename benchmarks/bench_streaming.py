"""Streaming vs batch maintenance under an equal staleness bound.

Two identical warehouses replay the same ingest trajectory (inserts and
deletes on the two hottest relations of the paper workload) and are
held to the same staleness bound: both must be fully caught up at the
end of every round.  The streaming warehouse catches up by draining its
change logs (coalesced delta propagation); the batch warehouse by
recomputing its stale views.  The suite asserts the paper-level claim
behind deferred maintenance — at an equal bound, incremental catch-up
costs strictly less block I/O than batch recompute — and that both
strategies end bit-identical.

The run emits a schema-versioned document (committed as
``BENCH_streaming.json`` at the repo root) with per-phase wall/IO
buckets compatible with :func:`repro.obs.macro.compare_bench`, plus
staleness percentiles sampled before every catch-up.  With
``REPRO_BENCH_SMOKE=1`` wall readings are zeroed and the document is a
pure function of the seed, so CI regenerates it bit-compatibly and
gates ``io_blocks`` against the committed baseline.

Regenerate the baseline with::

    REPRO_BENCH_SMOKE=1 python benchmarks/bench_streaming.py
"""

import json
import math
import os
import time

from repro.cdc import StreamingPolicy
from repro.mvpp.config import DesignConfig
from repro.obs.macro import BENCH_SCHEMA_VERSION, compare_bench, smoke_mode
from repro.resilience.config import ResilienceConfig
from repro.warehouse import DataWarehouse
from repro.workload import paper_workload
from repro.workload.datagen import paper_rows

SMOKE = smoke_mode()
BASELINE = os.path.join(
    os.path.dirname(__file__), "..", "BENCH_streaming.json"
)

SCALE = 0.02
ROUNDS = 6
SEED = 0
#: Catch-up happens at the end of every round in both variants, so the
#: staleness bound is the per-round record count; the policy's record
#: bound sits above it so backpressure never drains mid-round.
POLICY = StreamingPolicy(max_lag_records=256, coalesce_records=16)

STREAMING_PHASES = (
    "streaming_ingest",
    "streaming_maintenance",
    "batch_ingest",
    "batch_maintenance",
)


def _percentile(samples, q):
    ordered = sorted(samples)
    if not ordered:
        return 0.0
    rank = max(0, math.ceil(q * len(ordered)) - 1)
    return float(ordered[rank])


def _build_warehouse(workload, rows):
    warehouse = DataWarehouse.from_workload(workload)
    warehouse.design(DesignConfig(seed=SEED))
    for relation, relation_rows in sorted(rows.items()):
        warehouse.load(relation, relation_rows)
    warehouse.materialize()
    warehouse.scheduler(ResilienceConfig(seed=SEED))
    return warehouse


def _trajectory(workload, rows):
    """The shared ingest script: (relation, insert_rows, delete_rows)."""
    hot = sorted(
        rows, key=lambda name: (-workload.update_frequency(name), name)
    )[:2]
    deletable = {name: list(rows[name]) for name in hot}
    script = []
    for round_index in range(ROUNDS):
        steps = []
        for relation in hot:
            pool = rows[relation]
            width = max(1, len(pool) // 50)
            start = (round_index * width) % len(pool)
            inserts = [
                dict(pool[(start + k) % len(pool)]) for k in range(width)
            ]
            deletes = [dict(inserts[0])]
            if deletable[relation]:
                deletes.append(dict(deletable[relation].pop(0)))
            steps.append((relation, inserts, deletes))
        script.append(steps)
    return script


class _Bucket:
    """Accumulates wall/IO across the repeated phases of one variant."""

    def __init__(self, database):
        self._database = database
        self.wall = 0.0
        self.io = 0.0
        self.counts = {}

    def run(self, fn):
        before = self._database.io.snapshot()
        started = 0.0 if SMOKE else time.perf_counter()
        result = fn()
        if not SMOKE:
            self.wall += time.perf_counter() - started
        self.io += float(self._database.io.since(before).total)
        return result

    def to_dict(self):
        bucket = {
            "wall_ms": 0.0 if SMOKE else round(self.wall * 1000, 3),
            "io_blocks": self.io,
        }
        bucket.update(self.counts)
        return bucket


def run_streaming_bench():
    workload = paper_workload()
    rows = paper_rows(scale=SCALE, seed=SEED)
    script = _trajectory(workload, rows)

    # --- streaming variant -------------------------------------------------
    streaming_wh = _build_warehouse(workload, rows)
    streaming = streaming_wh.enable_streaming(POLICY)
    s_ingest = _Bucket(streaming_wh.database)
    s_maint = _Bucket(streaming_wh.database)
    staleness_samples = []
    records = 0
    for steps in script:
        for relation, inserts, deletes in steps:
            s_ingest.run(
                lambda r=relation, i=inserts: streaming_wh.apply_update(
                    r, i, policy="stream"
                )
            )
            s_ingest.run(
                lambda r=relation, d=deletes: streaming_wh.apply_delete(
                    r, d, policy="stream"
                )
            )
            records += len(inserts) + len(deletes)
        lags = streaming.staleness()
        staleness_samples.append(max(lags.values()) if lags else 0)
        s_maint.run(streaming.drain)
        staleness_samples.append(streaming.max_lag())
    s_ingest.counts["records"] = float(records)
    s_maint.counts["drains"] = float(streaming.drains)
    s_maint.counts["coalesced"] = float(streaming.coalesced_total)

    # --- batch variant (same trajectory, same bound) -----------------------
    batch_wh = _build_warehouse(workload, rows)
    b_ingest = _Bucket(batch_wh.database)
    b_maint = _Bucket(batch_wh.database)
    refreshes = 0
    for steps in script:
        for relation, inserts, deletes in steps:
            b_ingest.run(
                lambda r=relation, i=inserts: batch_wh.apply_update(
                    r, i, policy="defer"
                )
            )
            b_ingest.run(
                lambda r=relation, d=deletes: batch_wh.apply_delete(
                    r, d, policy="defer"
                )
            )
        outcomes = b_maint.run(batch_wh.refresh_resilient)
        refreshes += sum(1 for outcome in outcomes if outcome.ok)
    b_ingest.counts["records"] = float(records)
    b_maint.counts["refreshes"] = float(refreshes)

    # Both strategies must land on identical view contents.
    identical = True
    for view in streaming_wh.views:
        mine = _multiset(streaming_wh.database.table(view.name).rows())
        theirs = _multiset(batch_wh.database.table(view.name).rows())
        if mine != theirs:
            identical = False
    converged = (
        not streaming_wh.stale_views()
        and not batch_wh.stale_views()
        and streaming.max_lag() == 0
    )

    maintenance_wall = s_ingest.wall + s_maint.wall
    document = {
        "schema": BENCH_SCHEMA_VERSION,
        "suite": "streaming",
        "workload": workload.name,
        "smoke": SMOKE,
        "config": {
            "scale": SCALE,
            "rounds": ROUNDS,
            "seed": SEED,
            "max_lag_records": POLICY.max_lag_records,
            "coalesce_records": POLICY.coalesce_records,
        },
        "phases": {
            "streaming_ingest": s_ingest.to_dict(),
            "streaming_maintenance": s_maint.to_dict(),
            "batch_ingest": b_ingest.to_dict(),
            "batch_maintenance": b_maint.to_dict(),
        },
        "staleness": {
            "p50": _percentile(staleness_samples, 0.50),
            "p95": _percentile(staleness_samples, 0.95),
            "p99": _percentile(staleness_samples, 0.99),
            "max": float(max(staleness_samples, default=0)),
            "samples": len(staleness_samples),
        },
        "throughput": {
            "records": float(records),
            "updates_per_sec": (
                0.0
                if SMOKE or maintenance_wall <= 0
                else round(records / maintenance_wall, 3)
            ),
        },
        "io_ratio": (
            round(s_maint.io / b_maint.io, 6) if b_maint.io else 0.0
        ),
        "rows_identical": identical,
        "converged": converged,
    }
    return document


def _multiset(rows):
    return sorted(tuple(sorted(row.items())) for row in rows)


def validate_streaming_bench(document):
    """Schema check for a streaming-bench document (empty list = ok)."""
    problems = []
    if document.get("schema") != BENCH_SCHEMA_VERSION:
        problems.append(f"schema must be {BENCH_SCHEMA_VERSION}")
    if document.get("suite") != "streaming":
        problems.append(f"suite must be 'streaming': {document.get('suite')!r}")
    phases = document.get("phases", {})
    for name in STREAMING_PHASES:
        bucket = phases.get(name)
        if not isinstance(bucket, dict):
            problems.append(f"missing phase {name!r}")
            continue
        for key in ("wall_ms", "io_blocks"):
            if key not in bucket:
                problems.append(f"phase {name!r} missing {key!r}")
    staleness = document.get("staleness", {})
    for key in ("p50", "p95", "p99", "max", "samples"):
        if key not in staleness:
            problems.append(f"staleness missing {key!r}")
    return problems


def test_streaming_suite(benchmark):
    document = benchmark.pedantic(run_streaming_bench, rounds=1, iterations=1)

    assert validate_streaming_bench(document) == []
    assert compare_bench(document, document) == []
    assert document["rows_identical"], (
        "streaming maintenance diverged from batch recompute"
    )
    assert document["converged"]
    phases = document["phases"]
    # The headline claim: incremental catch-up beats batch recompute on
    # block I/O at the same staleness bound.
    assert (
        phases["streaming_maintenance"]["io_blocks"]
        < phases["batch_maintenance"]["io_blocks"]
    ), "streaming maintenance I/O is not below batch refresh"
    assert document["staleness"]["max"] <= POLICY.max_lag_records

    if SMOKE and os.path.exists(BASELINE):
        with open(BASELINE) as handle:
            baseline = json.load(handle)
        assert compare_bench(baseline, document) == [], (
            "streaming suite regressed against BENCH_streaming.json"
        )
        assert json.dumps(baseline, sort_keys=True) == json.dumps(
            document, sort_keys=True
        ), "smoke-mode document is no longer bit-compatible with baseline"

    benchmark.extra_info["phases"] = phases
    benchmark.extra_info["staleness"] = document["staleness"]

    print()
    print(f"{'phase':<22} {'wall_ms':>10} {'io_blocks':>10}")
    for name in STREAMING_PHASES:
        bucket = phases[name]
        print(
            f"{name:<22} {bucket['wall_ms']:>10.3f} "
            f"{bucket['io_blocks']:>10.0f}"
        )
    print(
        f"staleness p50/p95/p99: {document['staleness']['p50']:g}/"
        f"{document['staleness']['p95']:g}/{document['staleness']['p99']:g} "
        f"(io ratio {document['io_ratio']:g})"
    )


if __name__ == "__main__":
    result = run_streaming_bench()
    problems = validate_streaming_bench(result)
    if problems:
        raise SystemExit("; ".join(problems))
    with open(BASELINE, "w") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {os.path.abspath(BASELINE)}")
