"""Table 1 — sizes of relations and statistical data.

Regenerates the paper's Table 1 from the statistics catalog and checks
that every derived quantity the paper lists (the joined relation sizes)
falls out of the estimator with the registered selectivities.
"""

from repro.algebra.expressions import column, compare
from repro.algebra.operators import Join, Relation
from repro.analysis import relation_table, render_table
from repro.optimizer import CardinalityEstimator

PAPER_TABLE1 = {
    "Product": (30_000, 3_000),
    "Division": (5_000, 500),
    "Order": (50_000, 6_000),
    "Customer": (20_000, 2_000),
    "Part": (80_000, 10_000),
}

#: The derived rows of Table 1 (joined relation sizes, in records).
#: The paper lists Order⋈Customer (and the 4-way join) as 25k because it
#: folds in the 0.5 date selectivity; the raw join is 50k.
PAPER_DERIVED = {
    ("Product", "Division"): 30_000,
    ("Product", "Division", "Part"): 80_000,
    ("Order", "Customer"): 50_000,
    ("Product", "Division", "Order", "Customer"): 50_000,
}


def leaf(workload, name):
    return Relation(name, workload.catalog.schema(name).qualify())


def derived_sizes(workload, estimator):
    product_division = Join(
        leaf(workload, "Product"),
        leaf(workload, "Division"),
        compare("Product.Did", "=", column("Division.Did")),
    )
    pdp = Join(
        product_division,
        leaf(workload, "Part"),
        compare("Part.Pid", "=", column("Product.Pid")),
    )
    order_customer = Join(
        leaf(workload, "Order"),
        leaf(workload, "Customer"),
        compare("Order.Cid", "=", column("Customer.Cid")),
    )
    pdoc = Join(
        product_division,
        order_customer,
        compare("Product.Pid", "=", column("Order.Pid")),
    )
    return {
        ("Product", "Division"): estimator.estimate(product_division).cardinality,
        ("Product", "Division", "Part"): estimator.estimate(pdp).cardinality,
        ("Order", "Customer"): estimator.estimate(order_customer).cardinality,
        ("Product", "Division", "Order", "Customer"): estimator.estimate(
            pdoc
        ).cardinality,
    }


def test_table1_base_relations(benchmark, workload):
    stats = benchmark(
        lambda: {
            name: workload.statistics.relation(name) for name in PAPER_TABLE1
        }
    )
    for name, (cardinality, blocks) in PAPER_TABLE1.items():
        assert stats[name].cardinality == cardinality
        assert stats[name].blocks == blocks
    print()
    print(relation_table(workload))


def test_table1_derived_sizes(benchmark, workload):
    def run():
        estimator = CardinalityEstimator(workload.statistics)
        return derived_sizes(workload, estimator)

    measured = benchmark(run)
    rows = []
    for bases, expected in PAPER_DERIVED.items():
        got = measured[bases]
        rows.append(["⋈".join(bases), f"{expected:,}", f"{got:,}"])
        assert got == expected, bases
    print()
    print(
        render_table(
            ["Join", "Paper (records)", "Estimated (records)"],
            rows,
            title="Table 1 derived sizes",
        )
    )
