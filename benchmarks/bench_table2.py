"""Table 2 — costs for different view materialization strategies.

The headline reproduction.  The paper's rows (its arithmetic):

    base relations only        95.671m   0         95.671m
    {tmp2, tmp4, tmp6}         85.237m   12.583m   97.82m
    {tmp2, tmp6}               25.506m   12.382m   37.888m
    {tmp2, tmp4}               25.512m   12.065m   37.577m   <- best
    {Q1, Q2, Q3, Q4}            7.25k    62.653m   62.66m

Our cost model pushes selections below joins (the paper's Figure-3
arithmetic does not), so absolute values differ; the claims that must —
and do — hold:

  * ``{tmp2, tmp4}`` (the shared intermediates) is the cheapest strategy;
  * materializing every query result has the lowest query cost and the
    highest maintenance cost;
  * keeping everything virtual has zero maintenance and the highest
    query cost;
  * the Figure-9 heuristic lands exactly on ``{tmp2, tmp4}``.
"""

from repro.analysis import strategy_table
from repro.mvpp import strategies
from repro.mvpp.cost import MVPPCostCalculator

PAPER_ROWS = {
    "all-virtual": (95_671_000, 0, 95_671_000),
    "{tmp2,tmp4,tmp6}": (85_237_000, 12_583_000, 97_820_000),
    "{tmp2,tmp6}": (25_506_000, 12_382_000, 37_888_000),
    "{tmp2,tmp4}": (25_512_000, 12_065_000, 37_577_000),
    "materialize-queries": (7_250, 62_653_000, 62_660_000),
}


def build_rows(paper_mvpp, paper_nodes):
    calc = MVPPCostCalculator(paper_mvpp)
    tmp2, tmp4, tmp6 = (
        paper_nodes["tmp2"],
        paper_nodes["tmp4"],
        paper_nodes["tmp6"],
    )
    return {
        "all-virtual": strategies.materialize_nothing(paper_mvpp, calc),
        "{tmp2,tmp4,tmp6}": strategies.custom(
            paper_mvpp, calc, "{tmp2,tmp4,tmp6}", [tmp2.name, tmp4.name, tmp6.name]
        ),
        "{tmp2,tmp6}": strategies.custom(
            paper_mvpp, calc, "{tmp2,tmp6}", [tmp2.name, tmp6.name]
        ),
        "{tmp2,tmp4}": strategies.custom(
            paper_mvpp, calc, "{tmp2,tmp4}", [tmp2.name, tmp4.name]
        ),
        "materialize-queries": strategies.materialize_all_queries(
            paper_mvpp, calc
        ),
        "heuristic (Fig.9)": strategies.heuristic(paper_mvpp, calc),
    }


def test_table2_reproduction(benchmark, paper_mvpp, paper_nodes):
    rows = benchmark(lambda: build_rows(paper_mvpp, paper_nodes))

    listed = [
        rows[name]
        for name in (
            "all-virtual",
            "{tmp2,tmp4,tmp6}",
            "{tmp2,tmp6}",
            "{tmp2,tmp4}",
            "materialize-queries",
        )
    ]

    # Claim 1: {tmp2, tmp4} is the best of the five listed strategies.
    best = min(listed, key=lambda r: r.total_cost)
    assert best is rows["{tmp2,tmp4}"]

    # Claim 2: all queries materialized -> min query cost, max maintenance.
    queries_row = rows["materialize-queries"]
    assert queries_row.query_cost == min(r.query_cost for r in listed)
    assert queries_row.maintenance_cost == max(r.maintenance_cost for r in listed)

    # Claim 3: all virtual -> zero maintenance, max query cost.
    virtual = rows["all-virtual"]
    assert virtual.maintenance_cost == 0.0
    assert virtual.query_cost == max(r.query_cost for r in listed)

    # Claim 4: the heuristic selects exactly {tmp2, tmp4}.
    assert set(rows["heuristic (Fig.9)"].materialized) == set(
        rows["{tmp2,tmp4}"].materialized
    )

    print()
    print(strategy_table(listed + [rows["heuristic (Fig.9)"]],
                         title="Table 2 analogue (our cost model)"))
    print()
    print("Paper's Table 2 (its arithmetic), for comparison:")
    for name, (q, m, total) in PAPER_ROWS.items():
        print(f"  {name:22} q={q / 1e6:8.3f}m  m={m / 1e6:8.3f}m  total={total / 1e6:8.3f}m")


def test_table2_cost_evaluation_speed(benchmark, paper_mvpp, paper_nodes):
    """Time a single total-cost evaluation (the inner loop of every
    search strategy)."""
    calc = MVPPCostCalculator(paper_mvpp)
    pair = [paper_nodes["tmp2"], paper_nodes["tmp4"]]
    breakdown = benchmark(lambda: calc.breakdown(pair))
    assert breakdown.total > 0
