"""Shared fixtures for the benchmark/reproduction harness.

Each ``bench_*.py`` file regenerates one table or figure of the paper
(printing a paper-style table, asserting the qualitative claims) and
times the algorithm behind it with pytest-benchmark.  Run with::

    pytest benchmarks/ --benchmark-only -s

Every benchmark runs with observability enabled; its metrics snapshot is
attached to pytest-benchmark's ``extra_info``, so ``--benchmark-json``
output (and the ``BENCH_*.json`` trajectory) carries per-phase counters
alongside the timings.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.mvpp import MVPPCostCalculator, generate_mvpps
from repro.optimizer import CardinalityEstimator
from repro.workload import paper_workload, paper_workload_fig7


@pytest.fixture(autouse=True)
def _attach_metrics_snapshot(request):
    """Collect obs metrics per benchmark and attach them to its record."""
    obs.enable(reset=True)
    try:
        yield
        snapshot = obs.metrics().to_dict()
    finally:
        obs.disable()
    benchmark = request.node.funcargs.get("benchmark")
    if benchmark is not None and any(snapshot.values()):
        benchmark.extra_info["metrics"] = snapshot


@pytest.fixture(scope="session")
def workload():
    return paper_workload()


@pytest.fixture(scope="session")
def fig7_workload():
    return paper_workload_fig7()


@pytest.fixture(scope="session")
def estimator(workload):
    return CardinalityEstimator(workload.statistics)


@pytest.fixture(scope="session")
def paper_mvpps(workload):
    return generate_mvpps(workload)


@pytest.fixture(scope="session")
def paper_mvpp(paper_mvpps):
    """The paper-seeded MVPP (Q4's plan first, like the paper's list l)."""
    return paper_mvpps[0]


@pytest.fixture(scope="session")
def paper_calculator(paper_mvpp):
    return MVPPCostCalculator(paper_mvpp)


def join_vertex(mvpp, bases):
    """The unique join vertex over exactly the given base relations."""
    from repro.algebra.operators import Join

    for vertex in mvpp.operations:
        if isinstance(vertex.operator, Join) and vertex.operator.base_relations() == frozenset(bases):
            return vertex
    raise AssertionError(f"no join vertex over {bases}")


@pytest.fixture(scope="session")
def paper_nodes(paper_mvpp):
    """The paper's named nodes: tmp2, tmp4 (Section 4.3), tmp6."""
    return {
        "tmp2": join_vertex(paper_mvpp, {"Product", "Division"}),
        "tmp4": join_vertex(paper_mvpp, {"Order", "Customer"}),
        "tmp6": join_vertex(
            paper_mvpp, {"Product", "Division", "Order", "Customer"}
        ),
    }
