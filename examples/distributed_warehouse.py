#!/usr/bin/env python
"""Distributed warehouse: site-aware costs and mirroring decisions.

Implements the paper's Figure-1 architecture notes: member databases live
at remote sites, the warehouse pays block transfers for any virtual
lineage, and each base relation is either *mirrored* at the warehouse or
accessed *remotely* depending on update vs query frequencies.  The
site-aware cost model can flip materialization decisions relative to the
centralized design — this example shows both designs side by side.

Run with::

    python examples/distributed_warehouse.py
"""

from repro.analysis import format_blocks
from repro.distributed import (
    DistributedCostCalculator,
    Topology,
    assign_round_robin,
    mirror_decisions,
)
from repro.mvpp import MVPPCostCalculator, generate_mvpps, select_views
from repro.workload import paper_workload


def main() -> None:
    workload = paper_workload()
    mvpp = generate_mvpps(workload)[0]

    # Three member-database sites plus the warehouse; the WAN link to
    # site2 is pricey.
    topology = Topology(["warehouse", "site1", "site2", "site3"])
    topology.set_link("site1", "warehouse", 1.0)
    topology.set_link("site2", "warehouse", 8.0)
    topology.set_link("site3", "warehouse", 2.0)
    placement = assign_round_robin(
        [leaf.name for leaf in mvpp.leaves], ["site1", "site2", "site3"]
    )
    print("placement:", placement)
    print()

    centralized = MVPPCostCalculator(mvpp)
    distributed = DistributedCostCalculator(
        mvpp, topology, placement, warehouse_site="warehouse"
    )

    central_design = select_views(mvpp, centralized)
    distributed_design = select_views(mvpp, distributed)
    print(f"centralized design: {{{', '.join(central_design.names)}}}")
    print(f"distributed design: {{{', '.join(distributed_design.names)}}}")
    print()

    for name, calculator, design in (
        ("centralized", centralized, central_design),
        ("distributed", distributed, distributed_design),
    ):
        breakdown = calculator.breakdown(design.materialized)
        print(
            f"{name}: query={format_blocks(breakdown.query_processing)} "
            f"maintenance={format_blocks(breakdown.maintenance)} "
            f"total={format_blocks(breakdown.total)}"
        )
    # Cross charge: the centralized choice priced under distributed costs.
    cross = distributed.breakdown(central_design.materialized)
    print(
        f"centralized choice under distributed costs: "
        f"total={format_blocks(cross.total)}"
    )
    print()

    print("mirroring decisions for member databases (Figure 1):")
    for decision in mirror_decisions(mvpp, topology, placement, "warehouse"):
        print(
            f"  {decision.relation}: {decision.choice} "
            f"(mirror={format_blocks(decision.mirror_cost)}/period, "
            f"remote={format_blocks(decision.remote_cost)}/period)"
        )


if __name__ == "__main__":
    main()
