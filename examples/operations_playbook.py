#!/usr/bin/env python
"""Operating a designed warehouse: logs, freshness, maintenance, EXPLAIN.

A day-in-the-life sequence over the paper's schema:

1. estimate access/update frequencies from an observed query log
   (instead of the paper's given fq/fu),
2. design and materialize the views,
3. serve queries, inspecting plans with EXPLAIN,
4. defer maintenance during an update burst, then serve with different
   staleness policies ('any' / 'fresh' / 'refresh'),
5. compare recompute vs incremental refresh cost for the burst.

Run with::

    python examples/operations_playbook.py
"""

import datetime
import random

from repro.warehouse import DataWarehouse, INCREMENTAL
from repro.workload import (
    LogEntry,
    apply_to_workload,
    estimate_frequencies,
    paper_rows,
    paper_workload,
)


def synthesize_log(seed: int = 0):
    """A week of traffic: Q1 is a hot dashboard, Q4 a nightly report."""
    rng = random.Random(seed)
    entries = []
    day = 86_400.0
    for day_index in range(7):
        base = day_index * day
        for _ in range(rng.randint(9, 11)):  # Q1 ~10x/day
            entries.append(LogEntry("query", "Q1", base + rng.uniform(0, day)))
        if rng.random() < 0.5:  # Q2 every other day
            entries.append(LogEntry("query", "Q2", base + rng.uniform(0, day)))
        entries.append(LogEntry("query", "Q3", base + rng.uniform(0, day)))
        for _ in range(5):  # Q4 5x/day
            entries.append(LogEntry("query", "Q4", base + rng.uniform(0, day)))
        entries.append(LogEntry("update", "Order", base + day - 1))
    return entries


def main() -> None:
    # 1. Frequencies from the log (period = one day).
    estimate = estimate_frequencies(synthesize_log(), period=86_400.0)
    print("estimated per-day frequencies:")
    for name, frequency in sorted(estimate.query_frequencies.items()):
        print(f"  fq({name}) = {frequency:.2f}")
    for name, frequency in sorted(estimate.update_frequencies.items()):
        print(f"  fu({name}) = {frequency:.2f}")
    observed = apply_to_workload(paper_workload(), estimate)

    # 2. Design + load + materialize.
    warehouse = DataWarehouse.from_workload(observed)
    result = warehouse.design()
    print(f"\ndesign: materialize {{{', '.join(result.materialized_names)}}}")
    for relation, rows in paper_rows(scale=0.02, seed=3).items():
        warehouse.load(relation, rows)
    warehouse.materialize()

    # 3. EXPLAIN a served query.
    print("\n" + warehouse.explain("Q4"))

    # 4. An update burst with deferred maintenance.
    burst = [
        {
            "Pid": i % 50,
            "Cid": i % 40,
            "quantity": 120 + i % 80,
            "date": datetime.date(1996, 9, 1),
        }
        for i in range(30)
    ]
    warehouse.apply_update("Order", burst, policy="defer")
    print(f"\nafter deferred burst, stale views: "
          f"{[v.name for v in warehouse.stale_views()]}")
    served_stale, _ = warehouse.execute("Q4", freshness="any")
    served_fresh, _ = warehouse.execute("Q4", freshness="fresh")
    print(f"Q4 rows served from stale views: {served_stale.cardinality}")
    print(f"Q4 rows with fresh fallback:     {served_fresh.cardinality}")
    warehouse.execute("Q4", freshness="refresh")
    print(f"after refresh-on-read, stale views: "
          f"{[v.name for v in warehouse.stale_views()] or '(none)'}")

    # 5. Maintenance-policy cost for the next burst.
    recompute = warehouse.apply_update("Order", burst)
    incremental = warehouse.apply_update("Order", burst, policy=INCREMENTAL)
    recompute_io = sum(r.io.total for r in recompute)
    incremental_io = sum(r.io.total for r in incremental)
    print(f"\nrefresh cost for a 30-row burst: recompute {recompute_io} I/Os "
          f"vs incremental {incremental_io} I/Os "
          f"({recompute_io / max(incremental_io, 1):.1f}x)")


if __name__ == "__main__":
    main()
