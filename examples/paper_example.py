#!/usr/bin/env python
"""The paper's running example, end to end (Sections 2–4).

Reproduces, on the Table-1 statistics:

* the individually-optimal plans for Q1–Q4 (Figure 5),
* the generated MVPPs for every rotation (Figure 6),
* the strategy comparison (Table 2),
* the Figure-9 selection run with its decision trace,
* and finally executes the designed warehouse on synthetic data drawn to
  match Table 1's selectivities.

Run with::

    python examples/paper_example.py
"""

from repro.analysis import (
    format_blocks,
    mvpp_cost_table,
    relation_table,
    strategy_table,
    to_dot,
)
from repro.mvpp import (
    MVPPCostCalculator,
    generate_mvpps,
    prepare_queries,
    select_views,
    strategies,
)
from repro.warehouse import DataWarehouse
from repro.workload import paper_rows, paper_workload


def main() -> None:
    workload = paper_workload()
    print(relation_table(workload))
    print()

    # Figure 5: individual optimal plans, ordered by fq * Ca.
    infos = sorted(prepare_queries(workload), key=lambda info: -info.rank)
    print("Individual optimal plans (Figure 5), in fq*Ca order:")
    for info in infos:
        print(
            f"  {info.spec.name}: fq={info.spec.frequency:g} "
            f"Ca={format_blocks(info.access_cost)} "
            f"rank={format_blocks(info.rank)}"
        )
    print()

    # Figure 6: one MVPP per rotation of the ordered list.
    mvpps = generate_mvpps(workload)
    for mvpp in mvpps:
        calculator = MVPPCostCalculator(mvpp)
        chosen = select_views(mvpp, calculator)
        breakdown = calculator.breakdown(chosen.materialized)
        print(
            f"{mvpp.name}: {len(mvpp)} vertices, heuristic materializes "
            f"{{{', '.join(chosen.names)}}} at total "
            f"{format_blocks(breakdown.total)}"
        )
    print()

    # Table 2 on the paper-seeded MVPP (first rotation = Q4 first).
    mvpp = mvpps[0]
    calculator = MVPPCostCalculator(mvpp)
    print(mvpp_cost_table(mvpp))
    print()
    rows = strategies.compare(mvpp, calculator, include_exhaustive=True)
    print(strategy_table(rows, title="Table 2 analogue (paper-seeded MVPP)"))
    print()

    # Figure 9 trace.
    result = select_views(mvpp, calculator)
    print("Figure 9 selection trace:")
    for step in result.trace:
        extra = f" pruned={list(step.pruned)}" if step.pruned else ""
        saving = f"{step.saving:,.0f}" if step.saving is not None else "-"
        print(
            f"  {step.vertex}: w={step.weight:,.0f} Cs={saving} "
            f"-> {step.decision}{extra}"
        )
    print()

    # Execute the designed warehouse on data matching Table 1's stats.
    warehouse = DataWarehouse.from_workload(workload)
    warehouse.design()
    for relation, rows_ in paper_rows(scale=0.02, seed=1).items():
        warehouse.load(relation, rows_)
    warehouse.materialize()
    for query in workload.queries:
        _, io_views = warehouse.execute(query.name, use_views=True)
        _, io_plain = warehouse.execute(query.name, use_views=False)
        print(
            f"measured {query.name}: {io_views.total} block I/Os with views, "
            f"{io_plain.total} without"
        )
    print()
    print("DOT of the designed MVPP (first 5 lines):")
    print("\n".join(to_dot(mvpp).splitlines()[:5]) + "\n...")


if __name__ == "__main__":
    main()
