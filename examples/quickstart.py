#!/usr/bin/env python
"""Quickstart: design materialized views for a tiny warehouse.

Covers the full public API in ~60 lines:

1. declare schemas and statistics,
2. register warehouse queries with access frequencies,
3. run the MVPP design pipeline (paper Figures 4 + 9),
4. load data, materialize the chosen views, and run queries through them.

Run with::

    python examples/quickstart.py
"""

import random

from repro import DataWarehouse
from repro.analysis import format_blocks
from repro.catalog import Catalog, DataType, StatisticsCatalog


def main() -> None:
    # 1. Schemas and statistics ------------------------------------------
    catalog = Catalog()
    catalog.register_relation(
        "Sale",
        [
            ("id", DataType.INTEGER),
            ("store_fk", DataType.INTEGER),
            ("amount", DataType.INTEGER),
        ],
    )
    catalog.register_relation(
        "Store",
        [("id", DataType.INTEGER), ("region", DataType.STRING)],
    )

    statistics = StatisticsCatalog()
    statistics.set_relation("Sale", 50_000)
    statistics.set_relation("Store", 500)
    statistics.set_column("Sale.amount", 1_000, minimum=0, maximum=999)
    statistics.set_column("Store.region", 10)
    statistics.set_join_selectivity("Sale.store_fk", "Store.id", 1 / 500)

    # 2. Warehouse queries -------------------------------------------------
    warehouse = DataWarehouse(catalog, statistics)
    warehouse.add_query(
        "hot_dashboard",
        "SELECT Store.region, Sale.amount FROM Sale, Store "
        "WHERE Sale.store_fk = Store.id AND Sale.amount > 500",
        frequency=50,
    )
    warehouse.add_query(
        "weekly_report",
        "SELECT Store.region, Sale.amount FROM Sale, Store "
        "WHERE Sale.store_fk = Store.id AND Store.region = 'west'",
        frequency=2,
    )
    warehouse.set_update_frequency("Sale", 1.0)
    warehouse.set_update_frequency("Store", 0.1)

    # 3. Design ------------------------------------------------------------
    result = warehouse.design()
    print(f"chosen MVPP: {result.mvpp.name}")
    print(f"materialize: {', '.join(result.materialized_names) or '(nothing)'}")
    print(
        f"predicted per-period cost: "
        f"query={format_blocks(result.breakdown.query_processing)} "
        f"maintenance={format_blocks(result.breakdown.maintenance)} "
        f"total={format_blocks(result.breakdown.total)}"
    )

    # 4. Load data, materialize, and query ----------------------------------
    rng = random.Random(42)
    warehouse.load(
        "Store",
        (
            {"id": i, "region": rng.choice(["west", "east", "north", "south"])}
            for i in range(500)
        ),
    )
    warehouse.load(
        "Sale",
        (
            {"id": i, "store_fk": rng.randrange(500), "amount": rng.randrange(1000)}
            for i in range(5_000)
        ),
    )
    warehouse.materialize()

    for query in ("hot_dashboard", "weekly_report"):
        with_views, io_views = warehouse.execute(query, use_views=True)
        _, io_plain = warehouse.execute(query, use_views=False)
        print(
            f"{query}: {with_views.cardinality} rows, "
            f"{io_views.total} block I/Os with views "
            f"vs {io_plain.total} without "
            f"({io_plain.total / max(io_views.total, 1):.1f}x fewer)"
        )


if __name__ == "__main__":
    main()
