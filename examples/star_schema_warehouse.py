#!/usr/bin/env python
"""Star-schema warehouse: the workload the paper's introduction motivates.

Generates a fact table with four dimensions and six dashboard-style
queries (some aggregating), designs the materialized views, and compares
the designed warehouse against the two naive extremes — everything
virtual and every query materialized — both in predicted block accesses
and in measured I/O on synthetic data.

Run with::

    python examples/star_schema_warehouse.py
"""

from repro.analysis import format_blocks, strategy_table
from repro.mvpp import MVPPCostCalculator, strategies
from repro.warehouse import DataWarehouse
from repro.workload import StarConfig, star_rows, star_workload


def main() -> None:
    config = StarConfig(
        num_dimensions=4,
        fact_rows=200_000,
        dimension_rows=5_000,
        num_queries=6,
        include_aggregates=True,
        seed=11,
    )
    workload = star_workload(config)
    print(f"workload {workload.name}: {len(workload.queries)} queries")
    for query in workload.queries:
        print(f"  {query.name} (fq={query.frequency:g}): {query.sql}")
    print()

    warehouse = DataWarehouse.from_workload(workload)
    result = warehouse.design()
    print(
        f"design: materialize {{{', '.join(result.materialized_names)}}} "
        f"on {result.mvpp.name}"
    )
    calculator = result.calculator
    rows = [
        strategies.materialize_nothing(result.mvpp, calculator),
        strategies.materialize_all_queries(result.mvpp, calculator),
        strategies.evaluate(
            result.mvpp, calculator, "MVPP design", result.materialized
        ),
    ]
    print(strategy_table(rows, title="Predicted per-period cost"))
    print()

    # Measured I/O at 1% scale.
    for relation, data in star_rows(config, scale=0.01, seed=3).items():
        warehouse.load(relation, data)
    warehouse.materialize()
    total_views = total_plain = 0
    for query in workload.queries:
        _, io_views = warehouse.execute(query.name, use_views=True)
        _, io_plain = warehouse.execute(query.name, use_views=False)
        total_views += io_views.total * query.frequency
        total_plain += io_plain.total * query.frequency
        print(
            f"  {query.name}: {io_views.total} I/Os with views, "
            f"{io_plain.total} without"
        )
    print(
        f"frequency-weighted measured query I/O: "
        f"{format_blocks(total_views)} with views vs "
        f"{format_blocks(total_plain)} without "
        f"({total_plain / max(total_views, 1):.1f}x reduction)"
    )


if __name__ == "__main__":
    main()
