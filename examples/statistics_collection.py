#!/usr/bin/env python
"""Designing from *collected* statistics instead of hand-written ones.

The paper's Table 1 hands the designer exact selectivities.  A running
warehouse derives them from data: this example loads synthetic rows,
collects cardinalities / distinct counts / histograms / measured join
selectivities with :func:`repro.catalog.collect_statistics`, and shows
that the design found from collected statistics matches the one found
from the hand-written Table-1 numbers.

Run with::

    python examples/statistics_collection.py
"""

from repro.analysis import format_blocks
from repro.catalog import collect_statistics
from repro.executor.engine import load_database
from repro.mvpp import design
from repro.workload import paper_rows, paper_workload
from repro.workload.spec import Workload


def main() -> None:
    workload = paper_workload()

    # 1. Load data drawn to match Table 1's distributions (20% scale).
    data = paper_rows(scale=0.2, seed=5)
    database = load_database(data, workload.catalog)

    # 2. Collect statistics from the loaded tables, measuring the join
    #    selectivities of the four foreign-key joins exactly.
    collected = collect_statistics(
        {name: database.table(name) for name in workload.catalog.relation_names},
        join_keys=[
            ("Product.Did", "Division.Did"),
            ("Part.Pid", "Product.Pid"),
            ("Order.Cid", "Customer.Cid"),
            ("Product.Pid", "Order.Pid"),
        ],
    )
    for name in workload.catalog.relation_names:
        registered = workload.statistics.relation(name)
        measured = collected.relation(name)
        print(
            f"{name:>9}: Table 1 {registered.cardinality:,} rows, "
            f"measured {measured.cardinality:,} rows "
            f"({measured.blocks:,} blocks)"
        )
    js = collected.join_selectivity("Order.Cid", "Customer.Cid")
    print(f"measured js(Order.Cid, Customer.Cid) = {js:.2e} "
          f"(Table 1: {1 / (20_000 * 0.2):.2e} at this scale)")
    print()

    # 3. Design once with the paper's statistics, once with collected.
    paper_design = design(workload)
    collected_workload = Workload(
        name="paper-collected",
        catalog=workload.catalog,
        statistics=collected,
        queries=workload.queries,
        update_frequencies=dict(workload.update_frequencies),
    )
    collected_design = design(collected_workload)

    def shapes(result):
        return sorted(
            frozenset(v.operator.base_relations()) for v in result.materialized
        )

    print(f"design from Table 1 stats:   {paper_design.materialized_names} "
          f"(total {format_blocks(paper_design.total_cost)})")
    print(f"design from collected stats: {collected_design.materialized_names} "
          f"(total {format_blocks(collected_design.total_cost)})")
    if shapes(paper_design) == shapes(collected_design):
        print("-> both statistics sources select views over the same "
              "base-relation sets")
    else:
        print("-> designs differ (collected data deviates from Table 1)")


if __name__ == "__main__":
    main()
