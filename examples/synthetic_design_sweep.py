#!/usr/bin/env python
"""Synthetic sweep: heuristic vs greedy vs exhaustive across workloads.

Generates a family of random SPJ design problems, runs the paper's
Figure-9 heuristic on each, and measures its optimality gap against the
exhaustive 2^n optimum (where feasible) and the forward-greedy baseline.

Run with::

    python examples/synthetic_design_sweep.py
"""

import time

from repro.analysis import render_table
from repro.mvpp import (
    MVPPCostCalculator,
    exhaustive_optimal,
    generate_mvpps,
    greedy_forward,
    select_views,
)
from repro.workload import GeneratorConfig, generate_workload


def main() -> None:
    rows = []
    for seed in range(8):
        config = GeneratorConfig(
            num_relations=5,
            num_queries=4,
            max_query_relations=3,
            seed=seed,
        )
        workload = generate_workload(config).workload
        mvpp = generate_mvpps(workload, rotations=1)[0]
        calculator = MVPPCostCalculator(mvpp)

        baseline = calculator.breakdown(()).total

        start = time.perf_counter()
        heuristic = select_views(mvpp, calculator)
        heuristic_cost = calculator.breakdown(heuristic.materialized).total
        heuristic_time = time.perf_counter() - start

        greedy_set, greedy_breakdown = greedy_forward(mvpp, calculator)

        exhaustive_cost = None
        if len(mvpp.operations) <= 14:
            _, best = exhaustive_optimal(mvpp, calculator)
            exhaustive_cost = best.total

        gap = (
            f"{heuristic_cost / exhaustive_cost:.3f}x"
            if exhaustive_cost
            else "n/a"
        )
        rows.append(
            [
                f"seed {seed}",
                len(mvpp.operations),
                f"{baseline:,.0f}",
                f"{heuristic_cost:,.0f}",
                f"{greedy_breakdown.total:,.0f}",
                f"{exhaustive_cost:,.0f}" if exhaustive_cost else "n/a",
                gap,
                f"{heuristic_time * 1e3:.1f}ms",
            ]
        )
    print(
        render_table(
            [
                "Workload",
                "Candidates",
                "All-virtual",
                "Heuristic",
                "Greedy",
                "Exhaustive",
                "Gap",
                "Heuristic time",
            ],
            rows,
            title="Figure-9 heuristic vs baselines on synthetic workloads",
        )
    )


if __name__ == "__main__":
    main()
