"""repro — MVPP materialized view design for data warehousing.

Reproduction of Yang, Karlapalem & Li, "A Framework for Designing
Materialized Views in Data Warehousing Environment" (ICDCS 1997).

Subpackages:

* :mod:`repro.catalog` — schemas, types, statistics
* :mod:`repro.algebra` — relational algebra and rewrites
* :mod:`repro.sql` — SQL front end
* :mod:`repro.optimizer` — cost model and join ordering
* :mod:`repro.storage` / :mod:`repro.executor` — physical layer
* :mod:`repro.mvpp` — the paper's contribution (MVPP generation and
  materialized view selection)
* :mod:`repro.warehouse` — end-to-end data warehouse facade
* :mod:`repro.workload` — the paper's example and synthetic workloads
* :mod:`repro.distributed` — multi-site cost extension
* :mod:`repro.analysis` — reports and DOT rendering
"""

__version__ = "1.0.0"

from repro.mvpp import (  # noqa: E402  (re-exports after docstring/version)
    MVPP,
    CostCache,
    CostedResult,
    DesignConfig,
    DesignResult,
    MVPPCostCalculator,
    StrategyResult,
    design,
    generate_mvpps,
    select_views,
    strategy_names,
)
from repro.warehouse import DataWarehouse  # noqa: E402
from repro.workload import (  # noqa: E402
    QuerySpec,
    Workload,
    paper_workload,
)

__all__ = [
    "CostCache",
    "CostedResult",
    "DataWarehouse",
    "DesignConfig",
    "DesignResult",
    "MVPP",
    "MVPPCostCalculator",
    "QuerySpec",
    "StrategyResult",
    "Workload",
    "design",
    "generate_mvpps",
    "paper_workload",
    "select_views",
    "strategy_names",
    "__version__",
]
