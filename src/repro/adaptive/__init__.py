"""Adaptive design: online drift detection and cost-gated migration.

The paper designs a view set for *given* frequencies; this package
closes the loop for workloads that drift.  A
:class:`~repro.adaptive.monitor.WorkloadMonitor` estimates live
frequencies over the logical tick clock, a
:class:`~repro.adaptive.drift.DriftDetector` compares them against the
installed design's frequencies, and the
:class:`~repro.adaptive.controller.AdaptiveController` migrates to a
redesign only when its amortized saving beats the one-off migration
cost.  :func:`~repro.adaptive.simulate.simulate_drift` replays a phased
workload to compare static, adaptive and eager redesign policies.
See ``docs/adaptive.md``.
"""

from repro.adaptive.controller import (
    ACCEPTED,
    AdaptationDecision,
    AdaptiveController,
)
from repro.adaptive.drift import DriftChange, DriftDetector, DriftEvent
from repro.adaptive.monitor import WorkloadMonitor
from repro.adaptive.policy import DEFAULT_ADAPTIVE_POLICY, AdaptivePolicy
from repro.adaptive.simulate import (
    DriftSimulationResult,
    VariantOutcome,
    simulate_drift,
    simulation_policy,
)

__all__ = [
    "ACCEPTED",
    "AdaptationDecision",
    "AdaptiveController",
    "AdaptivePolicy",
    "DEFAULT_ADAPTIVE_POLICY",
    "DriftChange",
    "DriftDetector",
    "DriftEvent",
    "DriftSimulationResult",
    "VariantOutcome",
    "WorkloadMonitor",
    "simulate_drift",
    "simulation_policy",
]
