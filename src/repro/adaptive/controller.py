"""The adaptive design controller: observe, detect, redesign, migrate.

:class:`AdaptiveController` closes the loop the paper leaves open: the
design pipeline takes frequencies as *given*, but live workloads drift.
The controller watches the warehouse's query/update paths through a
:class:`~repro.adaptive.monitor.WorkloadMonitor`, compares the live
estimate against the installed design's frequencies with a
:class:`~repro.adaptive.drift.DriftDetector`, and on drift computes a
candidate redesign — accepted only when the migration pays for itself::

    net_benefit = (old_total_cost - new_total_cost)
                  * amortization_horizon_periods
                  - migration_cost(plan)
    accept      iff net_benefit >= min_benefit_margin

``old_total_cost`` re-weights the *installed* design under the live
frequencies (:meth:`~repro.mvpp.cost.MVPPCostCalculator.
breakdown_with_frequencies` — the paper's ``Ca``/``Cm`` annotations are
frequency-independent, so no re-annotation is needed), making the two
sides directly comparable.  Accepted migrations are applied through
:meth:`DataWarehouse.install_design
<repro.warehouse.warehouse.DataWarehouse.install_design>`: new views are
built through the resilient :class:`~repro.resilience.scheduler.
RefreshScheduler` (retry/backoff/breaker) while queries keep answering
from the old set, then the serving set swaps atomically.

Everything runs on the scheduler's :class:`~repro.resilience.scheduler.
LogicalClock` — a fixed seed reproduces the exact adaptation trajectory
bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro import obs
from repro.adaptive.drift import DriftDetector, DriftEvent
from repro.adaptive.monitor import WorkloadMonitor
from repro.adaptive.policy import DEFAULT_ADAPTIVE_POLICY, AdaptivePolicy
from repro.errors import AdaptiveError, WarehouseError
from repro.mvpp.config import DEFAULT_DESIGN_CONFIG, DesignConfig
from repro.workload.query_log import FrequencyEstimate, apply_to_workload

if TYPE_CHECKING:  # pragma: no cover
    from repro.warehouse.evolution import MigrationPlan
    from repro.warehouse.warehouse import DataWarehouse

__all__ = [
    "AdaptationDecision",
    "AdaptiveController",
    "ACCEPTED",
    "REBASELINED",
    "SUPPRESSED_COOLDOWN",
    "SUPPRESSED_BENEFIT",
    "MIGRATION_FAILED",
    "INSUFFICIENT",
    "NO_DRIFT",
]

#: Decision actions, in rough order of how far the pipeline got.
INSUFFICIENT = "insufficient"  # not enough observations to estimate
NO_DRIFT = "no-drift"  # estimate matches the installed frequencies
SUPPRESSED_COOLDOWN = "suppressed-cooldown"  # drifted, but too soon
SUPPRESSED_BENEFIT = "suppressed-benefit"  # drifted, migration not worth it
REBASELINED = "rebaselined"  # drifted, but the same view set stays optimal
ACCEPTED = "accepted"  # drifted, redesign migrated in
MIGRATION_FAILED = "migration-failed"  # accepted, but a view failed to build


@dataclass(frozen=True)
class AdaptationDecision:
    """What one :meth:`AdaptiveController.evaluate` call decided, and why."""

    tick: float
    action: str
    detail: str = ""
    drift: Optional[DriftEvent] = None
    old_cost: Optional[float] = None  # installed design under live fq/fu
    new_cost: Optional[float] = None  # candidate design's total cost
    migration_cost: Optional[float] = None
    net_benefit: Optional[float] = None
    migration: Optional["MigrationPlan"] = None

    @property
    def accepted(self) -> bool:
        return self.action == ACCEPTED

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready summary (used by ``repro adapt --format json``)."""
        drift = None
        if self.drift is not None:
            drift = {
                "magnitude": self.drift.magnitude,
                "changes": [
                    {
                        "kind": change.kind,
                        "name": change.name,
                        "baseline": change.baseline,
                        "observed": change.observed,
                        "relative_change": change.relative_change,
                    }
                    for change in self.drift.changes
                ],
            }
        migration = None
        if self.migration is not None:
            migration = {
                "keep": [view.name for view in self.migration.keep],
                "create": [view.name for view in self.migration.create],
                "drop": [view.name for view in self.migration.drop],
            }
        return {
            "tick": self.tick,
            "action": self.action,
            "detail": self.detail,
            "old_cost": self.old_cost,
            "new_cost": self.new_cost,
            "migration_cost": self.migration_cost,
            "net_benefit": self.net_benefit,
            "drift": drift,
            "migration": migration,
        }

    def describe(self) -> str:
        parts = [f"[tick {self.tick:g}] {self.action}"]
        if self.net_benefit is not None:
            parts.append(
                f"net benefit {self.net_benefit:,.0f} "
                f"(old {self.old_cost:,.0f} -> new {self.new_cost:,.0f}, "
                f"migration {self.migration_cost:,.0f})"
            )
        if self.detail:
            parts.append(self.detail)
        return " — ".join(parts)


class AdaptiveController:
    """Online drift detection and cost-gated view-set migration.

    Construct via :meth:`DataWarehouse.controller
    <repro.warehouse.warehouse.DataWarehouse.controller>` (which also
    wires the warehouse query/update paths into :meth:`note_query` /
    :meth:`note_update`), then call :meth:`evaluate` at decision points
    — e.g. once per simulated window, or after every N queries.

    The warehouse's registered frequencies always equal the frequencies
    the installed design was computed for (accepted redesigns write the
    estimate back), so the drift baseline is read live from
    ``warehouse.workload`` rather than duplicated here.
    """

    def __init__(
        self,
        warehouse: "DataWarehouse",
        policy: Optional[AdaptivePolicy] = None,
        config: Optional[DesignConfig] = None,
    ):
        if warehouse._design is None:
            raise AdaptiveError(
                "design the warehouse before attaching an adaptive "
                "controller (call design() first)"
            )
        self.warehouse = warehouse
        self.config = (
            config or warehouse.design_result.config or DEFAULT_DESIGN_CONFIG
        )
        self.policy = (
            policy or self.config.adaptive or DEFAULT_ADAPTIVE_POLICY
        )
        self.scheduler = warehouse.scheduler()
        self.clock = self.scheduler.clock
        self.monitor = WorkloadMonitor(self.policy)
        self.detector = DriftDetector(self.policy)
        self.history: List[AdaptationDecision] = []
        self._installed_result = warehouse.design_result
        self._last_accept_tick = self.clock.now

    @property
    def installed_result(self):
        """The design result currently serving (survives a failed migration)."""
        return self._installed_result

    # ----------------------------------------------------------------- sensing
    def note_query(self, name: str, ticks: float = 1.0) -> None:
        """Record one query execution that cost ``ticks`` of logical time."""
        self.clock.advance(ticks)
        self.monitor.record_query(name, self.clock.now)

    def note_update(self, relation: str, ticks: float = 1.0) -> None:
        """Record one update batch that cost ``ticks`` of logical time."""
        self.clock.advance(ticks)
        self.monitor.record_update(relation, self.clock.now)

    # --------------------------------------------------------------- deciding
    def _effective_frequencies(
        self, estimate: FrequencyEstimate
    ) -> Tuple[Dict[str, float], Dict[str, float]]:
        """(baseline fu, effective observed fu) over the relevant relations.

        Relations with no observed updates keep the warehouse's
        registered ``fu`` on *both* sides: silence about a relation is
        not evidence that it stopped being updated, and a candidate
        design could not exploit the difference anyway
        (:func:`~repro.workload.query_log.apply_to_workload` keeps
        registered values for unobserved relations).
        """
        workload = self.warehouse.workload
        observed_known: Set[str] = {
            name
            for name in estimate.update_frequencies
            if name in workload.catalog
        }
        relations = set(workload.update_frequencies) | observed_known
        baseline = {
            name: workload.update_frequency(name) for name in relations
        }
        effective = dict(baseline)
        for name in observed_known:
            effective[name] = estimate.update_frequencies[name]
        return baseline, effective

    def _decide(self, now: float) -> AdaptationDecision:
        estimate = self.monitor.estimate(now=now)
        if estimate is None:
            return AdaptationDecision(
                tick=now,
                action=INSUFFICIENT,
                detail=(
                    f"{self.monitor.observations} observation(s) in the "
                    f"window; need {self.policy.min_observations}"
                ),
            )

        workload = self.warehouse.workload
        baseline_queries = {q.name: q.frequency for q in workload.queries}
        baseline_updates, effective_updates = self._effective_frequencies(
            estimate
        )
        drift = self.detector.check(
            baseline_queries,
            baseline_updates,
            replace(estimate, update_frequencies=effective_updates),
            tick=now,
        )
        if drift is None:
            return AdaptationDecision(tick=now, action=NO_DRIFT)
        self._counter("adaptive.drift_detected")

        since_accept = now - self._last_accept_tick
        if since_accept < self.policy.cooldown_ticks:
            self._counter("adaptive.redesigns_suppressed", reason="cooldown")
            return AdaptationDecision(
                tick=now,
                action=SUPPRESSED_COOLDOWN,
                drift=drift,
                detail=(
                    f"{since_accept:g} of {self.policy.cooldown_ticks:g} "
                    f"cooldown ticks elapsed"
                ),
            )

        # Candidate redesign under the live frequencies.  Lint stays
        # off here: the controller must not die on advisory findings.
        from repro.mvpp.generation import design as run_design

        observed = apply_to_workload(workload, estimate)
        candidate = run_design(
            observed,
            self.config.replace(lint=False),
            estimator=self.warehouse.estimator,
            cost_model=self.warehouse.cost_model,
            cache=self.warehouse.cost_cache if self.config.cache else None,
        )
        old_cost = self._installed_result.calculator.breakdown_with_frequencies(
            self._installed_result.materialized,
            estimate.query_frequencies,
            effective_updates,
        ).total
        new_cost = candidate.total_cost
        migration = self._costed_migration(candidate)

        if migration.is_noop:
            # The installed view set stays optimal under the new
            # frequencies; write them back so this drift stops firing,
            # without touching any stored table.
            self._apply_frequencies(estimate)
            self._install(candidate, resilient=False)
            self._counter("adaptive.rebaselined")
            self._gauges(new_cost)
            return AdaptationDecision(
                tick=now,
                action=REBASELINED,
                drift=drift,
                old_cost=old_cost,
                new_cost=new_cost,
                migration_cost=0.0,
                net_benefit=(
                    (old_cost - new_cost)
                    * self.policy.amortization_horizon_periods
                ),
                migration=migration,
            )

        net_benefit = (
            (old_cost - new_cost) * self.policy.amortization_horizon_periods
            - migration.migration_cost
        )
        if net_benefit < self.policy.min_benefit_margin:
            self._counter("adaptive.redesigns_suppressed", reason="benefit")
            self._gauges(old_cost)
            return AdaptationDecision(
                tick=now,
                action=SUPPRESSED_BENEFIT,
                drift=drift,
                old_cost=old_cost,
                new_cost=new_cost,
                migration_cost=migration.migration_cost,
                net_benefit=net_benefit,
                migration=migration,
                detail=(
                    f"net benefit below margin "
                    f"{self.policy.min_benefit_margin:g}"
                ),
            )

        self._apply_frequencies(estimate)
        try:
            executed = self._install(candidate, resilient=True)
        except WarehouseError as exc:
            # The old design keeps serving; consuming the cooldown backs
            # off instead of hammering a failing build every evaluate.
            self._last_accept_tick = now
            self._counter("adaptive.redesigns_suppressed", reason="failed")
            return AdaptationDecision(
                tick=now,
                action=MIGRATION_FAILED,
                drift=drift,
                old_cost=old_cost,
                new_cost=new_cost,
                migration_cost=migration.migration_cost,
                net_benefit=net_benefit,
                migration=migration,
                detail=str(exc),
            )
        self._last_accept_tick = self.clock.now
        self._counter("adaptive.redesigns_accepted")
        self._gauges(new_cost)
        return AdaptationDecision(
            tick=now,
            action=ACCEPTED,
            drift=drift,
            old_cost=old_cost,
            new_cost=new_cost,
            migration_cost=migration.migration_cost,
            net_benefit=net_benefit,
            migration=executed,
        )

    def evaluate(self) -> AdaptationDecision:
        """Run one observe → detect → redesign → migrate decision.

        Always returns (and appends to :attr:`history`) an
        :class:`AdaptationDecision`; never raises on a failed migration
        (the decision's ``action`` says what happened, and the previous
        design keeps serving).
        """
        with obs.correlation("adapt"), obs.span("adaptive.evaluate") as span:
            decision = self._decide(self.clock.now)
            span.set(
                action=decision.action,
                tick=decision.tick,
                net_benefit=decision.net_benefit,
            )
            if obs.enabled():
                obs.journal_event(
                    "adaptive.decision",
                    tick=decision.tick,
                    action=decision.action,
                    net_benefit=decision.net_benefit,
                    detail=decision.detail,
                )
        self.history.append(decision)
        return decision

    # ---------------------------------------------------------------- helpers
    def _costed_migration(self, candidate) -> "MigrationPlan":
        from repro.warehouse.evolution import cost_migration, plan_migration
        from repro.warehouse.view import MaterializedView

        new_views = [
            MaterializedView(name=f"mv_{vertex.name}", plan=vertex.operator)
            for vertex in candidate.materialized
        ]
        plan = plan_migration(list(self.warehouse.views), new_views)
        database = self.warehouse.database
        return cost_migration(
            plan,
            access_costs={
                vertex.operator.signature: vertex.access_cost
                for vertex in candidate.materialized
            },
            stored_blocks={
                view.name: float(database.table(view.name).num_blocks)
                for view in plan.drop
                if view.name in database
            },
            drop_cost_per_block=self.policy.drop_cost_per_block,
        )

    def _apply_frequencies(self, estimate: FrequencyEstimate) -> None:
        """Write the estimate back as the warehouse's registered fq/fu."""
        warehouse = self.warehouse
        for spec in warehouse.workload.queries:
            frequency = estimate.query_frequencies.get(spec.name, 0.0)
            warehouse.set_query_frequency(spec.name, frequency)
        for relation, frequency in sorted(
            estimate.update_frequencies.items()
        ):
            if relation in warehouse.catalog:
                warehouse.set_update_frequency(relation, frequency)

    def _install(self, candidate, resilient: bool) -> "MigrationPlan":
        executed = self.warehouse.install_design(
            candidate, scheduler=self.scheduler if resilient else None
        )
        self._installed_result = candidate
        return executed

    @staticmethod
    def _counter(name: str, **labels: str) -> None:
        if obs.enabled():
            obs.metrics().counter(name, **labels).inc()

    def _gauges(self, estimated_total_cost: float) -> None:
        if obs.enabled():
            registry = obs.metrics()
            registry.gauge("adaptive.estimated_total_cost").set(
                estimated_total_cost
            )
            registry.gauge("adaptive.installed_views").set(
                float(len(self.warehouse.views))
            )
