"""Deterministic drift detection over frequency vectors.

:class:`DriftDetector` compares the live ``fq``/``fu`` estimate against
the frequencies the installed design was computed for.  A frequency has
*drifted* when its relative change clears the policy threshold::

    |observed - baseline| / max(baseline, noise_floor)  >=  drift_threshold

Frequencies that are negligible on both sides (at or below the noise
floor) are skipped — they cannot steer view selection either way, so
flagging them would only cause churn.  Detection is pure arithmetic over
sorted keys: no randomness, no clocks, bit-identical across runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.adaptive.policy import DEFAULT_ADAPTIVE_POLICY, AdaptivePolicy
from repro.workload.query_log import FrequencyEstimate

__all__ = ["DriftChange", "DriftEvent", "DriftDetector"]


@dataclass(frozen=True)
class DriftChange:
    """One frequency that moved past the drift threshold."""

    kind: str  # "query" (fq) | "update" (fu)
    name: str
    baseline: float
    observed: float
    relative_change: float

    def describe(self) -> str:
        label = "fq" if self.kind == "query" else "fu"
        return (
            f"{label}({self.name}): {self.baseline:g} -> {self.observed:g} "
            f"({self.relative_change:+.0%})"
        )


@dataclass(frozen=True)
class DriftEvent:
    """The live workload no longer matches the design-time frequencies."""

    tick: float
    magnitude: float  # the largest relative change observed
    changes: Tuple[DriftChange, ...]

    def describe(self) -> str:
        parts = ", ".join(change.describe() for change in self.changes)
        return (
            f"drift at tick {self.tick:g} (magnitude {self.magnitude:.0%}): "
            f"{parts}"
        )


class DriftDetector:
    """Compares live estimates against design-time frequency vectors."""

    def __init__(self, policy: Optional[AdaptivePolicy] = None):
        self.policy = policy or DEFAULT_ADAPTIVE_POLICY

    def _changes(
        self, kind: str, baseline: Mapping[str, float], observed: Mapping[str, float]
    ) -> List[DriftChange]:
        policy = self.policy
        changes: List[DriftChange] = []
        for name in sorted(set(baseline) | set(observed)):
            old = baseline.get(name, 0.0)
            new = observed.get(name, 0.0)
            if old <= policy.noise_floor and new <= policy.noise_floor:
                continue  # negligible either way; cannot steer the design
            if abs(new - old) < policy.min_absolute_change:
                continue  # within shot noise on low-count estimates
            relative = abs(new - old) / max(old, policy.noise_floor)
            if relative >= policy.drift_threshold:
                changes.append(DriftChange(kind, name, old, new, relative))
        return changes

    def check(
        self,
        baseline_queries: Mapping[str, float],
        baseline_updates: Mapping[str, float],
        estimate: Optional[FrequencyEstimate],
        tick: float,
    ) -> Optional[DriftEvent]:
        """A :class:`DriftEvent` when the estimate drifted, else ``None``.

        ``estimate=None`` (the monitor's insufficient-observation guard)
        never drifts: silence is not evidence of change.
        """
        if estimate is None:
            return None
        changes = self._changes(
            "query", baseline_queries, estimate.query_frequencies
        ) + self._changes("update", baseline_updates, estimate.update_frequencies)
        if not changes:
            return None
        magnitude = max(change.relative_change for change in changes)
        return DriftEvent(tick=tick, magnitude=magnitude, changes=tuple(changes))
