"""Online workload observation over the logical tick clock.

:class:`WorkloadMonitor` is the adaptive controller's sensor: the
warehouse query and update paths report every event to it (name plus the
logical tick it happened at), and :meth:`WorkloadMonitor.estimate` turns
the recent events into a per-period :class:`~repro.workload.query_log.
FrequencyEstimate` — the same estimation code the offline
``repro.workload.query_log`` pipeline uses, extended with the policy's
sliding window and optional exponential decay.

The monitor never reads a wall clock.  Ticks come from the caller
(ordinarily the :class:`~repro.resilience.scheduler.LogicalClock` the
controller shares with the refresh scheduler), so a fixed seed
reproduces the exact same observation stream and estimates.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.adaptive.policy import DEFAULT_ADAPTIVE_POLICY, AdaptivePolicy
from repro.errors import AdaptiveError
from repro.workload.query_log import (
    FrequencyEstimate,
    LogEntry,
    estimate_frequencies,
)

__all__ = ["WorkloadMonitor"]


class WorkloadMonitor:
    """Sliding-window + exponential-decay frequency estimates, online.

    Events are appended in tick order (enforced — the log must be
    causal) and pruned once they age out of the policy's window, so the
    monitor's memory is bounded by the window's event density, not the
    warehouse's lifetime.
    """

    def __init__(self, policy: Optional[AdaptivePolicy] = None):
        self.policy = policy or DEFAULT_ADAPTIVE_POLICY
        self._events: Deque[LogEntry] = deque()
        self.total_recorded = 0  # lifetime count (pruning does not lower it)

    # ---------------------------------------------------------------- record
    def record_query(self, name: str, tick: float) -> None:
        """Record one query execution observed at ``tick``."""
        self._record(LogEntry("query", name, tick))

    def record_update(self, relation: str, tick: float) -> None:
        """Record one base-relation update batch observed at ``tick``."""
        self._record(LogEntry("update", relation, tick))

    def _record(self, entry: LogEntry) -> None:
        if self._events and entry.timestamp < self._events[-1].timestamp:
            raise AdaptiveError(
                f"event at tick {entry.timestamp} predates the newest "
                f"recorded tick {self._events[-1].timestamp}; the monitor "
                f"log must be causal"
            )
        self._events.append(entry)
        self.total_recorded += 1
        self._prune(entry.timestamp)

    def _prune(self, now: float) -> None:
        horizon = now - self.policy.window_ticks
        while self._events and self._events[0].timestamp < horizon:
            self._events.popleft()

    # -------------------------------------------------------------- estimate
    @property
    def observations(self) -> int:
        """Events currently inside the sliding window."""
        return len(self._events)

    def sufficient(self, now: Optional[float] = None) -> bool:
        """Whether the window holds enough events to estimate from."""
        if now is not None:
            self._prune(now)
        return self.observations >= self.policy.min_observations

    def estimate(self, now: Optional[float] = None) -> Optional[FrequencyEstimate]:
        """The windowed per-period estimate as of ``now``.

        ``now`` defaults to the newest recorded tick.  Returns ``None``
        while the window holds fewer than the policy's
        ``min_observations`` events — the caller must not act on noise.
        """
        if now is None:
            now = self._events[-1].timestamp if self._events else 0.0
        self._prune(now)
        if not self.sufficient():
            return None
        return estimate_frequencies(
            self._events,
            period=self.policy.period_ticks,
            half_life_periods=self.policy.half_life_periods,
            window_periods=self.policy.window_periods,
            now=now,
        )

    def clear(self) -> None:
        """Drop every recorded event (e.g. after an accepted redesign)."""
        self._events.clear()
