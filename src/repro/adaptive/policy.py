"""Configuration for the adaptive design controller.

:class:`AdaptivePolicy` is the single frozen value carrying every knob of
:mod:`repro.adaptive`: how the live workload is estimated (sliding
window + optional exponential decay over the logical tick clock), when
the estimate counts as *drifted* from the design-time frequencies, and
when a drift-triggered redesign is actually worth migrating to.

The accept rule is transition-aware (see ``docs/adaptive.md``)::

    net_benefit = (old_total_cost - new_total_cost) * amortization_horizon
                  - migration_cost(plan)
    accept      iff net_benefit >= min_benefit_margin

with two hysteresis guards so alternating workloads cannot thrash: at
least ``cooldown_ticks`` must elapse between accepted redesigns, and
``min_benefit_margin`` keeps marginal flip-flops out.  All durations are
logical ticks (one tick per block of I/O, the :mod:`repro.resilience`
clock), never wall-clock seconds — a fixed seed reproduces the exact
same adaptation trajectory on every run.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Optional

from repro.errors import AdaptiveError

__all__ = ["AdaptivePolicy", "DEFAULT_ADAPTIVE_POLICY"]


@dataclass(frozen=True)
class AdaptivePolicy:
    """Every knob of the adaptive controller in one immutable value.

    Estimation:

    * ``period_ticks`` — logical ticks per design period; observed event
      counts are normalized by it so live estimates are comparable to
      the design-time per-period ``fq``/``fu``;
    * ``window_periods`` — sliding estimation window (in periods): only
      events this recent feed the estimate;
    * ``half_life_periods`` — optional exponential decay *within* the
      window (``None`` = uniform weights);
    * ``min_observations`` — events required before the estimate may
      trigger anything (the minimum-observation guard).

    Drift detection:

    * ``drift_threshold`` — relative change ``|new - old| / max(old,
      noise_floor)`` of any frequency that counts as drift;
    * ``min_absolute_change`` — the change must *also* clear this many
      events per period.  Sliding-window estimates of rare events are
      quantized (a window sliding over a once-per-period event stream
      gains or loses a whole event at the horizon edge), so a purely
      relative threshold misfires on them; the absolute guard makes
      shot noise on low counts undetectable while real phase flips
      (several events per period) sail through;
    * ``noise_floor`` — frequencies with both sides at or below this are
      ignored (they cannot steer the design either way).

    Hysteresis / acceptance:

    * ``cooldown_ticks`` — minimum ticks between *accepted* redesigns;
      keep it at or above the drift window (lint rule ``A001``);
    * ``min_benefit_margin`` — minimum net benefit (block accesses) a
      migration must clear (``A002`` flags zero);
    * ``amortization_horizon_periods`` — periods over which a redesign's
      per-period saving is credited against its one-off migration cost;
    * ``drop_cost_per_block`` — bookkeeping cost charged per stored
      block of a dropped view.
    """

    period_ticks: float = 64.0
    window_periods: float = 4.0
    half_life_periods: Optional[float] = None
    min_observations: int = 10
    drift_threshold: float = 0.5
    min_absolute_change: float = 0.0
    noise_floor: float = 0.05
    cooldown_ticks: float = 512.0
    min_benefit_margin: float = 1.0
    amortization_horizon_periods: float = 8.0
    drop_cost_per_block: float = 0.1

    def __post_init__(self) -> None:
        if self.period_ticks <= 0:
            raise AdaptiveError(
                f"period_ticks must be positive: {self.period_ticks}"
            )
        if self.window_periods <= 0:
            raise AdaptiveError(
                f"window_periods must be positive: {self.window_periods}"
            )
        if self.half_life_periods is not None and self.half_life_periods <= 0:
            raise AdaptiveError(
                f"half_life_periods must be positive (or None): "
                f"{self.half_life_periods}"
            )
        if self.min_observations < 1:
            raise AdaptiveError(
                f"min_observations must be >= 1: {self.min_observations}"
            )
        if self.drift_threshold <= 0:
            raise AdaptiveError(
                f"drift_threshold must be positive: {self.drift_threshold}"
            )
        if self.min_absolute_change < 0:
            raise AdaptiveError(
                f"min_absolute_change must be >= 0: {self.min_absolute_change}"
            )
        if self.noise_floor < 0:
            raise AdaptiveError(f"noise_floor must be >= 0: {self.noise_floor}")
        if self.cooldown_ticks < 0:
            raise AdaptiveError(
                f"cooldown_ticks must be >= 0: {self.cooldown_ticks}"
            )
        if self.min_benefit_margin < 0:
            raise AdaptiveError(
                f"min_benefit_margin must be >= 0: {self.min_benefit_margin}"
            )
        if self.amortization_horizon_periods <= 0:
            raise AdaptiveError(
                f"amortization_horizon_periods must be positive: "
                f"{self.amortization_horizon_periods}"
            )
        if self.drop_cost_per_block < 0:
            raise AdaptiveError(
                f"drop_cost_per_block must be >= 0: {self.drop_cost_per_block}"
            )

    @property
    def window_ticks(self) -> float:
        """The sliding estimation window expressed in logical ticks."""
        return self.window_periods * self.period_ticks

    def replace(self, **changes: Any) -> "AdaptivePolicy":
        """A copy with the given fields changed (re-validated)."""
        return replace(self, **changes)


#: The all-defaults adaptive policy (cooldown = 2x the drift window).
DEFAULT_ADAPTIVE_POLICY = AdaptivePolicy()
