"""Drifting-workload replay: static vs adaptive vs eager redesign.

:func:`simulate_drift` replays a phased query log against the paper's
running example and accounts, window by window, the per-period cost each
redesign policy would pay:

* **static** — design once for the opening phase, never redesign (the
  paper's offline assumption);
* **adaptive** — the :class:`~repro.adaptive.controller.
  AdaptiveController`: drift-triggered, cost-gated, hysteresis-damped;
* **eager** — redesign every window from that window's raw counts (no
  smoothing, no benefit gate) and pay the migration each time the view
  set changes.

Three phases stress different failure modes: phase A is the design-time
profile (Q1/Q2-hot); phase B inverts it (Q3/Q4-hot), so *static*
overpays for every remaining window; phase C alternates the two profiles
every window, so *eager* thrashes — it pays a migration per window while
the adaptive controller's sliding window averages the alternation into
one stable compromise.  A ``stationary`` run replays phase A throughout
(with the same seeded jitter) as the control: the adaptive controller
must accept **zero** redesigns on it.

The replay is a pure cost-model simulation on the logical tick clock
(one tick per event, no stored tables), so a fixed seed reproduces the
trajectory — decisions, costs, tick stamps — bit-identically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.adaptive.policy import AdaptivePolicy
from repro.errors import AdaptiveError
from repro.workload.query_log import FrequencyEstimate, apply_to_workload
from repro.workload.spec import QuerySpec, Workload

__all__ = [
    "PHASE_A_PROFILE",
    "PHASE_B_PROFILE",
    "VariantOutcome",
    "DriftSimulationResult",
    "simulate_drift",
    "simulation_policy",
]

#: Per-window query counts of the two workload phases.  Phase A matches
#: the relative shape of the paper's design-time frequencies (Q1-hot);
#: phase B inverts the hot set onto the Order/Customer queries.
PHASE_A_PROFILE: Dict[str, int] = {"Q1": 10, "Q2": 6, "Q3": 1, "Q4": 1}
PHASE_B_PROFILE: Dict[str, int] = {"Q1": 1, "Q2": 1, "Q3": 8, "Q4": 10}

#: Queries at or above this per-window count get +/-1 seeded jitter;
#: rarer queries stay exact so noise cannot mimic drift.
_JITTER_FLOOR = 4


@dataclass
class VariantOutcome:
    """Cumulative accounting for one redesign policy over the replay."""

    name: str
    serving_cost: float = 0.0  # sum of per-window query+maintenance cost
    migration_cost: float = 0.0  # one-off cost of executed migrations
    migrations: int = 0
    window_costs: List[float] = field(default_factory=list)
    final_views: Tuple[str, ...] = ()

    @property
    def total_cost(self) -> float:
        """Serving plus migration: the number policies compete on."""
        return self.serving_cost + self.migration_cost

    def to_dict(self) -> Dict[str, object]:
        return {
            "serving_cost": self.serving_cost,
            "migration_cost": self.migration_cost,
            "total_cost": self.total_cost,
            "migrations": self.migrations,
            "window_costs": list(self.window_costs),
            "final_views": list(self.final_views),
        }


@dataclass
class DriftSimulationResult:
    """Summary of one seeded drifting-workload replay."""

    workload: str
    seed: int
    windows: int
    stationary: bool
    phases: List[str] = field(default_factory=list)
    variants: Dict[str, VariantOutcome] = field(default_factory=dict)
    decisions: List[str] = field(default_factory=list)  # adaptive, per window
    drift_events: int = 0
    accepted: int = 0
    final_ticks: float = 0.0

    @property
    def adaptive_beats_static(self) -> bool:
        return (
            self.variants["adaptive"].total_cost
            < self.variants["static"].total_cost
        )

    @property
    def adaptive_beats_eager(self) -> bool:
        return (
            self.variants["adaptive"].total_cost
            < self.variants["eager"].total_cost
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "workload": self.workload,
            "seed": self.seed,
            "windows": self.windows,
            "stationary": self.stationary,
            "phases": list(self.phases),
            "variants": {
                name: outcome.to_dict()
                for name, outcome in sorted(self.variants.items())
            },
            "decisions": list(self.decisions),
            "drift_events": self.drift_events,
            "accepted": self.accepted,
            "final_ticks": self.final_ticks,
        }

    def describe(self) -> str:
        lines = [
            f"drift replay: {self.workload}, seed {self.seed}, "
            f"{self.windows} windows"
            + (" (stationary control)" if self.stationary else ""),
        ]
        for name in ("static", "adaptive", "eager"):
            outcome = self.variants[name]
            lines.append(
                f"  {name:<9} total {outcome.total_cost:>14,.0f}  "
                f"(serving {outcome.serving_cost:,.0f} + migration "
                f"{outcome.migration_cost:,.0f}, "
                f"{outcome.migrations} migration(s))"
            )
        lines.append(
            f"  adaptive decisions: "
            + (", ".join(self.decisions) if self.decisions else "(none)")
        )
        return "\n".join(lines)


def simulation_policy(expected_events: float) -> AdaptivePolicy:
    """The replay's tuned policy for windows of ``expected_events`` ticks.

    One simulated window = one design period; the sliding estimation
    window spans two of them; the cooldown matches the window so at most
    one redesign can land per estimation horizon; and the dual drift
    threshold (50% relative *and* at least one whole event) ignores the
    seeded per-window jitter.
    """
    return AdaptivePolicy(
        period_ticks=float(expected_events),
        window_periods=2.0,
        min_observations=8,
        drift_threshold=0.5,
        min_absolute_change=1.0,
        noise_floor=0.25,
        cooldown_ticks=2.0 * expected_events,
        min_benefit_margin=1000.0,
        amortization_horizon_periods=8.0,
    )


def _window_counts(
    profile: Dict[str, int], rng: random.Random
) -> Dict[str, int]:
    """One window's query counts: the phase profile plus seeded jitter."""
    return {
        name: count + (rng.randint(-1, 1) if count >= _JITTER_FLOOR else 0)
        for name, count in profile.items()
    }


def _phase_profile(
    window: int, windows_per_phase: int, stationary: bool
) -> Tuple[str, Dict[str, int]]:
    if stationary:
        return "A", PHASE_A_PROFILE
    phase = window // windows_per_phase
    if phase == 0:
        return "A", PHASE_A_PROFILE
    if phase == 1:
        return "B", PHASE_B_PROFILE
    # Phase C: alternate the two profiles every window.
    if window % 2 == 0:
        return "C/A", PHASE_A_PROFILE
    return "C/B", PHASE_B_PROFILE


def simulate_drift(
    seed: int = 0,
    windows_per_phase: int = 4,
    stationary: bool = False,
    policy: Optional[AdaptivePolicy] = None,
    config=None,
    workload: Optional[Workload] = None,
) -> DriftSimulationResult:
    """Replay the phased workload against all three redesign policies.

    Every policy sees the *same* seeded event stream; costs are the
    design cost framework's per-period totals re-weighted by each
    window's observed counts (one simulated window = one design period),
    plus each executed migration's one-off cost.  Pass ``stationary=True``
    for the control run (phase A throughout, same jitter).
    """
    from repro.mvpp.config import DesignConfig
    from repro.mvpp.generation import design as run_design
    from repro.mvpp.cost import CostCache
    from repro.warehouse import DataWarehouse
    from repro.warehouse.evolution import cost_migration, plan_migration
    from repro.warehouse.view import MaterializedView
    from repro.workload import paper_workload

    if windows_per_phase < 1:
        raise AdaptiveError(
            f"windows_per_phase must be >= 1: {windows_per_phase}"
        )
    base = workload or paper_workload()
    # Design-time frequencies = the phase-A profile (one window = one
    # period), so phase A genuinely is "what the designer expected".
    initial = Workload(
        name=f"{base.name}-drift",
        catalog=base.catalog,
        statistics=base.statistics,
        queries=tuple(
            QuerySpec(q.name, q.sql, float(PHASE_A_PROFILE.get(q.name, 1)))
            for q in base.queries
        ),
        update_frequencies=dict(base.update_frequencies),
    )
    update_relations = sorted(initial.update_frequencies)
    expected_events = (
        sum(PHASE_A_PROFILE.get(q.name, 1) for q in initial.queries)
        + len(update_relations)
    )
    policy = policy or simulation_policy(float(expected_events))
    config = config or DesignConfig(seed=seed)
    cache = CostCache()

    windows = windows_per_phase * 3
    result = DriftSimulationResult(
        workload=initial.name,
        seed=seed,
        windows=windows,
        stationary=stationary,
    )

    # --- static: design once, never again -----------------------------------
    static_result = run_design(initial, config, cache=cache)
    static = VariantOutcome(
        name="static", final_views=static_result.materialized_names
    )

    # --- adaptive: warehouse + controller ------------------------------------
    adaptive_wh = DataWarehouse.from_workload(initial)
    adaptive_wh.design(config.replace(adaptive=policy))
    controller = adaptive_wh.controller(policy=policy)
    adaptive = VariantOutcome(name="adaptive")

    # --- eager: redesign every window from raw counts ------------------------
    eager_result = run_design(initial, config, cache=cache)
    eager_views = [
        MaterializedView(name=f"mv_{v.name}", plan=v.operator)
        for v in eager_result.materialized
    ]
    eager_blocks = {
        f"mv_{v.name}": float(v.stats.blocks)
        for v in eager_result.materialized
        if v.stats is not None
    }
    eager = VariantOutcome(name="eager")

    rng = random.Random(seed)
    for window in range(windows):
        phase, profile = _phase_profile(window, windows_per_phase, stationary)
        result.phases.append(phase)
        counts = _window_counts(profile, rng)
        fq = {name: float(count) for name, count in counts.items()}
        fu = {name: 1.0 for name in update_relations}

        # Feed the shared event stream to the adaptive controller (one
        # logical tick per event).
        for name in sorted(counts):
            for _ in range(counts[name]):
                controller.note_query(name, 1.0)
        for name in update_relations:
            controller.note_update(name, 1.0)

        # Serving cost this window, per variant, under the window's true
        # counts (one window = one period).
        for outcome, installed in (
            (static, static_result),
            (adaptive, controller.installed_result),
            (eager, eager_result),
        ):
            cost = installed.calculator.breakdown_with_frequencies(
                installed.materialized, fq, fu
            ).total
            outcome.serving_cost += cost
            outcome.window_costs.append(cost)

        # Window end: adaptive decides; eager redesigns unconditionally.
        decision = controller.evaluate()
        result.decisions.append(decision.action)
        if decision.drift is not None:
            result.drift_events += 1
        if decision.accepted:
            result.accepted += 1
            adaptive.migrations += 1
            adaptive.migration_cost += decision.migration_cost or 0.0

        observed = apply_to_workload(
            initial,
            FrequencyEstimate(
                query_frequencies=fq,
                update_frequencies=fu,
                periods=1.0,
            ),
        )
        new_result = run_design(observed, config, cache=cache)
        new_views = [
            MaterializedView(name=f"mv_{v.name}", plan=v.operator)
            for v in new_result.materialized
        ]
        plan = cost_migration(
            plan_migration(eager_views, new_views),
            access_costs={
                v.operator.signature: v.access_cost
                for v in new_result.materialized
            },
            stored_blocks=eager_blocks,
            drop_cost_per_block=policy.drop_cost_per_block,
        )
        if not plan.is_noop:
            eager.migrations += 1
            eager.migration_cost += plan.migration_cost
            for view in plan.drop:
                eager_blocks.pop(view.name, None)
            for vertex in new_result.materialized:
                if vertex.stats is not None:
                    eager_blocks[f"mv_{vertex.name}"] = float(
                        vertex.stats.blocks
                    )
        eager_views = list(plan.keep) + list(plan.create)
        eager_result = new_result

    adaptive.final_views = controller.installed_result.materialized_names
    eager.final_views = tuple(sorted(v.name for v in eager_views))
    result.variants = {
        "static": static,
        "adaptive": adaptive,
        "eager": eager,
    }
    result.final_ticks = controller.clock.now
    return result
