"""Scalar expressions: column references, literals, comparisons, booleans.

Expressions are immutable and hashable.  Equality is *structural modulo
canonicalization*: ``a = b`` equals ``b = a``, ``x AND y`` equals
``y AND x``, and duplicate conjuncts collapse.  The canonical form is the
expression *signature*, a deterministic string that the MVPP layer uses to
detect common subexpressions across query plans (paper Section 3.1,
condition ``R(u) = R(v)``).

Column references are expected to be fully qualified
(``"Division.city"``) by the time expressions enter the algebra; the SQL
translator performs that resolution.
"""

from __future__ import annotations

import datetime
from typing import Any, FrozenSet, Iterable, Mapping, Optional, Tuple

from repro.catalog.datatypes import DataType, infer_type
from repro.errors import AlgebraError

#: Comparison operators and their mirror images (used to canonicalize
#: ``literal <op> column`` into ``column <mirror-op> literal``).
MIRRORED_OPS = {
    "=": "=",
    "!=": "!=",
    "<": ">",
    "<=": ">=",
    ">": "<",
    ">=": "<=",
}

COMPARISON_OPS = tuple(MIRRORED_OPS)


class Expression:
    """Base class for scalar expressions.

    Subclasses set ``_children`` and implement :meth:`_compute_signature`
    and :meth:`evaluate`.  Signatures are computed once and cached — safe
    because expressions are immutable.
    """

    __slots__ = ("_children", "_signature", "_hash")

    def __init__(self, children: Tuple["Expression", ...]):
        self._children = children
        self._signature: Optional[str] = None
        self._hash: Optional[int] = None

    @property
    def children(self) -> Tuple["Expression", ...]:
        return self._children

    @property
    def signature(self) -> str:
        if self._signature is None:
            self._signature = self._compute_signature()
        return self._signature

    def _compute_signature(self) -> str:
        raise NotImplementedError

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        """Evaluate against a row mapping qualified column names to values."""
        raise NotImplementedError

    def columns(self) -> FrozenSet[str]:
        """All column names referenced anywhere in this expression."""
        out = set()
        stack = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, ColumnRef):
                out.add(node.name)
            stack.extend(node.children)
        return frozenset(out)

    def substitute(self, mapping: Mapping[str, str]) -> "Expression":
        """A copy with column names replaced per ``mapping`` (identity otherwise)."""
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Expression):
            return NotImplemented
        return self.signature == other.signature

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(self.signature)
        return self._hash

    def __repr__(self) -> str:
        return self.signature


class ColumnRef(Expression):
    """Reference to a column by (preferably qualified) name."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        if not name:
            raise AlgebraError("column name must be non-empty")
        super().__init__(())
        self.name = name

    @property
    def short_name(self) -> str:
        return self.name.rsplit(".", 1)[-1]

    def _compute_signature(self) -> str:
        return f"col({self.name})"

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        if self.name in row:
            return row[self.name]
        # Fall back to a unique short-name match so expressions survive
        # projections that strip qualifiers.
        matches = [k for k in row if k.rsplit(".", 1)[-1] == self.short_name]
        if len(matches) == 1:
            return row[matches[0]]
        raise AlgebraError(f"column {self.name!r} not found in row {sorted(row)}")

    def substitute(self, mapping: Mapping[str, str]) -> "ColumnRef":
        return ColumnRef(mapping.get(self.name, self.name))


class Literal(Expression):
    """A typed constant."""

    __slots__ = ("value", "datatype")

    def __init__(self, value: Any, datatype: Optional[DataType] = None):
        super().__init__(())
        self.datatype = datatype if datatype is not None else infer_type(value)
        self.value = self.datatype.validate(value)

    def _compute_signature(self) -> str:
        if isinstance(self.value, datetime.date):
            return f"lit(date:{self.value.isoformat()})"
        return f"lit({self.datatype.value}:{self.value!r})"

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        return self.value

    def substitute(self, mapping: Mapping[str, str]) -> "Literal":
        return self


class Comparison(Expression):
    """Binary comparison, canonicalized so literals sit on the right.

    For symmetric operators over two columns the operands are ordered by
    name, so ``a.x = b.y`` and ``b.y = a.x`` share one signature — the
    property common-subexpression detection relies on.
    """

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expression, right: Expression):
        if op not in MIRRORED_OPS:
            raise AlgebraError(f"unknown comparison operator: {op!r}")
        if isinstance(left, Literal) and not isinstance(right, Literal):
            op, left, right = MIRRORED_OPS[op], right, left
        if (
            op in ("=", "!=")
            and isinstance(left, ColumnRef)
            and isinstance(right, ColumnRef)
            and right.name < left.name
        ):
            left, right = right, left
        super().__init__((left, right))
        self.op = op
        self.left = left
        self.right = right

    @property
    def is_equijoin(self) -> bool:
        """True for ``column = column`` — a join predicate candidate."""
        return (
            self.op == "="
            and isinstance(self.left, ColumnRef)
            and isinstance(self.right, ColumnRef)
        )

    def _compute_signature(self) -> str:
        return f"cmp({self.left.signature}{self.op}{self.right.signature})"

    def evaluate(self, row: Mapping[str, Any]) -> Optional[bool]:
        left = self.left.evaluate(row)
        right = self.right.evaluate(row)
        if left is None or right is None:
            return None  # SQL three-valued logic: NULL comparisons are unknown
        if self.op == "=":
            return left == right
        if self.op == "!=":
            return left != right
        if self.op == "<":
            return left < right
        if self.op == "<=":
            return left <= right
        if self.op == ">":
            return left > right
        return left >= right

    def substitute(self, mapping: Mapping[str, str]) -> "Comparison":
        return Comparison(
            self.op, self.left.substitute(mapping), self.right.substitute(mapping)
        )


class _NaryBoolean(Expression):
    """Shared behaviour of AND/OR: flattening, deduplication, sorting."""

    __slots__ = ()
    _tag = ""

    def __init__(self, operands: Iterable[Expression]):
        flattened = []
        for operand in operands:
            if type(operand) is type(self):
                flattened.extend(operand.children)
            else:
                flattened.append(operand)
        # Deduplicate by signature, then sort for canonical ordering.
        unique = {e.signature: e for e in flattened}
        ordered = tuple(unique[s] for s in sorted(unique))
        if len(ordered) < 2:
            raise AlgebraError(
                f"{self._tag} requires at least two distinct operands; "
                f"use predicates.conjunction/disjunction to build safely"
            )
        super().__init__(ordered)

    def _compute_signature(self) -> str:
        inner = ",".join(c.signature for c in self.children)
        return f"{self._tag}({inner})"

    def substitute(self, mapping: Mapping[str, str]) -> "Expression":
        return type(self)(c.substitute(mapping) for c in self.children)


class And(_NaryBoolean):
    """N-ary conjunction (flattened, deduplicated, order-insensitive)."""

    __slots__ = ()
    _tag = "and"

    def evaluate(self, row: Mapping[str, Any]) -> Optional[bool]:
        saw_null = False
        for child in self.children:
            value = child.evaluate(row)
            if value is None:
                saw_null = True
            elif not value:
                return False
        return None if saw_null else True


class Or(_NaryBoolean):
    """N-ary disjunction (flattened, deduplicated, order-insensitive)."""

    __slots__ = ()
    _tag = "or"

    def evaluate(self, row: Mapping[str, Any]) -> Optional[bool]:
        saw_null = False
        for child in self.children:
            value = child.evaluate(row)
            if value is None:
                saw_null = True
            elif value:
                return True
        return None if saw_null else False


class Not(Expression):
    """Logical negation."""

    __slots__ = ("operand",)

    def __init__(self, operand: Expression):
        # Double negation is eliminated by predicates.negate(); the class
        # itself stores whatever it is given so signatures stay faithful.
        super().__init__((operand,))
        self.operand = operand

    def _compute_signature(self) -> str:
        return f"not({self.operand.signature})"

    def evaluate(self, row: Mapping[str, Any]) -> Optional[bool]:
        value = self.operand.evaluate(row)
        if value is None:
            return None
        return not value

    def substitute(self, mapping: Mapping[str, str]) -> "Not":
        return Not(self.operand.substitute(mapping))


def column(name: str) -> ColumnRef:
    """Shorthand constructor used pervasively in tests and examples."""
    return ColumnRef(name)


def literal(value: Any, datatype: Optional[DataType] = None) -> Literal:
    """Shorthand constructor for :class:`Literal`."""
    return Literal(value, datatype)


def compare(left: Any, op: str, right: Any) -> Comparison:
    """Build a comparison, lifting bare strings to columns and other
    Python values to literals.

    ``compare("Division.city", "=", literal("LA"))`` and
    ``compare("Order.quantity", ">", 100)`` both work.
    """

    def lift(operand: Any) -> Expression:
        if isinstance(operand, Expression):
            return operand
        if isinstance(operand, str):
            return ColumnRef(operand)
        return Literal(operand)

    return Comparison(op, lift(left), lift(right))
