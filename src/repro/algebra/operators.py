"""Logical relational operators: scan, select, project, join, aggregate.

Operator trees are immutable.  Each node computes its output schema at
construction time (so malformed plans fail fast) and exposes a canonical
*signature*.  Two subtrees with equal signatures compute the same relation
— the common-subexpression criterion of the paper (Section 3.1: merge
``u, v`` when ``S(u) = S(v)`` and ``R(u) = R(v)``).  Join signatures are
commutative, so ``A ⋈ B`` and ``B ⋈ A`` merge.

Attribute names flowing through operator trees are fully qualified
(``"Product.Pid"``); the SQL translator guarantees this.
"""

from __future__ import annotations

import enum
from typing import FrozenSet, Iterator, Optional, Sequence, Tuple

from repro.algebra.expressions import Expression
from repro.algebra import predicates as P
from repro.catalog.datatypes import DataType
from repro.catalog.schema import Attribute, RelationSchema
from repro.errors import AlgebraError


class Operator:
    """Base class for logical operators."""

    __slots__ = ("_children", "_schema", "_signature", "_hash")

    def __init__(self, children: Tuple["Operator", ...], schema: RelationSchema):
        self._children = children
        self._schema = schema
        self._signature: Optional[str] = None
        self._hash: Optional[int] = None

    @property
    def children(self) -> Tuple["Operator", ...]:
        return self._children

    @property
    def schema(self) -> RelationSchema:
        return self._schema

    @property
    def signature(self) -> str:
        if self._signature is None:
            self._signature = self._compute_signature()
        return self._signature

    def _compute_signature(self) -> str:
        raise NotImplementedError

    @property
    def label(self) -> str:
        """Short human-readable node label used in plan displays."""
        raise NotImplementedError

    def with_children(self, children: Sequence["Operator"]) -> "Operator":
        """A structurally identical node over new children."""
        raise NotImplementedError

    @property
    def is_leaf(self) -> bool:
        return not self._children

    def base_relations(self) -> FrozenSet[str]:
        """Names of every base relation in this subtree."""
        out = set()
        stack = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, Relation):
                out.add(node.name)
            stack.extend(node.children)
        return frozenset(out)

    def walk(self) -> Iterator["Operator"]:
        """Post-order traversal (children before parents)."""
        for child in self._children:
            yield from child.walk()
        yield self

    def node_count(self) -> int:
        return sum(1 for _ in self.walk())

    def describe(self, indent: int = 0) -> str:
        """Indented multi-line rendering of the subtree."""
        lines = ["  " * indent + self.label]
        for child in self._children:
            lines.append(child.describe(indent + 1))
        return "\n".join(lines)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Operator):
            return NotImplemented
        return self.signature == other.signature

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(self.signature)
        return self._hash

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.label})"


class Relation(Operator):
    """Leaf: a reference to a base relation (or a materialized view).

    The schema carried here should be *qualified*
    (:meth:`RelationSchema.qualify`) so attribute names are unambiguous
    throughout the plan.
    """

    __slots__ = ("name",)

    def __init__(self, name: str, schema: RelationSchema):
        super().__init__((), schema)
        self.name = name

    def _compute_signature(self) -> str:
        return f"rel({self.name})"

    @property
    def label(self) -> str:
        return self.name

    def with_children(self, children: Sequence[Operator]) -> "Relation":
        if children:
            raise AlgebraError("Relation is a leaf; it takes no children")
        return self


class Select(Operator):
    """Selection σ_predicate(child).  The predicate must be non-trivial."""

    __slots__ = ("predicate",)

    def __init__(self, child: Operator, predicate: Expression):
        if predicate is None:
            raise AlgebraError("Select predicate must not be None; omit the node")
        missing = predicate.columns() - set(child.schema.attribute_names)
        unresolvable = {
            c for c in missing if not _resolves_short(c, child.schema)
        }
        if unresolvable:
            raise AlgebraError(
                f"Select predicate references columns {sorted(unresolvable)} "
                f"not present in child schema {child.schema.attribute_names}"
            )
        super().__init__((child,), child.schema)
        self.predicate = predicate

    @property
    def child(self) -> Operator:
        return self._children[0]

    def _compute_signature(self) -> str:
        return f"select[{self.predicate.signature}]({self.child.signature})"

    @property
    def label(self) -> str:
        return f"σ[{_pretty(self.predicate)}]"

    def with_children(self, children: Sequence[Operator]) -> "Select":
        (child,) = children
        return Select(child, self.predicate)


class Project(Operator):
    """Projection π_attributes(child).

    By default projection is set-styled for costing purposes but the
    executor keeps duplicates (SQL bag semantics) — matching the paper,
    which never deduplicates.  With ``distinct=True`` (``SELECT
    DISTINCT``) the executor eliminates duplicate output tuples; the
    flag is part of the signature, so a bag projection never matches a
    duplicate-eliminating one during view rewriting.
    """

    __slots__ = ("attributes", "distinct")

    def __init__(
        self,
        child: Operator,
        attributes: Sequence[str],
        distinct: bool = False,
    ):
        if not attributes:
            raise AlgebraError("Project requires at least one attribute")
        resolved = tuple(child.schema.attribute(a).name for a in attributes)
        schema = child.schema.project(resolved, relation_name=child.schema.name)
        super().__init__((child,), schema)
        self.attributes = resolved
        self.distinct = bool(distinct)

    @property
    def child(self) -> Operator:
        return self._children[0]

    def _compute_signature(self) -> str:
        attrs = ",".join(sorted(self.attributes))
        tag = "distinct" if self.distinct else "project"
        return f"{tag}[{attrs}]({self.child.signature})"

    @property
    def label(self) -> str:
        prefix = "δπ" if self.distinct else "π"
        return f"{prefix}[{', '.join(self.attributes)}]"

    def with_children(self, children: Sequence[Operator]) -> "Project":
        (child,) = children
        return Project(child, self.attributes, self.distinct)


class Join(Operator):
    """Inner join on an optional predicate (``None`` = cross product).

    The signature is commutative in the two inputs; the schema, however,
    preserves input order (left attributes first), matching SQL.
    """

    __slots__ = ("condition",)

    def __init__(
        self,
        left: Operator,
        right: Operator,
        condition: Optional[Expression] = None,
    ):
        schema = left.schema.join(right.schema)
        if condition is not None:
            available = set(schema.attribute_names)
            missing = {
                c
                for c in condition.columns()
                if c not in available and not _resolves_short(c, schema)
            }
            if missing:
                raise AlgebraError(
                    f"Join condition references columns {sorted(missing)} "
                    f"not present in joined schema"
                )
        super().__init__((left, right), schema)
        self.condition = condition

    @property
    def left(self) -> Operator:
        return self._children[0]

    @property
    def right(self) -> Operator:
        return self._children[1]

    def _compute_signature(self) -> str:
        cond = self.condition.signature if self.condition is not None else "true"
        inner = "|".join(sorted((self.left.signature, self.right.signature)))
        return f"join[{cond}]({inner})"

    @property
    def label(self) -> str:
        if self.condition is None:
            return "×"
        return f"⋈[{_pretty(self.condition)}]"

    def with_children(self, children: Sequence[Operator]) -> "Join":
        left, right = children
        return Join(left, right, self.condition)


class Sort(Operator):
    """ORDER BY: a presentation-layer operator above the SPJ body.

    ``keys`` is a sequence of (attribute, ascending) pairs.  Unlike the
    set-oriented operators, a Sort's signature is order-*sensitive* in
    its keys.
    """

    __slots__ = ("keys",)

    def __init__(self, child: Operator, keys: Sequence[Tuple[str, bool]]):
        if not keys:
            raise AlgebraError("Sort requires at least one key")
        resolved = tuple(
            (child.schema.attribute(name).name, bool(ascending))
            for name, ascending in keys
        )
        super().__init__((child,), child.schema)
        self.keys = resolved

    @property
    def child(self) -> Operator:
        return self._children[0]

    def _compute_signature(self) -> str:
        rendered = ",".join(
            f"{name}:{'asc' if ascending else 'desc'}"
            for name, ascending in self.keys
        )
        return f"sort[{rendered}]({self.child.signature})"

    @property
    def label(self) -> str:
        rendered = ", ".join(
            f"{name} {'ASC' if ascending else 'DESC'}"
            for name, ascending in self.keys
        )
        return f"τ[{rendered}]"

    def with_children(self, children: Sequence[Operator]) -> "Sort":
        (child,) = children
        return Sort(child, self.keys)


class Limit(Operator):
    """LIMIT n: keep the first ``count`` rows of the input."""

    __slots__ = ("count",)

    def __init__(self, child: Operator, count: int):
        if count < 0:
            raise AlgebraError(f"LIMIT count must be >= 0: {count}")
        super().__init__((child,), child.schema)
        self.count = count

    @property
    def child(self) -> Operator:
        return self._children[0]

    def _compute_signature(self) -> str:
        return f"limit[{self.count}]({self.child.signature})"

    @property
    def label(self) -> str:
        return f"limit[{self.count}]"

    def with_children(self, children: Sequence[Operator]) -> "Limit":
        (child,) = children
        return Limit(child, self.count)


class AggregateFunction(enum.Enum):
    """Aggregate functions of the paper's 'future work' extension."""

    COUNT = "count"
    SUM = "sum"
    AVG = "avg"
    MIN = "min"
    MAX = "max"


class AggregateSpec:
    """One aggregate output: ``func(attribute) AS alias``.

    ``attribute`` is ``None`` only for ``COUNT(*)``.
    """

    __slots__ = ("function", "attribute", "alias")

    def __init__(
        self,
        function: AggregateFunction,
        attribute: Optional[str],
        alias: Optional[str] = None,
    ):
        if attribute is None and function is not AggregateFunction.COUNT:
            raise AlgebraError(f"{function.value} requires an attribute")
        self.function = function
        self.attribute = attribute
        self.alias = alias or (
            f"{function.value}_{attribute.rsplit('.', 1)[-1]}"
            if attribute
            else "count_all"
        )

    @property
    def signature(self) -> str:
        return f"{self.function.value}({self.attribute or '*'})->{self.alias}"

    def output_type(self, input_type: Optional[DataType]) -> DataType:
        if self.function is AggregateFunction.COUNT:
            return DataType.INTEGER
        if self.function in (AggregateFunction.SUM, AggregateFunction.AVG):
            return DataType.FLOAT
        if input_type is None:
            raise AlgebraError("MIN/MAX require a typed input attribute")
        return input_type

    def __repr__(self) -> str:
        return self.signature


class Aggregate(Operator):
    """GROUP BY aggregation (the paper's aggregation-query extension)."""

    __slots__ = ("group_by", "aggregates")

    def __init__(
        self,
        child: Operator,
        group_by: Sequence[str],
        aggregates: Sequence[AggregateSpec],
    ):
        if not aggregates and not group_by:
            raise AlgebraError("Aggregate needs group-by keys or aggregates")
        resolved_keys = tuple(child.schema.attribute(a).name for a in group_by)
        attributes = [child.schema.attribute(k) for k in resolved_keys]
        resolved_specs = []
        for spec in aggregates:
            if spec.attribute is not None:
                source = child.schema.attribute(spec.attribute)
                spec = AggregateSpec(spec.function, source.name, spec.alias)
                attributes.append(
                    Attribute(spec.alias, spec.output_type(source.datatype))
                )
            else:
                attributes.append(Attribute(spec.alias, spec.output_type(None)))
            resolved_specs.append(spec)
        schema = RelationSchema(child.schema.name, attributes)
        super().__init__((child,), schema)
        self.group_by = resolved_keys
        self.aggregates = tuple(resolved_specs)

    @property
    def child(self) -> Operator:
        return self._children[0]

    def _compute_signature(self) -> str:
        keys = ",".join(sorted(self.group_by))
        funcs = ",".join(sorted(s.signature for s in self.aggregates))
        return f"aggregate[{keys};{funcs}]({self.child.signature})"

    @property
    def label(self) -> str:
        funcs = ", ".join(s.signature for s in self.aggregates)
        if self.group_by:
            return f"γ[{', '.join(self.group_by)}; {funcs}]"
        return f"γ[{funcs}]"

    def with_children(self, children: Sequence[Operator]) -> "Aggregate":
        (child,) = children
        return Aggregate(child, self.group_by, self.aggregates)


def _resolves_short(name: str, schema: RelationSchema) -> bool:
    """Whether ``name`` resolves as an unambiguous short name in ``schema``."""
    try:
        schema.attribute(name)
        return True
    except Exception:
        return False


def _pretty(predicate: Expression) -> str:
    """Compact one-line predicate rendering for labels."""
    text = predicate.signature
    for noise in ("col(", "lit(", "cmp(", ")"):
        text = text.replace(noise, "" if noise != ")" else "")
    return text.replace("and(", "AND ").replace("or(", "OR ")


def select_if(child: Operator, predicate: Optional[Expression]) -> Operator:
    """``Select(child, p)`` unless ``p`` is TRUE, in which case ``child``."""
    if predicate is None:
        return child
    return Select(child, predicate)


def project_if(
    child: Operator,
    attributes: Optional[Sequence[str]],
    distinct: bool = False,
) -> Operator:
    """Project unless ``attributes`` is None/empty or already the schema.

    A ``distinct`` projection is always kept (even when it projects onto
    the full schema) because it still eliminates duplicates.
    """
    if not attributes:
        return child
    resolved = tuple(child.schema.attribute(a).name for a in attributes)
    if resolved == child.schema.attribute_names and not distinct:
        return child
    return Project(child, resolved, distinct)


# Re-export the predicate helpers most callers need alongside operators.
conjunction = P.conjunction
disjunction = P.disjunction
