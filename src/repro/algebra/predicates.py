"""Predicate manipulation utilities.

The MVPP algorithms lean on three predicate operations:

* splitting a ``WHERE`` clause into conjuncts and classifying them as
  selections versus join predicates (plan construction);
* forming the **disjunction of select conditions** on a base relation that
  is shared by several queries (paper Figure 4, step 5 — the pushed-down
  condition must admit every sharing query's tuples);
* syntactic **implication** checks so a query's residual selection can be
  recognised as redundant or re-applied above a shared node.

Everything here is purely syntactic; no data is touched.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.algebra.expressions import (
    And,
    Comparison,
    Expression,
    Literal,
    Not,
    Or,
)

TRUE: Optional[Expression] = None
"""The ``True`` predicate is represented as ``None`` throughout the
algebra (a ``Select`` with a ``None`` predicate is never constructed; the
node is simply omitted)."""


def conjuncts(predicate: Optional[Expression]) -> Tuple[Expression, ...]:
    """The top-level AND-factors of ``predicate`` (itself if not an AND)."""
    if predicate is None:
        return ()
    if isinstance(predicate, And):
        return predicate.children
    return (predicate,)


def disjuncts(predicate: Optional[Expression]) -> Tuple[Expression, ...]:
    """The top-level OR-terms of ``predicate`` (itself if not an OR)."""
    if predicate is None:
        return ()
    if isinstance(predicate, Or):
        return predicate.children
    return (predicate,)


def conjunction(parts: Iterable[Optional[Expression]]) -> Optional[Expression]:
    """AND together a sequence of predicates, treating ``None`` as TRUE.

    Returns ``None`` when every part is TRUE, the single part when only
    one remains, and a flattened/deduplicated :class:`And` otherwise.
    """
    collected: List[Expression] = []
    for part in parts:
        if part is not None:
            collected.extend(conjuncts(part))
    unique = {e.signature: e for e in collected}
    if not unique:
        return None
    if len(unique) == 1:
        return next(iter(unique.values()))
    return And(unique.values())


def disjunction(parts: Iterable[Optional[Expression]]) -> Optional[Expression]:
    """OR together predicates, treating ``None`` (TRUE) as absorbing.

    This is the operation Figure 4 step 5 applies to the select conditions
    of queries sharing a base relation: if *any* sharing query applies no
    selection, the pushed-down condition must be TRUE (``None``).
    """
    collected: List[Expression] = []
    for part in parts:
        if part is None:
            return None  # TRUE OR anything == TRUE
        collected.extend(disjuncts(part))
    unique = {e.signature: e for e in collected}
    if not unique:
        return None
    if len(unique) == 1:
        return next(iter(unique.values()))
    return Or(unique.values())


def negate(predicate: Expression) -> Expression:
    """Logical negation with double-negation elimination."""
    if isinstance(predicate, Not):
        return predicate.operand
    return Not(predicate)


def is_join_predicate(predicate: Expression) -> bool:
    """True for ``column = column`` equi-join conjuncts."""
    return isinstance(predicate, Comparison) and predicate.is_equijoin


def split_selection_and_join(
    predicate: Optional[Expression],
) -> Tuple[Tuple[Expression, ...], Tuple[Expression, ...]]:
    """Partition a WHERE clause's conjuncts into (selections, join predicates)."""
    selections: List[Expression] = []
    joins: List[Expression] = []
    for part in conjuncts(predicate):
        if is_join_predicate(part):
            joins.append(part)
        else:
            selections.append(part)
    return tuple(selections), tuple(joins)


def conjuncts_covered_by(
    predicate: Optional[Expression], columns: Set[str]
) -> Tuple[Tuple[Expression, ...], Tuple[Expression, ...]]:
    """Split conjuncts into those referencing only ``columns`` and the rest.

    This is the core test of selection push-down: a conjunct may move below
    an operator exactly when every column it mentions is available there.
    """
    inside: List[Expression] = []
    outside: List[Expression] = []
    for part in conjuncts(predicate):
        if part.columns() <= columns:
            inside.append(part)
        else:
            outside.append(part)
    return tuple(inside), tuple(outside)


def implies(stronger: Optional[Expression], weaker: Optional[Expression]) -> bool:
    """Syntactic implication test: does ``stronger`` imply ``weaker``?

    Sound but deliberately incomplete.  Handles:

    * TRUE on the weak side (everything implies TRUE);
    * identical signatures;
    * the weak side being a disjunction containing an implied term;
    * the strong side being a conjunction containing an implying term;
    * constant-range subsumption on a single column, e.g.
      ``x > 200`` implies ``x > 100`` and ``x = 5`` implies ``x <= 9``.

    A ``False`` return means "could not prove", not "does not hold".
    """
    if weaker is None:
        return True
    if stronger is None:
        return False
    if stronger.signature == weaker.signature:
        return True
    if isinstance(weaker, Or):
        if any(implies(stronger, term) for term in weaker.children):
            return True
    if isinstance(weaker, And):
        return all(implies(stronger, term) for term in weaker.children)
    if isinstance(stronger, And):
        if any(implies(term, weaker) for term in stronger.children):
            return True
    if isinstance(stronger, Comparison) and isinstance(weaker, Comparison):
        return _comparison_implies(stronger, weaker)
    return False


def _comparison_implies(stronger: Comparison, weaker: Comparison) -> bool:
    """Range subsumption for two comparisons on the same column vs literals."""
    if not (
        isinstance(stronger.right, Literal)
        and isinstance(weaker.right, Literal)
        and stronger.left.signature == weaker.left.signature
    ):
        return False
    a, b = stronger.right.value, weaker.right.value
    try:
        if stronger.op == "=":
            if weaker.op == "=":
                return bool(a == b)
            if weaker.op == "!=":
                return bool(a != b)
            if weaker.op == "<":
                return bool(a < b)
            if weaker.op == "<=":
                return bool(a <= b)
            if weaker.op == ">":
                return bool(a > b)
            if weaker.op == ">=":
                return bool(a >= b)
        if stronger.op in (">", ">="):
            boundary_in = stronger.op == ">="
            if weaker.op == ">":
                return bool(a > b) or (bool(a == b) and not boundary_in)
            if weaker.op == ">=":
                return bool(a >= b)
        if stronger.op in ("<", "<="):
            boundary_in = stronger.op == "<="
            if weaker.op == "<":
                return bool(a < b) or (bool(a == b) and not boundary_in)
            if weaker.op == "<=":
                return bool(a <= b)
    except TypeError:
        return False
    return False


def equijoin_pairs(predicate: Optional[Expression]) -> Tuple[Tuple[str, str], ...]:
    """The (left column, right column) pairs of every equi-join conjunct."""
    pairs = []
    for part in conjuncts(predicate):
        if is_join_predicate(part):
            pairs.append((part.left.name, part.right.name))  # type: ignore[union-attr]
    return tuple(pairs)


def referenced_columns(predicates: Sequence[Optional[Expression]]) -> Set[str]:
    """Union of the columns referenced by a sequence of predicates."""
    out: Set[str] = set()
    for predicate in predicates:
        if predicate is not None:
            out |= predicate.columns()
    return out
