"""Plan rewrites: pull-up and push-down of selections and projections.

These are the tree-level transformations the MVPP generation algorithm
(paper Figure 4) is built from:

* **step 2** — "for any query involving join operations, push up all the
  select and project operations": :func:`pull_up` strips a plan to its
  join skeleton plus a residual selection and output projection;
* **steps 5/6** — push the (possibly disjunctive) selection conditions and
  (union-of-attributes) projections back down as deep as possible:
  :func:`push_down_selections` / :func:`push_down_projections`.

:func:`optimize_tree` chains them into the classic heuristic single-query
optimization the paper assumes as its starting point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

from repro.algebra import predicates as P
from repro.algebra.expressions import Expression
from repro.algebra.operators import (
    Aggregate,
    Join,
    Limit,
    Operator,
    Project,
    Relation,
    Select,
    Sort,
    project_if,
    select_if,
)
from repro.errors import AlgebraError


@dataclass(frozen=True)
class PulledPlan:
    """A plan normal form: join skeleton + residual selection + output.

    ``skeleton`` contains only :class:`Relation` leaves and :class:`Join`
    nodes (conditions kept on the joins); every non-join filter lives in
    ``selection`` and the query's visible output in ``projection``.
    ``aggregate`` preserves an optional GROUP BY layer (the aggregation
    extension); it is applied between selection and projection.  ``sort``
    and ``limit`` are presentation-layer caps re-applied last.
    """

    skeleton: Operator
    selection: Optional[Expression]
    projection: Tuple[str, ...]
    aggregate: Optional[Aggregate] = None
    sort: Optional[Sort] = None
    limit: Optional[Limit] = None
    distinct: bool = False

    def assemble(self) -> Operator:
        """Rebuild an executable operator tree from the normal form."""
        plan = select_if(self.skeleton, self.selection)
        if self.aggregate is not None:
            plan = self.aggregate.with_children((plan,))
        plan = project_if(plan, self.projection, distinct=self.distinct)
        return self.decorate(plan)

    def decorate(self, plan: Operator) -> Operator:
        """Re-apply the presentation layers (sort, then limit) on top."""
        if self.sort is not None:
            plan = self.sort.with_children((plan,))
        if self.limit is not None:
            plan = self.limit.with_children((plan,))
        return plan


def pull_up(plan: Operator) -> PulledPlan:
    """Normalize ``plan`` by pulling selections and projections to the top.

    Join conditions stay attached to their join nodes (they define the
    join pattern that Figure 4 merges on); everything else floats up.
    """
    aggregate: Optional[Aggregate] = None
    sort: Optional[Sort] = None
    limit: Optional[Limit] = None
    projection: Tuple[str, ...] = plan.schema.attribute_names
    distinct = False

    node = plan
    # Peel the output layers: Limit / Sort / Project / Aggregate may cap
    # the plan (in presentation order: LIMIT above ORDER BY above SELECT).
    while True:
        if isinstance(node, Limit) and limit is None and sort is None:
            limit = node
            node = node.child
        elif isinstance(node, Sort) and sort is None:
            sort = node
            node = node.child
        elif isinstance(node, Project):
            distinct = distinct or node.distinct
            node = node.child
        elif isinstance(node, Aggregate):
            if aggregate is not None:
                raise AlgebraError("nested aggregation is not supported")
            aggregate = node
            node = node.child
        else:
            break

    skeleton, selections = _strip(node)
    return PulledPlan(
        skeleton=skeleton,
        selection=P.conjunction(selections),
        projection=projection,
        aggregate=aggregate,
        sort=sort,
        limit=limit,
        distinct=distinct,
    )


def _strip(node: Operator) -> Tuple[Operator, List[Expression]]:
    """Remove Select/Project layers below ``node``, collecting predicates."""
    if isinstance(node, Relation):
        return node, []
    if isinstance(node, Select):
        skeleton, selections = _strip(node.child)
        return skeleton, selections + list(P.conjuncts(node.predicate))
    if isinstance(node, Project):
        return _strip(node.child)
    if isinstance(node, Join):
        left, left_sel = _strip(node.left)
        right, right_sel = _strip(node.right)
        return Join(left, right, node.condition), left_sel + right_sel
    if isinstance(node, Aggregate):
        raise AlgebraError("aggregation below a join cannot be pulled up")
    if isinstance(node, (Sort, Limit)):
        raise AlgebraError(
            f"{type(node).__name__} below a join cannot be pulled up; "
            f"ORDER BY/LIMIT are presentation-layer operators"
        )
    raise AlgebraError(f"unsupported operator in pull_up: {type(node).__name__}")


def push_down_selections(
    skeleton: Operator, selection: Optional[Expression]
) -> Operator:
    """Place each conjunct of ``selection`` at the deepest covering node.

    A conjunct moves below a join when the columns it references are all
    available on one side; conjuncts spanning both sides (non-equijoin
    residuals) stay above that join.
    """
    conjs = list(P.conjuncts(selection))
    return _place(skeleton, conjs)


def _place(node: Operator, conjs: List[Expression]) -> Operator:
    if not conjs:
        return node
    if isinstance(node, Join):
        left_cols = set(node.left.schema.attribute_names)
        right_cols = set(node.right.schema.attribute_names)
        to_left, to_right, here = [], [], []
        for conjunct in conjs:
            columns = conjunct.columns()
            if columns <= left_cols:
                to_left.append(conjunct)
            elif columns <= right_cols:
                to_right.append(conjunct)
            else:
                here.append(conjunct)
        rebuilt = Join(
            _place(node.left, to_left),
            _place(node.right, to_right),
            node.condition,
        )
        return select_if(rebuilt, P.conjunction(here))
    return select_if(node, P.conjunction(conjs))


def push_down_projections(plan: Operator, needed: Sequence[str]) -> Operator:
    """Insert projections keeping only columns needed above each point.

    ``needed`` is the query's output attribute list; predicate and join
    columns are added automatically on the way down (the paper's "union of
    the projection attributes ... plus the join attribute(s)").
    """
    return _project_down(plan, set(_resolve_all(plan, needed)))


def _resolve_all(plan: Operator, names: Sequence[str]) -> List[str]:
    return [plan.schema.attribute(n).name for n in names]


def _project_down(node: Operator, needed: Set[str]) -> Operator:
    if isinstance(node, Relation):
        keep = [a for a in node.schema.attribute_names if a in needed]
        return project_if(node, keep or node.schema.attribute_names[:1])
    if isinstance(node, Select):
        below = needed | set(node.predicate.columns())
        return Select(_project_down(node.child, below), node.predicate)
    if isinstance(node, Project):
        keep = [a for a in node.attributes if a in needed] or list(node.attributes)
        below = set(keep)
        return project_if(_project_down(node.child, below), keep, distinct=node.distinct)
    if isinstance(node, Join):
        below = set(needed)
        if node.condition is not None:
            below |= node.condition.columns()
        left_needed = {a for a in node.left.schema.attribute_names if a in below}
        right_needed = {a for a in node.right.schema.attribute_names if a in below}
        return Join(
            _project_down(node.left, left_needed or set(node.left.schema.attribute_names)),
            _project_down(node.right, right_needed or set(node.right.schema.attribute_names)),
            node.condition,
        )
    if isinstance(node, Aggregate):
        below = set(node.group_by) | {
            s.attribute for s in node.aggregates if s.attribute is not None
        }
        return node.with_children((_project_down(node.child, below),))
    raise AlgebraError(f"unsupported operator in projection push-down: {node!r}")


def optimize_tree(plan: Operator, project_leaves: bool = True) -> Operator:
    """Heuristic single-tree optimization: selections then projections down.

    This is the classic textbook rewrite the paper assumes has produced
    each query's plan before join ordering; the join order itself is
    chosen by :mod:`repro.optimizer.join_order`.
    """
    pulled = pull_up(plan)
    body = push_down_selections(pulled.skeleton, pulled.selection)
    if pulled.aggregate is not None:
        body = pulled.aggregate.with_children((body,))
    result = project_if(body, pulled.projection, distinct=pulled.distinct)
    if project_leaves:
        result = push_down_projections(result, result.schema.attribute_names)
    return pulled.decorate(result)
