"""Operator-tree utilities: search, replacement, structural queries.

Operators are immutable, so "mutation" helpers return rebuilt trees and
share unchanged subtrees with the input.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.algebra.operators import Operator, Relation


def find(root: Operator, match: Callable[[Operator], bool]) -> List[Operator]:
    """All nodes (post-order) for which ``match`` returns True."""
    return [node for node in root.walk() if match(node)]


def find_by_signature(root: Operator, signature: str) -> Optional[Operator]:
    """The first node whose signature equals ``signature``, or None."""
    for node in root.walk():
        if node.signature == signature:
            return node
    return None


def leaves(root: Operator) -> List[Relation]:
    """All base-relation leaves of the tree (left-to-right order)."""
    return [node for node in root.walk() if isinstance(node, Relation)]


def replace(root: Operator, target_signature: str, replacement: Operator) -> Operator:
    """Rebuild ``root`` with every subtree matching ``target_signature``
    replaced by ``replacement``.

    Replacement short-circuits: nothing below a replaced subtree is
    visited.  Returns ``root`` unchanged (same object) when no match
    exists.
    """
    if root.signature == target_signature:
        return replacement
    new_children = tuple(
        replace(child, target_signature, replacement) for child in root.children
    )
    if all(new is old for new, old in zip(new_children, root.children)):
        return root
    return root.with_children(new_children)


def subtree_signatures(root: Operator) -> Dict[str, Operator]:
    """Map of signature -> node for every subtree (duplicates collapse)."""
    return {node.signature: node for node in root.walk()}


def contains(root: Operator, signature: str) -> bool:
    return find_by_signature(root, signature) is not None


def common_subexpressions(plans: Sequence[Operator]) -> Dict[str, List[Operator]]:
    """Subtrees appearing in more than one plan.

    Returns signature -> one representative node per plan that contains
    it.  Leaf relations are excluded: sharing a base relation is not a
    common *subexpression* in the paper's sense (Section 3.1 requires a
    shared operation result).
    """
    per_plan: List[Dict[str, Operator]] = [subtree_signatures(p) for p in plans]
    counts: Dict[str, List[Operator]] = {}
    for plan_map in per_plan:
        for signature, node in plan_map.items():
            if isinstance(node, Relation):
                continue
            counts.setdefault(signature, []).append(node)
    return {s: nodes for s, nodes in counts.items() if len(nodes) > 1}


def maximal_common_subexpressions(
    plans: Sequence[Operator],
) -> Dict[str, List[Operator]]:
    """Common subexpressions not contained in a larger common subexpression.

    These are the profitable sharing points: materializing a maximal
    shared node subsumes the benefit of materializing its shared
    descendants for the same pair of queries.
    """
    shared = common_subexpressions(plans)
    maximal = {}
    for signature, nodes in shared.items():
        node = nodes[0]
        enclosed = any(
            signature != other_sig
            and contains(shared[other_sig][0], signature)
            for other_sig in shared
        )
        if not enclosed:
            maximal[signature] = nodes
    return maximal
