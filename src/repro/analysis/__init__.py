"""Reporting and visualization helpers."""

from repro.analysis.dot import to_dot, vertex_label
from repro.analysis.sensitivity import (
    FrequencyBreakpoint,
    MarginalValue,
    add_one,
    drop_one,
    frequency_breakpoints,
)
from repro.analysis.report import (
    design_report,
    format_blocks,
    mvpp_cost_table,
    relation_table,
    render_table,
    strategy_table,
)

__all__ = [
    "FrequencyBreakpoint",
    "MarginalValue",
    "add_one",
    "design_report",
    "drop_one",
    "format_blocks",
    "frequency_breakpoints",
    "mvpp_cost_table",
    "relation_table",
    "render_table",
    "strategy_table",
    "to_dot",
    "vertex_label",
]
