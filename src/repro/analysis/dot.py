"""Graphviz/DOT export of MVPPs.

Recreates the paper's figures: base relations as boxes (the paper's □),
operations as ellipses, query roots as double circles (the paper's ●),
each labeled with its cost annotations.  The output is plain DOT text;
render it with ``dot -Tpng`` if Graphviz is available.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set

from repro.analysis.report import format_blocks
from repro.mvpp.graph import MVPP, Vertex, VertexKind


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def vertex_label(vertex: Vertex) -> str:
    lines = [vertex.name or vertex.operator.label]
    if vertex.kind is VertexKind.OPERATION:
        lines.append(vertex.operator.label)
        lines.append(f"Ca={format_blocks(vertex.access_cost)}")
    elif vertex.is_root:
        lines.append(f"fq={vertex.frequency:g}")
    elif vertex.is_leaf:
        lines.append(f"fu={vertex.frequency:g}")
    return "\\n".join(_escape(line) for line in lines)


def to_dot(
    mvpp: MVPP,
    highlight: Optional[Iterable[Vertex]] = None,
    rankdir: str = "BT",
) -> str:
    """Render ``mvpp`` as DOT; ``highlight`` marks materialized vertices."""
    highlighted: Set[int] = {v.vertex_id for v in (highlight or ())}
    lines = [
        f'digraph "{_escape(mvpp.name)}" {{',
        f"  rankdir={rankdir};",
        '  node [fontsize=10, fontname="Helvetica"];',
    ]
    for vertex in mvpp.topological_order():
        shape = {
            VertexKind.BASE: "box",
            VertexKind.OPERATION: "ellipse",
            VertexKind.QUERY: "doublecircle",
        }[vertex.kind]
        style = ""
        if vertex.vertex_id in highlighted:
            style = ', style=filled, fillcolor="lightblue"'
        lines.append(
            f'  v{vertex.vertex_id} [shape={shape}, '
            f'label="{vertex_label(vertex)}"{style}];'
        )
    for vertex in mvpp.topological_order():
        for child_id in vertex.children:
            lines.append(f"  v{child_id} -> v{vertex.vertex_id};")
    lines.append("}")
    return "\n".join(lines)
