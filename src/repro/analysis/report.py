"""Paper-style reporting: number formatting and ASCII tables.

The paper prints costs as ``35.37k`` / ``50.082m`` block accesses and
compares strategies in Table 2; these helpers render the same style so
the benchmark output is visually comparable with the paper.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.mvpp.graph import MVPP
from repro.mvpp.strategies import StrategyResult
from repro.workload.spec import Workload


def format_blocks(value: float) -> str:
    """Render a block count the way the paper does (``35.37k``, ``50.08m``)."""
    if value >= 1e9:
        return f"{value / 1e9:.3f}g"
    if value >= 1e6:
        return f"{value / 1e6:.3f}m"
    if value >= 1e3:
        return f"{value / 1e3:.2f}k"
    return f"{value:.0f}"


def render_table(
    headers: Sequence[str], rows: Iterable[Sequence[str]], title: Optional[str] = None
) -> str:
    """Plain fixed-width table with a header rule."""
    materialized_rows: List[List[str]] = [list(map(str, r)) for r in rows]
    widths = [len(h) for h in headers]
    for row in materialized_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    parts = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append("  ".join("-" * w for w in widths))
    parts.extend(line(row) for row in materialized_rows)
    return "\n".join(parts)


def strategy_table(results: Sequence[StrategyResult], title: str = "") -> str:
    """A Table-2-style comparison of materialization strategies."""
    rows = []
    best = min(r.total_cost for r in results) if results else 0.0
    for result in results:
        marker = " *" if result.total_cost == best else ""
        views = ", ".join(result.materialized) if result.materialized else "(none)"
        rows.append(
            [
                result.name,
                views,
                format_blocks(result.query_cost),
                format_blocks(result.maintenance_cost),
                format_blocks(result.total_cost) + marker,
            ]
        )
    return render_table(
        ["Strategy", "Materialized views", "Query cost", "Maintenance", "Total"],
        rows,
        title=title or "Costs for different view materialization strategies",
    )


def relation_table(workload: Workload) -> str:
    """A Table-1-style listing of base relation statistics."""
    rows = []
    for name in workload.catalog.relation_names:
        if not workload.statistics.has_relation(name):
            continue
        stats = workload.statistics.relation(name)
        rows.append(
            [
                name,
                f"{stats.cardinality:,} records",
                f"{format_blocks(stats.blocks)} blocks",
                f"fu={workload.update_frequency(name):g}",
            ]
        )
    return render_table(
        ["Relation", "Size", "Blocks", "Update freq"],
        rows,
        title=f"Relation statistics — workload {workload.name!r}",
    )


def design_report(result) -> str:
    """A complete human-readable report for a
    :class:`~repro.mvpp.generation.DesignResult`: the chosen views with
    their sizes and costs, the predicted cost breakdown against the naive
    extremes, and a drop-one sensitivity table.
    """
    from repro.analysis.sensitivity import drop_one
    from repro.mvpp import strategies

    mvpp = result.mvpp
    calculator = result.calculator
    parts = [f"Materialized view design for MVPP {mvpp.name!r}"]

    rows = []
    for vertex in result.materialized:
        queries = ", ".join(q.name for q in mvpp.queries_using(vertex))
        rows.append(
            [
                vertex.name,
                vertex.operator.label,
                f"{vertex.stats.cardinality:,}" if vertex.stats else "",
                f"{vertex.stats.blocks:,}" if vertex.stats else "",
                format_blocks(vertex.access_cost),
                queries,
            ]
        )
    parts.append(
        render_table(
            ["View", "Operation", "Rows", "Blocks", "Ca", "Serves"],
            rows,
            title="Chosen views",
        )
    )

    comparison = [
        strategies.materialize_nothing(mvpp, calculator),
        strategies.materialize_all_queries(mvpp, calculator),
        strategies.evaluate(mvpp, calculator, "this design", result.materialized),
    ]
    parts.append(strategy_table(comparison, title="Against the extremes"))

    marginals = drop_one(mvpp, calculator, result.materialized)
    parts.append(
        render_table(
            ["View", "Cost if dropped", "Marginal value"],
            [
                [m.vertex, format_blocks(m.new_total), format_blocks(m.delta)]
                for m in marginals
            ],
            title="Drop-one sensitivity",
        )
    )
    return "\n\n".join(parts)


def mvpp_cost_table(mvpp: MVPP) -> str:
    """Per-vertex Ca/Cm listing (the Figure-3 node labels)."""
    rows = []
    for vertex in mvpp.topological_order():
        frequency = ""
        if vertex.is_root:
            frequency = f"fq={vertex.frequency:g}"
        elif vertex.is_leaf:
            frequency = f"fu={vertex.frequency:g}"
        stats = vertex.stats
        rows.append(
            [
                vertex.name,
                vertex.kind.value,
                frequency,
                f"{stats.cardinality:,}" if stats else "",
                f"{stats.blocks:,}" if stats else "",
                format_blocks(vertex.access_cost),
                format_blocks(vertex.maintenance_cost),
                vertex.operator.label,
            ]
        )
    return render_table(
        ["Node", "Kind", "Freq", "Rows", "Blocks", "Ca", "Cm", "Operation"],
        rows,
        title=f"MVPP {mvpp.name!r}",
    )
