"""Sensitivity analysis for a materialization design.

Operations teams need to know *why* a view is in the design and what it
would cost to drop it (or to add a candidate that just missed the cut).
This module computes marginal values against a fixed design:

* **drop-one**: total-cost increase if one chosen view is removed —
  the view's marginal contribution;
* **add-one**: total-cost change if one unchosen candidate is added —
  negative values reveal candidates the heuristic missed (on the paper's
  example there are none: the design matches the exhaustive optimum);
* **frequency sensitivity**: how far a single query's ``fq`` can fall
  before dropping some chosen view becomes profitable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.mvpp.cost import MVPPCostCalculator
from repro.mvpp.graph import MVPP, Vertex


@dataclass(frozen=True)
class MarginalValue:
    """The effect of toggling one vertex against a fixed design."""

    vertex: str
    action: str  # "drop" | "add"
    base_total: float
    new_total: float

    @property
    def delta(self) -> float:
        """Positive = the action makes the design worse."""
        return self.new_total - self.base_total


def drop_one(
    mvpp: MVPP,
    calculator: MVPPCostCalculator,
    design: Sequence[Vertex],
) -> List[MarginalValue]:
    """Marginal contribution of every chosen view."""
    base_total = calculator.breakdown(design).total
    out = []
    for vertex in design:
        without = [v for v in design if v.vertex_id != vertex.vertex_id]
        out.append(
            MarginalValue(
                vertex=vertex.name,
                action="drop",
                base_total=base_total,
                new_total=calculator.breakdown(without).total,
            )
        )
    return sorted(out, key=lambda m: -m.delta)


def add_one(
    mvpp: MVPP,
    calculator: MVPPCostCalculator,
    design: Sequence[Vertex],
    limit: Optional[int] = None,
) -> List[MarginalValue]:
    """Effect of adding each unchosen operation vertex (best first)."""
    chosen_ids = {v.vertex_id for v in design}
    base_total = calculator.breakdown(design).total
    out = []
    for vertex in mvpp.operations:
        if vertex.vertex_id in chosen_ids:
            continue
        out.append(
            MarginalValue(
                vertex=vertex.name,
                action="add",
                base_total=base_total,
                new_total=calculator.breakdown(list(design) + [vertex]).total,
            )
        )
    out.sort(key=lambda m: m.delta)
    return out[:limit] if limit is not None else out


@dataclass(frozen=True)
class FrequencyBreakpoint:
    """How far one query's fq can drop before the design should change."""

    query: str
    current_frequency: float
    breakpoint_frequency: Optional[float]  # None = design stable down to 0

    @property
    def headroom(self) -> Optional[float]:
        if self.breakpoint_frequency is None:
            return None
        if self.current_frequency <= 0:
            return 0.0
        return 1.0 - self.breakpoint_frequency / self.current_frequency


def frequency_breakpoints(
    mvpp: MVPP,
    calculator: MVPPCostCalculator,
    design: Sequence[Vertex],
    steps: int = 20,
) -> List[FrequencyBreakpoint]:
    """For each query, bisect the fq value below which dropping some
    chosen view beats keeping the design intact."""
    out = []
    for root in mvpp.roots:
        original = root.frequency
        try:
            breakpoint_value = _bisect_breakpoint(
                root, calculator, design, original, steps
            )
        finally:
            root.frequency = original
        out.append(
            FrequencyBreakpoint(root.name, original, breakpoint_value)
        )
    return out


def _design_is_locally_optimal(
    calculator: MVPPCostCalculator, design: Sequence[Vertex]
) -> bool:
    total = calculator.breakdown(design).total
    for vertex in design:
        without = [v for v in design if v.vertex_id != vertex.vertex_id]
        if calculator.breakdown(without).total < total:
            return False
    return True


def _bisect_breakpoint(root, calculator, design, original, steps):
    root.frequency = 0.0
    if _design_is_locally_optimal(calculator, design):
        return None  # stable all the way down
    low, high = 0.0, original
    for _ in range(steps):
        mid = (low + high) / 2
        root.frequency = mid
        if _design_is_locally_optimal(calculator, design):
            high = mid
        else:
            low = mid
    return high
