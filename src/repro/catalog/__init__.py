"""Schemas, types, and statistics — the logical/physical metadata layer."""

from repro.catalog.collector import collect_statistics
from repro.catalog.datatypes import DataType, common_type, infer_type
from repro.catalog.histogram import (
    DEFAULT_BUCKETS,
    EquiWidthHistogram,
    build_histogram,
)
from repro.catalog.schema import Attribute, Catalog, RelationSchema
from repro.catalog.statistics import (
    DEFAULT_RANGE_SELECTIVITY,
    DEFAULT_SELECTION_SELECTIVITY,
    ColumnStatistics,
    RelationStatistics,
    StatisticsCatalog,
    blocks_for,
)

__all__ = [
    "Attribute",
    "Catalog",
    "ColumnStatistics",
    "DEFAULT_BUCKETS",
    "DataType",
    "EquiWidthHistogram",
    "build_histogram",
    "collect_statistics",
    "DEFAULT_RANGE_SELECTIVITY",
    "DEFAULT_SELECTION_SELECTIVITY",
    "RelationSchema",
    "RelationStatistics",
    "StatisticsCatalog",
    "blocks_for",
    "common_type",
    "infer_type",
]
