"""Deriving a statistics catalog from loaded data.

The paper assumes the statistics of Table 1 are given.  In a running
warehouse they come from the data: :func:`collect_statistics` scans a
:class:`~repro.executor.engine.Database` (or raw row mappings) and builds
a :class:`StatisticsCatalog` with cardinalities, block counts, distinct
counts, min/max bounds, histograms for numeric/date columns, and join
selectivities for every foreign-key-looking column pair the caller
declares.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.catalog.histogram import DEFAULT_BUCKETS, build_histogram
from repro.catalog.statistics import StatisticsCatalog
from repro.errors import CatalogError


def collect_statistics(
    tables: Mapping[str, Any],
    buckets: int = DEFAULT_BUCKETS,
    join_keys: Sequence[Tuple[str, str]] = (),
    default_blocking_factor: float = 10.0,
) -> StatisticsCatalog:
    """Build statistics from data.

    ``tables`` maps relation names either to
    :class:`~repro.storage.table.Table` objects or to lists of row dicts
    (with qualified or short column names matching each other).

    ``join_keys`` lists qualified equi-join attribute pairs (e.g.
    ``("Order.Cid", "Customer.Cid")``); their join selectivity is measured
    as ``|R ⋈ S| / (|R|·|S|)`` computed exactly from the key values.
    """
    statistics = StatisticsCatalog(default_blocking_factor=default_blocking_factor)
    columns: Dict[str, List[Any]] = {}

    for name, source in tables.items():
        rows, blocks = _rows_and_blocks(source, default_blocking_factor)
        statistics.set_relation(name, len(rows), blocks)
        if not rows:
            continue
        for column_name in rows[0]:
            qualified = (
                column_name if "." in column_name else f"{name}.{column_name}"
            )
            values = [row[column_name] for row in rows]
            columns[qualified] = values
            non_null = [v for v in values if v is not None]
            distinct = max(1, len(set(non_null)))
            minimum = maximum = None
            try:
                if non_null:
                    minimum, maximum = min(non_null), max(non_null)
            except TypeError:
                minimum = maximum = None
            statistics.set_column(qualified, distinct, minimum, maximum)
            histogram = build_histogram(values, buckets)
            if histogram is not None:
                statistics.set_histogram(qualified, histogram)

    for left, right in join_keys:
        if left not in columns or right not in columns:
            raise CatalogError(
                f"join key {left!r}/{right!r} not found in collected columns"
            )
        statistics.set_join_selectivity(
            left, right, _measured_join_selectivity(columns[left], columns[right])
        )
    return statistics


def _rows_and_blocks(source: Any, blocking_factor: float) -> Tuple[List[Mapping], int]:
    from repro.storage.table import Table

    if isinstance(source, Table):
        return source.rows(), source.num_blocks
    rows = list(source)
    import math

    blocks = max(1, math.ceil(len(rows) / blocking_factor)) if rows else 0
    return rows, blocks


def _measured_join_selectivity(
    left_values: Sequence[Any], right_values: Sequence[Any]
) -> float:
    """Exact ``|R ⋈ S| / (|R|·|S|)`` on the two key columns."""
    if not left_values or not right_values:
        return 0.0
    counts: Dict[Any, int] = {}
    for value in right_values:
        counts[value] = counts.get(value, 0) + 1
    matches = sum(counts.get(value, 0) for value in left_values)
    return matches / (len(left_values) * len(right_values))
