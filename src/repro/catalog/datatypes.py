"""Attribute type system.

The relational substrate supports a small set of scalar types that is
sufficient for the warehouse workloads in the paper (select/project/join
queries over products, orders, customers and dates) plus the aggregation
extension.  Dates are represented as :class:`datetime.date`.
"""

from __future__ import annotations

import datetime
import enum
from typing import Any

from repro.errors import TypeMismatchError


class DataType(enum.Enum):
    """Scalar attribute types supported by the engine."""

    INTEGER = "integer"
    FLOAT = "float"
    STRING = "string"
    DATE = "date"
    BOOLEAN = "boolean"

    @property
    def python_type(self) -> type:
        """The Python type used to represent values of this type."""
        return _PYTHON_TYPES[self]

    def validate(self, value: Any) -> Any:
        """Return ``value`` if it conforms to this type, else raise.

        ``None`` is accepted for every type (SQL NULL).  Integers are
        accepted where floats are expected, mirroring SQL numeric
        coercion.
        """
        if value is None:
            return value
        if self is DataType.FLOAT and isinstance(value, int) and not isinstance(value, bool):
            return float(value)
        if self is DataType.INTEGER and isinstance(value, bool):
            raise TypeMismatchError(f"boolean {value!r} is not a valid INTEGER")
        if not isinstance(value, self.python_type):
            raise TypeMismatchError(
                f"value {value!r} of type {type(value).__name__} is not a valid {self.name}"
            )
        return value

    def parse(self, text: str) -> Any:
        """Parse a string literal into a value of this type.

        Used by the data generator and the SQL translator for typed
        literals such as dates written as ``'1996-07-01'``.
        """
        if self is DataType.INTEGER:
            return int(text)
        if self is DataType.FLOAT:
            return float(text)
        if self is DataType.DATE:
            return datetime.date.fromisoformat(text)
        if self is DataType.BOOLEAN:
            lowered = text.strip().lower()
            if lowered in ("true", "t", "1"):
                return True
            if lowered in ("false", "f", "0"):
                return False
            raise TypeMismatchError(f"cannot parse {text!r} as BOOLEAN")
        return text

    @property
    def is_numeric(self) -> bool:
        return self in (DataType.INTEGER, DataType.FLOAT)

    @property
    def is_orderable(self) -> bool:
        """Whether ``<``/``>`` comparisons are meaningful for this type."""
        return self is not DataType.BOOLEAN


_PYTHON_TYPES = {
    DataType.INTEGER: int,
    DataType.FLOAT: float,
    DataType.STRING: str,
    DataType.DATE: datetime.date,
    DataType.BOOLEAN: bool,
}


def infer_type(value: Any) -> DataType:
    """Infer the :class:`DataType` of a Python value.

    Raises :class:`TypeMismatchError` for unsupported value types.
    """
    if isinstance(value, bool):
        return DataType.BOOLEAN
    if isinstance(value, int):
        return DataType.INTEGER
    if isinstance(value, float):
        return DataType.FLOAT
    if isinstance(value, str):
        return DataType.STRING
    if isinstance(value, datetime.date):
        return DataType.DATE
    raise TypeMismatchError(f"unsupported value type: {type(value).__name__}")


def common_type(left: DataType, right: DataType) -> DataType:
    """The type two comparison operands are promoted to.

    INTEGER and FLOAT are compatible (promoted to FLOAT); any other pair
    must match exactly.
    """
    if left is right:
        return left
    if left.is_numeric and right.is_numeric:
        return DataType.FLOAT
    raise TypeMismatchError(f"incompatible types: {left.name} and {right.name}")
