"""Equi-width histograms for selectivity estimation.

Table 1 hands the estimator exact selectivities; real deployments derive
them from data.  An :class:`EquiWidthHistogram` summarizes one numeric or
date column with fixed-width buckets and answers equality and range
selectivity queries with intra-bucket interpolation — the estimator
consults it before falling back to distinct-count heuristics.
"""

from __future__ import annotations

import math
from typing import Any, List, Optional, Sequence

from repro.catalog.statistics import _as_number
from repro.errors import CatalogError

#: Default bucket count; 20 buckets keep range errors near ±5%.
DEFAULT_BUCKETS = 20


class EquiWidthHistogram:
    """Fixed-width bucket counts over a numeric/date column.

    ``None`` values are tracked separately (``null_fraction``) and are
    excluded from every selectivity, mirroring SQL semantics where NULL
    comparisons never qualify.
    """

    def __init__(self, values: Sequence[Any], buckets: int = DEFAULT_BUCKETS):
        if buckets < 1:
            raise CatalogError(f"bucket count must be >= 1: {buckets}")
        non_null = [v for v in values if v is not None]
        self.total = len(values)
        self.null_count = self.total - len(non_null)
        if not non_null:
            raise CatalogError("histogram needs at least one non-null value")
        numeric = [_as_number(v) for v in non_null]
        self.minimum = min(numeric)
        self.maximum = max(numeric)
        self.buckets = buckets
        self.counts: List[int] = [0] * buckets
        span = self.maximum - self.minimum
        if span <= 0:
            # Degenerate: a single distinct value; everything in bucket 0.
            self.width = 1.0
            self.counts[0] = len(numeric)
        else:
            self.width = span / buckets
            for value in numeric:
                index = min(int((value - self.minimum) / self.width), buckets - 1)
                self.counts[index] += 1

    @property
    def non_null_count(self) -> int:
        return self.total - self.null_count

    @property
    def null_fraction(self) -> float:
        return self.null_count / self.total if self.total else 0.0

    def _fraction_below(self, point: float, inclusive: bool) -> float:
        """Fraction of non-null values ``< point`` (``<=`` if inclusive).

        Linear interpolation inside the bucket containing ``point``.
        """
        if self.non_null_count == 0:
            return 0.0
        if point < self.minimum:
            return 0.0
        if point > self.maximum:
            return 1.0
        if self.maximum == self.minimum:
            return 1.0 if (point > self.minimum or inclusive) else 0.0
        index = min(int((point - self.minimum) / self.width), self.buckets - 1)
        below = sum(self.counts[:index])
        bucket_start = self.minimum + index * self.width
        inside = (point - bucket_start) / self.width
        below += self.counts[index] * min(max(inside, 0.0), 1.0)
        return below / self.non_null_count

    def selectivity(self, op: str, value: Any) -> float:
        """Fraction of *all* rows satisfying ``column <op> value``."""
        point = _as_number(value)
        non_null_share = 1.0 - self.null_fraction
        if op in ("<", "<="):
            fraction = self._fraction_below(point, inclusive=op == "<=")
        elif op in (">", ">="):
            fraction = 1.0 - self._fraction_below(point, inclusive=op == ">")
        elif op == "=":
            # Assume uniformity within the containing bucket.
            if point < self.minimum or point > self.maximum:
                return 0.0
            if self.maximum == self.minimum:
                return non_null_share
            index = min(
                int((point - self.minimum) / self.width), self.buckets - 1
            )
            bucket_fraction = self.counts[index] / max(self.non_null_count, 1)
            # One "distinct slot" per unit of width, at least one slot.
            slots = max(self.width, 1.0)
            fraction = bucket_fraction / slots
        elif op == "!=":
            return non_null_share * (1.0 - self.selectivity("=", value) / max(non_null_share, 1e-12))
        else:
            raise CatalogError(f"histogram cannot estimate operator {op!r}")
        return min(1.0, max(0.0, fraction)) * non_null_share


def build_histogram(
    values: Sequence[Any], buckets: int = DEFAULT_BUCKETS
) -> Optional[EquiWidthHistogram]:
    """Histogram of ``values``, or None when the column is not orderable
    numerically (strings, booleans) or entirely null."""
    non_null = [v for v in values if v is not None]
    if not non_null:
        return None
    try:
        for sample in non_null[:10]:
            _as_number(sample)
    except (TypeError, ValueError, AttributeError):
        return None
    return EquiWidthHistogram(values, buckets)
