"""Relation schemas and the system catalog.

A :class:`RelationSchema` is an ordered list of named, typed attributes.
The :class:`Catalog` maps relation names to schemas and is the single
source of truth the SQL translator, the optimizer and the MVPP builder
resolve names against.

Attribute names inside one relation are unique.  Across relations they may
repeat (``Product.name`` vs ``Customer.name``); consumers disambiguate with
qualified references, and :meth:`RelationSchema.join` qualifies colliding
names automatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.catalog.datatypes import DataType
from repro.errors import (
    CatalogError,
    DuplicateRelationError,
    UnknownAttributeError,
    UnknownRelationError,
)


@dataclass(frozen=True)
class Attribute:
    """A named, typed column of a relation.

    ``name`` may be qualified (``"Product.name"``) for attributes of
    derived relations whose unqualified name would collide.
    """

    name: str
    datatype: DataType

    @property
    def short_name(self) -> str:
        """The unqualified attribute name (text after the last dot)."""
        return self.name.rsplit(".", 1)[-1]

    def qualified(self, relation: str) -> "Attribute":
        """A copy of this attribute qualified with ``relation``."""
        return Attribute(f"{relation}.{self.short_name}", self.datatype)

    def __str__(self) -> str:
        return f"{self.name}:{self.datatype.value}"


class RelationSchema:
    """An ordered, immutable collection of attributes with a relation name."""

    def __init__(self, name: str, attributes: Sequence[Attribute]):
        if not name:
            raise CatalogError("relation name must be non-empty")
        seen = set()
        for attribute in attributes:
            if attribute.name in seen:
                raise CatalogError(
                    f"duplicate attribute {attribute.name!r} in relation {name!r}"
                )
            seen.add(attribute.name)
        self._name = name
        self._attributes: Tuple[Attribute, ...] = tuple(attributes)
        self._by_name: Dict[str, Attribute] = {a.name: a for a in self._attributes}
        # Unqualified lookup index: short name -> attributes carrying it.
        self._by_short: Dict[str, List[Attribute]] = {}
        for attribute in self._attributes:
            self._by_short.setdefault(attribute.short_name, []).append(attribute)

    @property
    def name(self) -> str:
        return self._name

    @property
    def attributes(self) -> Tuple[Attribute, ...]:
        return self._attributes

    @property
    def attribute_names(self) -> Tuple[str, ...]:
        return tuple(a.name for a in self._attributes)

    @property
    def arity(self) -> int:
        return len(self._attributes)

    def __len__(self) -> int:
        return len(self._attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes)

    def __contains__(self, attribute_name: str) -> bool:
        return (
            attribute_name in self._by_name
            or attribute_name in self._by_short
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RelationSchema):
            return NotImplemented
        return self._name == other._name and self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash((self._name, self._attributes))

    def __repr__(self) -> str:
        cols = ", ".join(str(a) for a in self._attributes)
        return f"RelationSchema({self._name}: {cols})"

    def attribute(self, name: str) -> Attribute:
        """Resolve an attribute by exact or unqualified name.

        An unqualified name resolves only if it is unambiguous within this
        schema; ambiguity raises :class:`UnknownAttributeError` (callers
        must qualify).
        """
        if name in self._by_name:
            return self._by_name[name]
        candidates = self._by_short.get(name, [])
        if len(candidates) == 1:
            return candidates[0]
        raise UnknownAttributeError(name, self._name)

    def index_of(self, name: str) -> int:
        """Positional index of an attribute, resolving like :meth:`attribute`."""
        return self._attributes.index(self.attribute(name))

    def project(self, names: Sequence[str], relation_name: Optional[str] = None) -> "RelationSchema":
        """Schema of a projection onto ``names`` (order preserved)."""
        attributes = [self.attribute(n) for n in names]
        return RelationSchema(relation_name or self._name, attributes)

    def rename(self, new_name: str) -> "RelationSchema":
        return RelationSchema(new_name, self._attributes)

    def qualify(self) -> "RelationSchema":
        """A copy with every attribute qualified by this relation's name."""
        return RelationSchema(
            self._name, [a.qualified(self._name) for a in self._attributes]
        )

    def join(self, other: "RelationSchema", name: Optional[str] = None) -> "RelationSchema":
        """Schema of the (natural-free) join of two relations.

        Attributes keep their names unless the unqualified name appears in
        both inputs, in which case *both* copies are qualified with their
        source relation name, mirroring SQL's disambiguation rule.
        """
        left_shorts = {a.short_name for a in self._attributes}
        right_shorts = {a.short_name for a in other._attributes}
        clashes = left_shorts & right_shorts

        def resolve(attribute: Attribute, owner: str) -> Attribute:
            if attribute.short_name in clashes and "." not in attribute.name:
                return attribute.qualified(owner)
            return attribute

        combined = [resolve(a, self._name) for a in self._attributes]
        combined += [resolve(a, other._name) for a in other._attributes]
        return RelationSchema(name or f"{self._name}_{other._name}", combined)


class Catalog:
    """Registry of relation schemas.

    The catalog deliberately stores only *logical* metadata; physical
    statistics (cardinality, blocks, selectivities) live in
    :class:`repro.catalog.statistics.StatisticsCatalog` so the optimizer
    can be pointed at alternative statistics for what-if analysis.
    """

    def __init__(self, schemas: Iterable[RelationSchema] = ()):
        self._schemas: Dict[str, RelationSchema] = {}
        for schema in schemas:
            self.register(schema)

    def register(self, schema: RelationSchema) -> RelationSchema:
        """Register ``schema``; raises on duplicate names."""
        if schema.name in self._schemas:
            raise DuplicateRelationError(schema.name)
        self._schemas[schema.name] = schema
        return schema

    def register_relation(
        self, name: str, columns: Sequence[Tuple[str, DataType]]
    ) -> RelationSchema:
        """Convenience: build and register a schema from (name, type) pairs."""
        schema = RelationSchema(name, [Attribute(n, t) for n, t in columns])
        return self.register(schema)

    def unregister(self, name: str) -> None:
        if name not in self._schemas:
            raise UnknownRelationError(name)
        del self._schemas[name]

    def schema(self, name: str) -> RelationSchema:
        try:
            return self._schemas[name]
        except KeyError:
            raise UnknownRelationError(name) from None

    def __contains__(self, name: str) -> bool:
        return name in self._schemas

    def __iter__(self) -> Iterator[RelationSchema]:
        return iter(self._schemas.values())

    def __len__(self) -> int:
        return len(self._schemas)

    @property
    def relation_names(self) -> Tuple[str, ...]:
        return tuple(self._schemas)

    def resolve_attribute(self, name: str) -> Tuple[RelationSchema, Attribute]:
        """Find the unique relation owning attribute ``name``.

        Accepts qualified (``Rel.attr``) and unqualified names; an
        unqualified name owned by several relations raises
        :class:`UnknownAttributeError` — the caller must qualify.
        """
        if "." in name:
            relation_name, short = name.split(".", 1)
            schema = self.schema(relation_name)
            return schema, schema.attribute(short)
        owners = [s for s in self._schemas.values() if name in s]
        if len(owners) == 1:
            return owners[0], owners[0].attribute(name)
        raise UnknownAttributeError(name)
