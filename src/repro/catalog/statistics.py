"""Physical statistics used by the cost model.

The paper's cost framework (Section 4.1) needs, for every base relation:
its cardinality, its size in blocks, per-predicate *selection
selectivities* ``s`` and per-join-attribute *join selectivities* ``js``
(Table 1 of the paper).  This module stores those statistics and the
derivation rules for intermediate results.

Statistics are kept separate from the logical :class:`~repro.catalog.schema.Catalog`
so the same schema can be costed under several statistical assumptions
(what-if analysis, the paper's Table 1 versus measured data).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.errors import CatalogError, UnknownRelationError

#: Selectivity assumed for a selection predicate with no registered or
#: derivable statistics.  1/10 is the classic System-R default.
DEFAULT_SELECTION_SELECTIVITY = 0.1

#: Fraction of tuples assumed to satisfy a range predicate (<, <=, >, >=)
#: when min/max column statistics are unavailable.  System-R used 1/3.
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0


@dataclass(frozen=True)
class RelationStatistics:
    """Cardinality and physical size of one (base or derived) relation."""

    cardinality: int
    blocks: int

    def __post_init__(self) -> None:
        if self.cardinality < 0:
            raise CatalogError(f"negative cardinality: {self.cardinality}")
        if self.blocks < 0:
            raise CatalogError(f"negative block count: {self.blocks}")
        if self.cardinality > 0 and self.blocks == 0:
            raise CatalogError("non-empty relation cannot occupy zero blocks")

    @property
    def blocking_factor(self) -> float:
        """Average records per block; 1.0 for an empty relation."""
        if self.blocks == 0:
            return 1.0
        return self.cardinality / self.blocks

    def scaled(self, selectivity: float) -> "RelationStatistics":
        """Statistics of a selection keeping ``selectivity`` of the tuples.

        Block count shrinks proportionally (records per block unchanged),
        never below one block for a non-empty result.
        """
        if not 0.0 <= selectivity <= 1.0:
            raise CatalogError(f"selectivity out of range: {selectivity}")
        cardinality = int(math.ceil(self.cardinality * selectivity))
        blocks = blocks_for(cardinality, self.blocking_factor)
        return RelationStatistics(cardinality, blocks)


def blocks_for(cardinality: int, blocking_factor: float) -> int:
    """Blocks needed to hold ``cardinality`` records at ``blocking_factor``."""
    if cardinality <= 0:
        return 0
    return max(1, int(math.ceil(cardinality / max(blocking_factor, 1e-9))))


@dataclass(frozen=True)
class ColumnStatistics:
    """Per-column statistics used to derive selectivities.

    ``distinct_values`` drives equality selectivity (``1/V``) and the
    default join selectivity (``1/max(V_left, V_right)``); ``minimum`` and
    ``maximum`` drive range selectivities for numeric/date columns.
    """

    distinct_values: int
    minimum: Optional[Any] = None
    maximum: Optional[Any] = None

    def __post_init__(self) -> None:
        if self.distinct_values <= 0:
            raise CatalogError(
                f"distinct_values must be positive, got {self.distinct_values}"
            )

    def equality_selectivity(self) -> float:
        return 1.0 / self.distinct_values

    def range_selectivity(self, op: str, value: Any) -> float:
        """Fraction of tuples with ``column <op> value``.

        Uses linear interpolation between min and max when both are known
        and numeric/date-like; otherwise falls back to the System-R default.
        """
        lo, hi = self.minimum, self.maximum
        if lo is None or hi is None:
            return DEFAULT_RANGE_SELECTIVITY
        try:
            span = _as_number(hi) - _as_number(lo)
            point = _as_number(value)
        except (TypeError, ValueError, AttributeError):
            return DEFAULT_RANGE_SELECTIVITY
        if span <= 0:
            return DEFAULT_RANGE_SELECTIVITY
        fraction_below = (point - _as_number(lo)) / span
        fraction_below = min(1.0, max(0.0, fraction_below))
        if op in ("<", "<="):
            return fraction_below
        if op in (">", ">="):
            return 1.0 - fraction_below
        return DEFAULT_RANGE_SELECTIVITY


def _as_number(value: Any) -> float:
    """Map a comparable value (number or date) onto the real line."""
    if isinstance(value, (int, float)):
        return float(value)
    # datetime.date supports toordinal(); anything else raises TypeError.
    return float(value.toordinal())


class StatisticsCatalog:
    """Registry of relation, column, and selectivity statistics.

    Explicit registrations (the paper's Table 1 route) always win over the
    derivation heuristics, which serve synthetic workloads where writing
    every selectivity by hand would be impractical.
    """

    def __init__(self, default_blocking_factor: float = 10.0):
        if default_blocking_factor <= 0:
            raise CatalogError("default blocking factor must be positive")
        self.default_blocking_factor = default_blocking_factor
        self._relations: Dict[str, RelationStatistics] = {}
        self._columns: Dict[str, ColumnStatistics] = {}
        # predicate signature -> selectivity (explicit, highest priority)
        self._predicate_selectivities: Dict[str, float] = {}
        # unordered qualified-attribute pair -> join selectivity
        self._join_selectivities: Dict[frozenset, float] = {}
        # qualified attribute -> histogram (numeric/date columns)
        self._histograms: Dict[str, "EquiWidthHistogram"] = {}
        # relation -> PartitionScheme (horizontal sharding; see
        # repro.distributed.partition)
        self._partitions: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def set_relation(
        self, name: str, cardinality: int, blocks: Optional[int] = None
    ) -> RelationStatistics:
        """Register cardinality/blocks for a base relation.

        When ``blocks`` is omitted it is derived from the catalog's default
        blocking factor.
        """
        if blocks is None:
            blocks = blocks_for(cardinality, self.default_blocking_factor)
        stats = RelationStatistics(cardinality, blocks)
        self._relations[name] = stats
        return stats

    def set_column(
        self,
        attribute: str,
        distinct_values: int,
        minimum: Optional[Any] = None,
        maximum: Optional[Any] = None,
    ) -> ColumnStatistics:
        """Register column statistics under a *qualified* attribute name."""
        stats = ColumnStatistics(distinct_values, minimum, maximum)
        self._columns[attribute] = stats
        return stats

    def set_predicate_selectivity(self, signature: str, selectivity: float) -> None:
        """Pin the selectivity of a predicate by its canonical signature.

        Signatures come from
        :func:`repro.algebra.signatures.expression_signature`; the paper
        example pins e.g. ``s(Division.city = 'LA') = 0.02`` this way.
        """
        if not 0.0 <= selectivity <= 1.0:
            raise CatalogError(f"selectivity out of range: {selectivity}")
        self._predicate_selectivities[signature] = selectivity

    def set_join_selectivity(
        self, attribute_a: str, attribute_b: str, selectivity: float
    ) -> None:
        """Pin the join selectivity of an equi-join attribute pair.

        ``|R join S| = js * |R| * |S|`` — the paper's ``js`` column of
        Table 1.  The pair is unordered.
        """
        if selectivity < 0.0 or selectivity > 1.0:
            raise CatalogError(f"join selectivity out of range: {selectivity}")
        self._join_selectivities[frozenset((attribute_a, attribute_b))] = selectivity

    def set_histogram(self, attribute: str, histogram: "EquiWidthHistogram") -> None:
        """Attach a histogram (qualified attribute name)."""
        self._histograms[attribute] = histogram

    def set_partition_scheme(self, scheme: "PartitionScheme") -> None:
        """Record a relation's horizontal partition scheme.

        The scheme rides with the statistics (the paper's Table-1 route)
        so cost calculators and what-if analyses see the same shard map
        the storage layer routes by.
        """
        self._partitions[scheme.relation] = scheme

    def partition_scheme(self, relation: str) -> Optional["PartitionScheme"]:
        return self._partitions.get(relation)

    def shard_statistics(
        self, relation: str, shard: int, fraction: Optional[float] = None
    ) -> RelationStatistics:
        """Statistics of one shard of a partitioned relation.

        Defaults to a uniform split of the relation's registered
        statistics across its scheme's shards; pass ``fraction`` to
        model skew.  Blocks shrink proportionally, never below one
        block for a non-empty shard (same rule as :meth:`RelationStatistics.scaled`).
        """
        scheme = self._partitions.get(relation)
        if scheme is None:
            raise CatalogError(f"relation {relation!r} is not partitioned")
        if not 0 <= shard < scheme.shards:
            raise CatalogError(
                f"shard {shard} out of range for {relation!r}"
            )
        if fraction is None:
            fraction = 1.0 / scheme.shards
        return self.relation(relation).scaled(fraction)

    def histogram(self, attribute: str) -> Optional["EquiWidthHistogram"]:
        return self._histograms.get(attribute)

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    @property
    def relation_names(self) -> Tuple[str, ...]:
        """Names of every relation with registered statistics."""
        return tuple(self._relations)

    def relation(self, name: str) -> RelationStatistics:
        try:
            return self._relations[name]
        except KeyError:
            raise UnknownRelationError(name) from None

    def has_relation(self, name: str) -> bool:
        return name in self._relations

    def column(self, attribute: str) -> Optional[ColumnStatistics]:
        return self._columns.get(attribute)

    def predicate_selectivity(self, signature: str) -> Optional[float]:
        return self._predicate_selectivities.get(signature)

    def join_selectivity(
        self, attribute_a: str, attribute_b: str
    ) -> Optional[float]:
        return self._join_selectivities.get(frozenset((attribute_a, attribute_b)))

    def default_join_selectivity(
        self, attribute_a: str, attribute_b: str
    ) -> Optional[float]:
        """``1 / max(V(a), V(b))`` when both column statistics are known."""
        stats_a = self.column(attribute_a)
        stats_b = self.column(attribute_b)
        if stats_a is None or stats_b is None:
            return None
        return 1.0 / max(stats_a.distinct_values, stats_b.distinct_values)
