"""CDC-driven streaming incremental view maintenance.

The subsystem has four layers (see ``docs/streaming.md``):

* :mod:`repro.cdc.changelog` — per-relation write-ahead change logs
  (transactional-outbox capture via the storage write hook);
* :mod:`repro.cdc.policy` — the :class:`StreamingPolicy` bounded-
  staleness / load-leveling knobs carried on ``DesignConfig.streaming``;
* :mod:`repro.cdc.propagation` — the delta propagation graph compiled
  from the installed design, generalizing the single-view delta rules
  into per-edge operators with shared-subplan deltas;
* :mod:`repro.cdc.streaming` — the :class:`StreamingMaintainer` that
  drains logs with coalescing, backpressure and circuit-breaker
  degradation to batch refresh.

Entry point: :meth:`repro.warehouse.warehouse.DataWarehouse.
enable_streaming`.
"""

from repro.cdc.changelog import (
    CHANGE_OPS,
    ChangeLog,
    ChangeLogSet,
    ChangeRecord,
    DEFAULT_RETENTION,
    DELETE,
    INSERT,
    UPDATE,
)
from repro.cdc.policy import DEFAULT_STREAMING_POLICY, StreamingPolicy
from repro.cdc.propagation import (
    DeltaPropagator,
    EdgeRule,
    MODE_DELTA,
    MODE_RECOMPUTE,
    PropagationGraph,
    SharedDelta,
    ViewDelta,
)
from repro.cdc.simulate import StreamingSimulationResult, simulate_streaming
from repro.cdc.streaming import DrainReport, StreamingMaintainer

__all__ = [
    "CHANGE_OPS",
    "ChangeLog",
    "ChangeLogSet",
    "ChangeRecord",
    "DEFAULT_RETENTION",
    "DEFAULT_STREAMING_POLICY",
    "DELETE",
    "INSERT",
    "UPDATE",
    "DeltaPropagator",
    "DrainReport",
    "EdgeRule",
    "MODE_DELTA",
    "MODE_RECOMPUTE",
    "PropagationGraph",
    "SharedDelta",
    "StreamingMaintainer",
    "StreamingPolicy",
    "StreamingSimulationResult",
    "ViewDelta",
    "simulate_streaming",
]
