"""Per-relation write-ahead change logs (transactional-outbox style).

Every captured base relation gets a :class:`ChangeLog`: an append-only,
durable-in-memory ring of :class:`ChangeRecord` entries with a monotonic
per-relation LSN.  Records are emitted by the storage layer's write hook
(:attr:`repro.storage.table.Table.write_hook`), so a
``DataWarehouse.apply_update`` and a direct ``table.insert_many`` both
land in the log — exactly like a transactional outbox written in the
same transaction as the base write (the hook fires only after the
mutation succeeded; a fault-aborted write emits nothing).

Retention is bounded: a full ring evicts its oldest record, increments
the ``dropped`` counter, warns once per pressure episode with a
:class:`~repro.errors.WorkloadWarning` (a dropped record means some view
can no longer be maintained incrementally and must fall back to a batch
recompute), and journals a ``cdc.dropped`` event.

The global ``seq`` stamped on every record across all logs is the
serialization order the :class:`~repro.cdc.streaming.StreamingMaintainer`
replays deltas in; per-relation LSNs answer "how far behind is this
view?" in the bounded-staleness contract.
"""

from __future__ import annotations

import warnings
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Mapping, Optional, Tuple

from repro import obs
from repro.errors import StreamingError, WorkloadWarning

__all__ = [
    "INSERT",
    "DELETE",
    "UPDATE",
    "CHANGE_OPS",
    "ChangeRecord",
    "ChangeLog",
    "ChangeLogSet",
    "DEFAULT_RETENTION",
]

INSERT = "insert"
DELETE = "delete"
UPDATE = "update"
CHANGE_OPS = (INSERT, DELETE, UPDATE)

#: Ring capacity per relation when the policy does not say otherwise.
DEFAULT_RETENTION = 4096


@dataclass(frozen=True)
class ChangeRecord:
    """One captured base-relation change.

    ``lsn`` is monotonic per relation (1-based); ``seq`` is the global
    append order across every log in the owning :class:`ChangeLogSet` —
    the order delta propagation replays batches in.  ``row`` carries the
    inserted row (insert / update-new); ``old_row`` the removed row
    (delete / update-old).  ``tick`` stamps the logical clock at append
    time, so lag is answerable in ticks as well as records.
    """

    relation: str
    lsn: int
    seq: int
    op: str
    row: Optional[Mapping[str, Any]] = None
    old_row: Optional[Mapping[str, Any]] = None
    tick: float = 0.0

    def __post_init__(self) -> None:
        if self.op not in CHANGE_OPS:
            raise StreamingError(
                f"unknown change op {self.op!r}; expected one of {CHANGE_OPS}"
            )
        if self.op in (INSERT, UPDATE) and self.row is None:
            raise StreamingError(f"{self.op} record needs a row")
        if self.op in (DELETE, UPDATE) and self.old_row is None:
            raise StreamingError(f"{self.op} record needs an old_row")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "relation": self.relation,
            "lsn": self.lsn,
            "seq": self.seq,
            "op": self.op,
            "row": dict(self.row) if self.row is not None else None,
            "old_row": dict(self.old_row) if self.old_row is not None else None,
            "tick": self.tick,
        }


class ChangeLog:
    """A bounded ring of change records for one base relation."""

    def __init__(self, relation: str, capacity: int = DEFAULT_RETENTION):
        if capacity < 1:
            raise StreamingError(f"retention must be >= 1: {capacity}")
        self.relation = relation
        self.capacity = capacity
        self._records: Deque[ChangeRecord] = deque()
        #: Highest LSN ever assigned (monotonic across snapshots/evictions).
        self.last_lsn = 0
        #: Records evicted under retention pressure (never reset).
        self.dropped = 0
        #: Global seq of the latest snapshot barrier: a full (re)load of
        #: the relation.  A view that has not absorbed past the barrier
        #: cannot be maintained from the log — it must recompute.
        self.barrier_seq = 0
        self._warned = False

    def __len__(self) -> int:
        return len(self._records)

    @property
    def min_retained_seq(self) -> int:
        """Global seq of the oldest retained record (0 when empty)."""
        return self._records[0].seq if self._records else 0

    @property
    def max_seq(self) -> int:
        return self._records[-1].seq if self._records else 0

    def append(self, record: ChangeRecord) -> ChangeRecord:
        if record.relation != self.relation:
            raise StreamingError(
                f"record for {record.relation!r} appended to the "
                f"{self.relation!r} log"
            )
        self.last_lsn = record.lsn
        if len(self._records) >= self.capacity:
            evicted = self._records.popleft()
            self.dropped += 1
            if not self._warned:
                self._warned = True
                warnings.warn(
                    WorkloadWarning(
                        f"change log for {self.relation!r} dropped a record "
                        f"under retention pressure (capacity {self.capacity}); "
                        f"views behind LSN {evicted.lsn} fall back to batch "
                        f"recompute — raise StreamingPolicy.retention or "
                        f"drain more often"
                    ),
                    stacklevel=2,
                )
            if obs.enabled():
                obs.metrics().counter(
                    "cdc.records_dropped", relation=self.relation
                ).inc()
                obs.journal_event(
                    "cdc.dropped",
                    relation=self.relation,
                    lsn=evicted.lsn,
                    dropped_total=self.dropped,
                )
        self._records.append(record)
        return record

    def snapshot_barrier(self, seq: int) -> None:
        """A full (re)load superseded the log's history.

        Retained records predate the new contents, so they are cleared;
        LSNs keep counting monotonically.  Consumers behind ``seq`` must
        recompute from the fresh base table.
        """
        self._records.clear()
        self.barrier_seq = seq
        self._warned = False

    def records_after(self, seq: int) -> List[ChangeRecord]:
        """Retained records with a global seq greater than ``seq``."""
        return [r for r in self._records if r.seq > seq]

    def has_gap(self, seq: int) -> bool:
        """Whether a consumer at watermark ``seq`` lost history.

        True when a snapshot barrier or retention eviction removed
        records the consumer has not absorbed yet.
        """
        if self.barrier_seq > seq:
            return True
        if not self._records:
            return False
        oldest = self._records[0]
        # Everything before the oldest retained record is gone; a
        # consumer strictly behind it may have missed evicted records.
        return self.dropped > 0 and seq < oldest.seq - 1

    def to_dict(self) -> Dict[str, Any]:
        return {
            "relation": self.relation,
            "capacity": self.capacity,
            "records": len(self._records),
            "last_lsn": self.last_lsn,
            "dropped": self.dropped,
            "barrier_seq": self.barrier_seq,
        }


@dataclass
class _CaptureState:
    """Bookkeeping for one captured relation."""

    log: ChangeLog
    attached: bool = False
    suspended: int = 0  # re-entrancy guard depth


class ChangeLogSet:
    """All change logs of one warehouse plus the write-hook plumbing.

    ``capture(relation)`` creates the relation's log and (when the
    relation is already registered) installs the write hook; the set
    also registers itself as ``database.change_capture`` so a re-load —
    which replaces the Table object — re-attaches the hook and records a
    snapshot barrier.
    """

    def __init__(self, retention: int = DEFAULT_RETENTION, clock: Any = None):
        if retention < 1:
            raise StreamingError(f"retention must be >= 1: {retention}")
        self.retention = retention
        self.clock = clock  # LogicalClock or None (tick = 0.0)
        self._states: Dict[str, _CaptureState] = {}
        self._seq = 0
        self._database = None

    # ---------------------------------------------------------------- lookup
    @property
    def relations(self) -> Tuple[str, ...]:
        return tuple(sorted(self._states))

    def captures(self, relation: str) -> bool:
        return relation in self._states

    def log(self, relation: str) -> ChangeLog:
        try:
            return self._states[relation].log
        except KeyError:
            raise StreamingError(
                f"relation {relation!r} is not captured; call capture() first"
            ) from None

    @property
    def head_seq(self) -> int:
        """The global seq of the latest append (0 = nothing captured yet)."""
        return self._seq

    def dropped_total(self) -> int:
        return sum(s.log.dropped for s in self._states.values())

    # ------------------------------------------------------------ attachment
    def attach(self, database: Any) -> None:
        """Capture writes on ``database`` (hooks + re-register barrier)."""
        self._database = database
        database.change_capture = self
        for relation in self.relations:
            if relation in database:
                self._attach_hook(relation, database._tables[relation])

    def detach(self) -> None:
        if self._database is None:
            return
        for relation, state in self._states.items():
            if relation in self._database:
                self._database._tables[relation].write_hook = None
            state.attached = False
        if getattr(self._database, "change_capture", None) is self:
            self._database.change_capture = None
        self._database = None

    def capture(self, relation: str) -> ChangeLog:
        """Create (or return) the relation's change log and hook it up."""
        state = self._states.get(relation)
        if state is None:
            state = _CaptureState(ChangeLog(relation, self.retention))
            self._states[relation] = state
        if self._database is not None and relation in self._database:
            self._attach_hook(relation, self._database._tables[relation])
        return state.log

    def on_register(self, name: str, table: Any) -> None:
        """Database hook: a captured relation got a fresh Table object.

        A registration is a snapshot (full load / reload): the log's
        retained history no longer describes the stored contents, so a
        barrier is recorded and the hook is re-attached to the new table.
        """
        state = self._states.get(name)
        if state is None:
            return
        self._seq += 1
        state.log.snapshot_barrier(self._seq)
        self._attach_hook(name, table)
        if obs.enabled():
            obs.journal_event(
                "cdc.snapshot", relation=name, seq=self._seq,
                tick=self._tick(),
            )

    def _attach_hook(self, relation: str, table: Any) -> None:
        state = self._states[relation]

        def hook(op: str, rows: List[Mapping[str, Any]]) -> None:
            self._on_write(relation, op, rows)

        table.write_hook = hook
        state.attached = True

    # -------------------------------------------------------------- emission
    def _tick(self) -> float:
        if self.clock is None:
            return 0.0
        if callable(self.clock):
            return float(self.clock())
        return float(self.clock.now)

    def _on_write(
        self, relation: str, op: str, rows: List[Mapping[str, Any]]
    ) -> None:
        state = self._states[relation]
        if state.suspended:
            return  # internal write (e.g. building a rewound overlay)
        for row in rows:
            if op == INSERT:
                self.record(relation, INSERT, row=row)
            else:
                self.record(relation, DELETE, old_row=row)

    def record(
        self,
        relation: str,
        op: str,
        row: Optional[Mapping[str, Any]] = None,
        old_row: Optional[Mapping[str, Any]] = None,
    ) -> ChangeRecord:
        """Append one change record (assigning its LSN and global seq)."""
        log = self.log(relation)
        self._seq += 1
        record = ChangeRecord(
            relation=relation,
            lsn=log.last_lsn + 1,
            seq=self._seq,
            op=op,
            row=dict(row) if row is not None else None,
            old_row=dict(old_row) if old_row is not None else None,
            tick=self._tick(),
        )
        log.append(record)
        if obs.enabled():
            obs.metrics().counter(
                "cdc.records_appended", relation=relation, op=op
            ).inc()
        return record

    def suspend(self, relation: str) -> "_SuspendScope":
        """Context manager silencing capture for internal writes."""
        return _SuspendScope(self._states[relation])

    # ---------------------------------------------------------------- status
    def pending_after(self, watermark: int, relations: Any = None) -> int:
        """Retained records past ``watermark`` over the given relations."""
        names = self.relations if relations is None else relations
        return sum(
            len(self._states[name].log.records_after(watermark))
            for name in names
            if name in self._states
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "retention": self.retention,
            "head_seq": self._seq,
            "dropped_total": self.dropped_total(),
            "logs": {name: self.log(name).to_dict() for name in self.relations},
        }


class _SuspendScope:
    def __init__(self, state: _CaptureState):
        self._state = state

    def __enter__(self) -> None:
        self._state.suspended += 1

    def __exit__(self, *exc_info: Any) -> None:
        self._state.suspended -= 1
