"""Streaming-maintenance policy knobs.

A :class:`StreamingPolicy` travels on
:attr:`repro.mvpp.config.DesignConfig.streaming` and controls the
:class:`~repro.cdc.streaming.StreamingMaintainer`'s queue-based load
leveling: how many pending change records a view may lag behind
(``max_lag_records``), how stale in logical ticks it may get
(``max_lag_ticks``), how many log records one delta evaluation coalesces
(``coalesce_records``), and how much history each relation's change-log
ring retains (``retention``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Any, Dict

from repro.errors import StreamingError

__all__ = ["StreamingPolicy", "DEFAULT_STREAMING_POLICY"]


@dataclass(frozen=True)
class StreamingPolicy:
    """Bounded-staleness and load-leveling knobs for CDC maintenance.

    ``max_lag_records``
        Backpressure bound: when any maintained view's LSN lag exceeds
        this many pending records, ingest triggers a drain before
        returning (queue-based load leveling).
    ``max_lag_ticks``
        The same bound in logical-clock ticks: a view whose oldest
        unabsorbed record is older than this forces a drain.  ``inf``
        disables the tick bound.
    ``coalesce_records``
        Batch coalescing: up to this many consecutive same-relation log
        records merge into one delta evaluation (insert/delete pairs for
        identical rows cancel exactly).
    ``retention``
        Ring capacity per relation's change log.  A retention smaller
        than ``max_lag_records`` cannot honour the lag bound — records a
        lagging view still needs may be evicted first (lint rule S001).
    """

    max_lag_records: int = 256
    max_lag_ticks: float = 512.0
    coalesce_records: int = 64
    retention: int = 4096

    def __post_init__(self) -> None:
        if self.max_lag_records < 0:
            raise StreamingError(
                f"max_lag_records must be >= 0: {self.max_lag_records}"
            )
        if not (self.max_lag_ticks > 0):  # rejects NaN too
            raise StreamingError(
                f"max_lag_ticks must be > 0: {self.max_lag_ticks}"
            )
        if self.coalesce_records < 1:
            raise StreamingError(
                f"coalesce_records must be >= 1: {self.coalesce_records}"
            )
        if self.retention < 1:
            raise StreamingError(f"retention must be >= 1: {self.retention}")

    @property
    def covers_lag_bound(self) -> bool:
        """Whether the ring can retain a full lag window (S001 check)."""
        return self.retention >= self.max_lag_records

    def replace(self, **changes: Any) -> "StreamingPolicy":
        return replace(self, **changes)

    def to_dict(self) -> Dict[str, Any]:
        ticks = self.max_lag_ticks
        return {
            "max_lag_records": self.max_lag_records,
            "max_lag_ticks": None if math.isinf(ticks) else ticks,
            "coalesce_records": self.coalesce_records,
            "retention": self.retention,
        }


DEFAULT_STREAMING_POLICY = StreamingPolicy()
