"""The delta propagation graph: base-relation changes → view deltas.

Compiled once per installed design from the view plans (the MVPP's
materialized vertices), this module generalizes the single-view delta
rules of :class:`repro.warehouse.maintenance.ViewMaintainer` into a
graph of per-edge propagation operators: one base-relation delta fans
out to every affected view in one pass, and subplans shared by several
views evaluate their delta **once** (materialized to a transient
``__cdc_shared_*`` table and substituted into each consumer).

Per-edge classification mirrors the maintainer's fallbacks exactly:

========================  =======================================
plan shape                rule
========================  =======================================
SPJ, relation once        linear delta: δV = plan[R := δR]
Aggregate anywhere        recompute (no counting state is kept)
relation referenced > 1   recompute (δR ⋈ δR would drop rows)
DISTINCT projection       insert deltas dedup against the store;
                          delete deltas force a recompute
========================  =======================================

Linearity is what makes sharing sound: for a subtree ``T`` whose path
from the changed relation ``R`` up to ``T``'s root consists only of
Select / non-distinct Project / Join nodes, ``δT = T[R := δR]`` in bag
semantics — side branches of those joins never contain ``R`` (single
occurrence) and are evaluated on fixed base state, so the same δT feeds
every view that contains ``T``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.algebra.operators import (
    Aggregate,
    Join,
    Operator,
    Project,
    Relation,
    Select,
)
from repro.errors import StreamingError
from repro.executor.engine import Database, ExecutionEngine
from repro.executor.physical import charge_materialize
from repro.storage.table import Table
from repro.warehouse.maintenance import OverlayDatabase
from repro.warehouse.view import MaterializedView

__all__ = [
    "MODE_DELTA",
    "MODE_RECOMPUTE",
    "EdgeRule",
    "SharedDelta",
    "PropagationGraph",
    "ViewDelta",
    "DeltaPropagator",
    "substitute_subtree",
]

MODE_DELTA = "delta"
MODE_RECOMPUTE = "recompute"

#: Name prefix for transient shared-delta tables (never registered in
#: the warehouse catalog; they live only inside one overlay).
SHARED_PREFIX = "__cdc_shared"


@dataclass(frozen=True)
class EdgeRule:
    """How a delta of ``relation`` reaches ``view``."""

    view: str
    relation: str
    mode: str  # MODE_DELTA or MODE_RECOMPUTE
    reason: str = ""  # "aggregate" | "self-join" when recompute
    distinct: bool = False  # DISTINCT view: dedup inserts, recompute deletes

    def to_dict(self) -> Dict[str, Any]:
        return {
            "view": self.view,
            "relation": self.relation,
            "mode": self.mode,
            "reason": self.reason,
            "distinct": self.distinct,
        }


@dataclass(frozen=True)
class SharedDelta:
    """A subplan whose delta is computed once and fed to several views."""

    name: str
    relation: str
    signature: str
    views: Tuple[str, ...]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "relation": self.relation,
            "signature": self.signature,
            "views": list(self.views),
        }


def _linear_chain(plan: Operator, relation: str) -> List[Operator]:
    """Ancestors of the single ``relation`` leaf that are linear in it.

    Returns the chain bottom-up (closest ancestor first), stopping at
    the first node that is not Select / Join / non-distinct Project.
    The leaf itself is excluded — substituting a bare ``Relation`` node
    shares nothing.
    """
    path: List[Operator] = []

    def descend(node: Operator) -> bool:
        if isinstance(node, Relation):
            return node.name == relation
        for child in node.children:
            if descend(child):
                path.append(node)
                return True
        return False

    if not descend(plan):
        return []
    chain: List[Operator] = []
    for node in path:  # already bottom-up: appended on unwind
        if isinstance(node, (Select, Join)) or (
            isinstance(node, Project) and not node.distinct
        ):
            chain.append(node)
        else:
            break
    return chain


def substitute_subtree(
    plan: Operator, signature: str, replacement: Operator
) -> Operator:
    """Replace every subtree with ``signature`` by ``replacement``.

    Rebuilds only the spine above a substitution; untouched subtrees are
    returned by identity.
    """
    if plan.signature == signature:
        return replacement
    if plan.is_leaf:
        return plan
    children = tuple(
        substitute_subtree(child, signature, replacement)
        for child in plan.children
    )
    if all(new is old for new, old in zip(children, plan.children)):
        return plan
    return plan.with_children(children)


class PropagationGraph:
    """Edge rules + shared subplans, compiled once per installed design."""

    def __init__(self, views: Sequence[MaterializedView]):
        self.views: Dict[str, MaterializedView] = {
            view.name: view for view in sorted(views, key=lambda v: v.name)
        }
        self._edges: Dict[Tuple[str, str], EdgeRule] = {}
        self._affected: Dict[str, Tuple[str, ...]] = {}
        self._shared: Dict[str, Tuple[SharedDelta, ...]] = {}
        self._shared_node: Dict[Tuple[str, str], Operator] = {}
        self._cut: Dict[Tuple[str, str], str] = {}
        self._compile()

    # ---------------------------------------------------------------- compile
    def _compile(self) -> None:
        by_relation: Dict[str, List[str]] = {}
        for name, view in self.views.items():
            has_aggregate = any(
                isinstance(node, Aggregate) for node in view.plan.walk()
            )
            distinct = any(
                isinstance(node, Project) and node.distinct
                for node in view.plan.walk()
            )
            for relation in sorted(view.base_relations):
                by_relation.setdefault(relation, []).append(name)
                references = sum(
                    1
                    for node in view.plan.walk()
                    if isinstance(node, Relation) and node.name == relation
                )
                if has_aggregate:
                    rule = EdgeRule(name, relation, MODE_RECOMPUTE, "aggregate")
                elif references > 1:
                    rule = EdgeRule(name, relation, MODE_RECOMPUTE, "self-join")
                else:
                    rule = EdgeRule(
                        name, relation, MODE_DELTA, distinct=distinct
                    )
                self._edges[(name, relation)] = rule
        self._affected = {
            relation: tuple(sorted(names))
            for relation, names in by_relation.items()
        }
        counter = 0
        for relation in sorted(self._affected):
            shared, counter = self._compile_shared(relation, counter)
            self._shared[relation] = shared

    def _compile_shared(
        self, relation: str, counter: int
    ) -> Tuple[Tuple[SharedDelta, ...], int]:
        # Which linear-chain signatures occur in which delta-mode views.
        chains: Dict[str, List[Operator]] = {}
        occurrences: Dict[str, List[str]] = {}
        for name in self._affected[relation]:
            rule = self._edges[(name, relation)]
            if rule.mode != MODE_DELTA:
                continue
            chain = _linear_chain(self.views[name].plan, relation)
            chains[name] = chain
            for node in chain:
                views_of = occurrences.setdefault(node.signature, [])
                if name not in views_of:
                    views_of.append(name)
        shared_sigs = {
            sig for sig, names in occurrences.items() if len(names) >= 2
        }
        # Each view's cut point: the *highest* shared node on its chain,
        # so the largest common subplan is evaluated once.
        groups: Dict[str, List[str]] = {}
        rep_node: Dict[str, Operator] = {}
        for name, chain in chains.items():
            cut: Optional[Operator] = None
            for node in chain:  # bottom-up; keep the last shared one
                if node.signature in shared_sigs:
                    cut = node
            if cut is None:
                continue
            groups.setdefault(cut.signature, []).append(name)
            rep_node.setdefault(cut.signature, cut)
        out: List[SharedDelta] = []
        for sig in sorted(groups):
            names = sorted(groups[sig])
            if len(names) < 2:
                continue  # cut points diverged; nothing shared after all
            shared = SharedDelta(
                name=f"{SHARED_PREFIX}_{counter}",
                relation=relation,
                signature=sig,
                views=tuple(names),
            )
            counter += 1
            out.append(shared)
            self._shared_node[(relation, sig)] = rep_node[sig]
            for view_name in names:
                self._cut[(view_name, relation)] = sig
        return tuple(out), counter

    # ----------------------------------------------------------------- lookup
    def rule(self, view: str, relation: str) -> Optional[EdgeRule]:
        return self._edges.get((view, relation))

    def affected_views(self, relation: str) -> Tuple[str, ...]:
        """Views depending on ``relation``, in (topological) name order."""
        return self._affected.get(relation, ())

    def shared_for(self, relation: str) -> Tuple[SharedDelta, ...]:
        return self._shared.get(relation, ())

    def shared_subplan(self, relation: str, signature: str) -> Operator:
        return self._shared_node[(relation, signature)]

    def cut_signature(self, view: str, relation: str) -> Optional[str]:
        return self._cut.get((view, relation))

    @property
    def relations(self) -> Tuple[str, ...]:
        return tuple(sorted(self._affected))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "views": sorted(self.views),
            "edges": [
                self._edges[key].to_dict() for key in sorted(self._edges)
            ],
            "shared": [
                s.to_dict()
                for relation in sorted(self._shared)
                for s in self._shared[relation]
            ],
        }


@dataclass
class ViewDelta:
    """The net effect of one propagated batch on one view."""

    view: str
    insert_rows: List[Dict[str, Any]] = field(default_factory=list)
    delete_rows: List[Dict[str, Any]] = field(default_factory=list)
    shared_used: Tuple[str, ...] = ()

    @property
    def is_empty(self) -> bool:
        return not self.insert_rows and not self.delete_rows


class DeltaPropagator:
    """Evaluates one coalesced base-relation delta for a set of views.

    The caller supplies the *rewound* overlay tables for other relations
    (so the batch is evaluated against the base state at its position in
    the global change sequence — see
    :meth:`repro.cdc.streaming.StreamingMaintainer.drain`) and applies
    the returned :class:`ViewDelta` rows to the stored views itself.
    """

    def __init__(self, graph: PropagationGraph, database: Database,
                 engine: ExecutionEngine):
        self.graph = graph
        self.database = database
        self.engine = engine

    # ------------------------------------------------------------ evaluation
    def _delta_table(
        self, relation: str, rows: Sequence[Mapping[str, Any]]
    ) -> Table:
        base = self.database.table(relation)
        delta = Table(base.schema, base.blocking_factor, io=self.database.io)
        for row in rows:
            delta.insert(row)
        return delta

    def _evaluate(
        self, plan: Operator, overrides: Dict[str, Table]
    ) -> List[Dict[str, Any]]:
        overlay = OverlayDatabase(self.database, overrides)
        delta_engine = ExecutionEngine(
            overlay,
            self.engine.join_method,
            engine=self.engine.engine,
            batch_size=self.engine.batch_size,
        )
        return delta_engine.execute(plan).rows()

    def propagate(
        self,
        relation: str,
        inserts: Sequence[Mapping[str, Any]],
        deletes: Sequence[Mapping[str, Any]],
        view_names: Sequence[str],
        rewinds: Optional[Mapping[str, Table]] = None,
    ) -> Dict[str, ViewDelta]:
        """Compute per-view deltas for one batch of base changes.

        ``view_names`` must all have a :data:`MODE_DELTA` edge from
        ``relation``; recompute-mode views are the caller's business.
        Views named here share subplan deltas where the compiled graph
        found common linear subtrees.
        """
        rewinds = dict(rewinds or {})
        targets = [n for n in self.graph.affected_views(relation)
                   if n in set(view_names)]
        for name in targets:
            rule = self.graph.rule(name, relation)
            if rule is None or rule.mode != MODE_DELTA:
                raise StreamingError(
                    f"view {name!r} has no delta edge from {relation!r}"
                )
        deltas: Dict[str, ViewDelta] = {
            name: ViewDelta(name) for name in targets
        }
        if not targets or (not inserts and not deletes):
            return deltas

        delta_ins = self._delta_table(relation, inserts) if inserts else None
        delta_del = self._delta_table(relation, deletes) if deletes else None

        # Shared subplans active for this batch: groups with >= 2 of the
        # target views.  Their delta is evaluated once per direction and
        # materialized into a transient table the consumers scan.
        active: Dict[str, SharedDelta] = {}
        for shared in self.graph.shared_for(relation):
            group = [n for n in shared.views if n in deltas]
            if len(group) >= 2:
                active[shared.signature] = shared

        for direction, delta_table in (
            ("insert", delta_ins), ("delete", delta_del)
        ):
            if delta_table is None:
                continue
            base_overrides = dict(rewinds)
            base_overrides[relation] = delta_table
            shared_tables: Dict[str, Tuple[str, Table]] = {}
            for sig, shared in sorted(active.items()):
                subplan = self.graph.shared_subplan(relation, sig)
                rows = self._evaluate(subplan, base_overrides)
                table = Table(
                    subplan.schema,
                    self.database.table(relation).blocking_factor,
                    io=self.database.io,
                )
                table.insert_many(rows, count_io=False)
                charge_materialize(table)
                shared_tables[sig] = (shared.name, table)
            for name in targets:
                view = self.graph.views[name]
                rule = self.graph.rule(name, relation)
                if direction == "delete" and rule.distinct:
                    # DISTINCT deletes need counting state; the caller
                    # falls back to recompute (EdgeRule.distinct).
                    continue
                cut = self.graph.cut_signature(name, relation)
                if cut is not None and cut in shared_tables:
                    shared_name, table = shared_tables[cut]
                    node = self._find_node(view.plan, cut)
                    plan = substitute_subtree(
                        view.plan, cut, Relation(shared_name, node.schema)
                    )
                    overrides = dict(rewinds)
                    overrides[shared_name] = table
                    rows = self._evaluate(plan, overrides)
                    deltas[name].shared_used = tuple(
                        sorted(set(deltas[name].shared_used) | {shared_name})
                    )
                else:
                    rows = self._evaluate(view.plan, base_overrides)
                if direction == "insert":
                    deltas[name].insert_rows.extend(rows)
                else:
                    deltas[name].delete_rows.extend(rows)
        return deltas

    @staticmethod
    def _find_node(plan: Operator, signature: str) -> Operator:
        for node in plan.walk():
            if node.signature == signature:
                return node
        raise StreamingError(
            f"compiled shared subplan {signature!r} not found in plan"
        )
