"""End-to-end streaming-maintenance simulation: ingest, drain, verify.

:func:`simulate_streaming` drives a complete warehouse lifecycle with
CDC-driven streaming maintenance enabled: design the views, load the
paper-scale data, then run rounds of interleaved base-relation inserts
and deletes through the ``stream`` maintenance policy, draining under
the configured :class:`~repro.cdc.policy.StreamingPolicy` (optionally
under a seeded fault injector).  It returns a JSON-safe summary the
``repro stream`` CLI prints and the CDC test suite asserts on.

Two invariants are checked on every run:

* **consistency** — after the final drain (and, under faults, scheduler
  convergence) every materialized view's stored contents are compared
  row-for-row against a brute-force recomputation of its plan over the
  current base relations;
* **no partial writes** — every view's stored cardinality matches the
  cardinality recorded at its last committed swap (the maintainer only
  ever swaps complete shadow tables).

The summary carries a content ``digest`` over the final view contents
and drain counters; running the same seed twice must produce the same
digest (bit-identical reproducibility, pinned by ``tests/cdc``).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.cdc.policy import DEFAULT_STREAMING_POLICY, StreamingPolicy
from repro.errors import StreamingError

__all__ = ["StreamingSimulationResult", "simulate_streaming"]


@dataclass
class StreamingSimulationResult:
    """Summary of one seeded streaming-maintenance run."""

    workload: str
    seed: int
    rounds: int
    records_appended: int = 0
    records_dropped: int = 0
    inserts: int = 0
    deletes: int = 0
    drains: int = 0
    backpressure_drains: int = 0
    coalesced: int = 0
    views_updated: int = 0
    views_recomputed: int = 0
    views_failed: int = 0
    staleness_max: int = 0
    staleness_samples: List[int] = field(default_factory=list)
    queries_run: int = 0
    queries_fresh: int = 0
    consistency_violations: int = 0
    partial_writes: int = 0
    faults_injected: Dict[str, float] = field(default_factory=dict)
    converged: bool = False
    final_ticks: float = 0.0
    digest: str = ""

    @property
    def ok(self) -> bool:
        """Drains converged, views match recompute, no partial swap seen."""
        return (
            self.converged
            and self.consistency_violations == 0
            and self.partial_writes == 0
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "workload": self.workload,
            "seed": self.seed,
            "rounds": self.rounds,
            "changes": {
                "appended": self.records_appended,
                "dropped": self.records_dropped,
                "inserts": self.inserts,
                "deletes": self.deletes,
            },
            "drains": {
                "total": self.drains,
                "backpressure": self.backpressure_drains,
                "coalesced": self.coalesced,
                "views_updated": self.views_updated,
                "views_recomputed": self.views_recomputed,
                "views_failed": self.views_failed,
            },
            "staleness": {
                "max": self.staleness_max,
                "samples": list(self.staleness_samples),
            },
            "queries": {
                "run": self.queries_run,
                "fresh": self.queries_fresh,
            },
            "consistency_violations": self.consistency_violations,
            "partial_writes": self.partial_writes,
            "faults_injected": dict(self.faults_injected),
            "converged": self.converged,
            "final_ticks": self.final_ticks,
            "digest": self.digest,
            "ok": self.ok,
        }


def simulate_streaming(
    failure_rate: float = 0.0,
    seed: int = 0,
    rounds: int = 3,
    scale: float = 0.02,
    policy: Optional[StreamingPolicy] = None,
    workload=None,
    rows: Optional[Mapping[str, List[Mapping[str, object]]]] = None,
) -> StreamingSimulationResult:
    """Run the seeded streaming-maintenance lifecycle and summarize it.

    Each round streams a slice of inserts into the two most frequently
    updated relations and deletes a few previously loaded rows (plus one
    row inserted the same round, exercising coalescing cancellation),
    samples per-view staleness, serves every query under the policy's
    lag bound, and drains.  With ``failure_rate > 0`` a seeded
    :class:`~repro.resilience.faults.FaultPolicy` makes delta commits
    fail, exercising the degradation path to breaker-guarded batch
    refresh; the run then drives the scheduler to convergence.
    """
    from repro.mvpp.config import DesignConfig
    from repro.resilience.config import ResilienceConfig
    from repro.resilience.faults import FaultPolicy
    from repro.warehouse import DataWarehouse
    from repro.workload import paper_workload
    from repro.workload.datagen import paper_rows

    if not 0.0 <= failure_rate <= 1.0:
        raise StreamingError(
            f"failure_rate must be in [0, 1]: {failure_rate}"
        )
    if rounds < 1:
        raise StreamingError(f"rounds must be >= 1: {rounds}")
    if scale <= 0:
        raise StreamingError(f"scale must be > 0: {scale}")
    if workload is None:
        workload = paper_workload()
    if rows is None:
        rows = paper_rows(scale=scale, seed=seed)
    resolved = policy or DEFAULT_STREAMING_POLICY

    warehouse = DataWarehouse.from_workload(workload)
    warehouse.design(DesignConfig(seed=seed, streaming=resolved))
    for relation, relation_rows in rows.items():
        warehouse.load(relation, relation_rows)
    warehouse.materialize()

    injector = None
    scheduler = warehouse.scheduler(ResilienceConfig(seed=seed))
    if failure_rate > 0:
        fault_policy = FaultPolicy(storage_failure_rate=failure_rate, seed=seed)
        injector = warehouse.attach_faults(fault_policy)
        scheduler = warehouse.scheduler(
            ResilienceConfig(seed=seed), injector=injector
        )
    streaming = warehouse.enable_streaming(resolved)

    result = StreamingSimulationResult(
        workload=workload.name, seed=seed, rounds=rounds
    )

    # The two hottest relations by update frequency carry the stream.
    hot = sorted(
        rows, key=lambda name: (-workload.update_frequency(name), name)
    )[:2]
    deletable: Dict[str, List[Mapping[str, object]]] = {
        name: list(rows[name]) for name in hot
    }
    reports = []

    for round_index in range(rounds):
        for relation in hot:
            pool = rows[relation]
            width = max(1, len(pool) // 50)
            start = (round_index * width) % len(pool)
            delta = [
                dict(pool[(start + k) % len(pool)]) for k in range(width)
            ]
            drains_before = streaming.drains
            warehouse.apply_update(relation, delta, policy="stream")
            result.inserts += len(delta)
            # Insert-then-delete of the same row within a round: the
            # coalescer must cancel the pair exactly.
            warehouse.apply_delete(relation, [delta[0]], policy="stream")
            result.deletes += 1
            if deletable[relation]:
                victim = deletable[relation].pop(0)
                warehouse.apply_delete(relation, [victim], policy="stream")
                result.deletes += 1
            result.backpressure_drains += streaming.drains - drains_before

        staleness = streaming.staleness()
        if staleness:
            sample = max(staleness.values())
            result.staleness_samples.append(sample)
            result.staleness_max = max(result.staleness_max, sample)

        for spec in workload.queries:
            served = warehouse.serve(
                spec.name, max_staleness=resolved.max_lag_records
            )
            result.queries_run += 1
            if served.max_staleness == 0:
                result.queries_fresh += 1

        reports.append(streaming.drain())
        if injector is not None:
            scheduler.refresh_until_converged()

    # Final catch-up so the consistency check compares head vs head.
    report = streaming.drain()
    reports.append(report)
    if injector is not None:
        scheduler.refresh_until_converged()

    result.drains = streaming.drains
    result.coalesced = streaming.coalesced_total
    result.records_appended = streaming.changes.head_seq
    result.records_dropped = streaming.changes.dropped_total()
    if injector is not None:
        result.faults_injected = injector.stats()
    result.final_ticks = scheduler.clock.now

    result.views_updated = len(
        {name for r in reports for name in r.views_updated}
    )
    result.views_recomputed = len(
        {name for r in reports for name in r.views_recomputed}
    )
    result.views_failed = len(report.views_failed)

    digest = hashlib.sha256()
    for view in warehouse.views:
        stored = warehouse.database.table(view.name)
        recomputed = warehouse.engine.execute(view.plan).rows()
        if _row_multiset(stored.rows()) != _row_multiset(recomputed):
            result.consistency_violations += 1
        committed = warehouse.committed_cardinality(view.name)
        if committed is not None and committed != stored.cardinality:
            result.partial_writes += 1
        digest.update(view.name.encode())
        digest.update(repr(_row_multiset(stored.rows())).encode())
    result.converged = (
        report.converged
        and not warehouse.stale_views()
        and streaming.max_lag() == 0
    )
    digest.update(
        repr(
            (
                result.records_appended,
                result.coalesced,
                result.drains,
                sorted(streaming.staleness().items()),
            )
        ).encode()
    )
    result.digest = digest.hexdigest()[:12]
    return result


def _row_multiset(rows):
    return sorted(
        tuple(sorted(row.items(), key=lambda kv: kv[0])) for row in rows
    )
