"""Queue-based streaming view maintenance over the change logs.

The :class:`StreamingMaintainer` drains per-relation change logs on the
scheduler's logical tick clock and propagates the resulting deltas to
every affected view through the compiled
:class:`~repro.cdc.propagation.PropagationGraph`:

* **load leveling** — ingest only appends to the change log (cheap);
  delta evaluation happens in :meth:`drain`, where up to
  ``StreamingPolicy.coalesce_records`` consecutive same-relation records
  merge into one evaluation (insert/delete pairs of identical rows
  cancel exactly);
* **backpressure** — :meth:`on_ingest` forces a drain as soon as any
  view's lag exceeds ``max_lag_records`` pending records or
  ``max_lag_ticks`` logical ticks, bounding both queue depth and
  staleness;
* **degradation** — a view whose delta cannot be evaluated (propagation
  fault, retention gap, recompute-only edge, DISTINCT delete) falls back
  to a batch refresh through
  :meth:`repro.resilience.scheduler.RefreshScheduler.degrade`, i.e. the
  normal retry/backoff/circuit-breaker machinery.

Correctness: records are replayed in global ``seq`` order.  Because the
base tables already hold the head state, a batch ``[a..b]`` on relation
``R`` evaluates against *rewound* overlays of every other relation with
pending records past ``b`` — head rows minus future inserts plus future
deletes — which makes the coalesced batch bit-identical to applying the
records one at a time, and therefore to a full recomputation (the
property ``tests/cdc`` pins with hypothesis, on both engines).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro import obs
from repro.cdc.changelog import (
    ChangeLogSet,
    ChangeRecord,
    DELETE,
    INSERT,
    UPDATE,
)
from repro.cdc.policy import StreamingPolicy
from repro.cdc.propagation import (
    DeltaPropagator,
    MODE_DELTA,
    PropagationGraph,
    ViewDelta,
)
from repro.errors import ReproError, StreamingError
from repro.storage.block import IOSnapshot
from repro.storage.table import Table

__all__ = ["StreamingMaintainer", "DrainReport"]


def _row_key(row: Mapping[str, Any]) -> Tuple[Tuple[str, Any], ...]:
    return tuple(sorted(row.items()))


def _coalesce(
    records: Sequence[ChangeRecord],
) -> Tuple[List[Dict[str, Any]], List[Dict[str, Any]], int]:
    """Net inserts/deletes of one same-relation run, with cancellation.

    Within a run the other relations are fixed, so an insert and a
    delete of the same row contribute identical derived rows — the pair
    cancels exactly (multiset semantics).  Returns ``(inserts, deletes,
    cancelled)`` where ``cancelled`` counts the records removed by
    coalescing.
    """
    counts: Dict[Tuple[Tuple[str, Any], ...], int] = {}
    sample: Dict[Tuple[Tuple[str, Any], ...], Dict[str, Any]] = {}

    def bump(row: Mapping[str, Any], delta: int) -> None:
        key = _row_key(row)
        counts[key] = counts.get(key, 0) + delta
        sample.setdefault(key, dict(row))

    total = 0
    for record in records:
        if record.op == INSERT:
            bump(record.row, +1)
            total += 1
        elif record.op == DELETE:
            bump(record.old_row, -1)
            total += 1
        else:  # UPDATE = delete(old) + insert(new)
            bump(record.old_row, -1)
            bump(record.row, +1)
            total += 2
    inserts: List[Dict[str, Any]] = []
    deletes: List[Dict[str, Any]] = []
    for key in sorted(counts):
        count = counts[key]
        row = sample[key]
        if count > 0:
            inserts.extend(dict(row) for _ in range(count))
        elif count < 0:
            deletes.extend(dict(row) for _ in range(-count))
    return inserts, deletes, total - len(inserts) - len(deletes)


@dataclass(frozen=True)
class DrainReport:
    """What one :meth:`StreamingMaintainer.drain` call did."""

    records: int
    runs: int
    coalesced: int
    views_updated: Tuple[str, ...]
    views_recomputed: Tuple[str, ...]
    views_failed: Tuple[str, ...]
    io: IOSnapshot
    head_seq: int

    @property
    def converged(self) -> bool:
        return not self.views_failed

    def to_dict(self) -> Dict[str, Any]:
        return {
            "records": self.records,
            "runs": self.runs,
            "coalesced": self.coalesced,
            "views_updated": list(self.views_updated),
            "views_recomputed": list(self.views_recomputed),
            "views_failed": list(self.views_failed),
            "io_blocks": self.io.total,
            "head_seq": self.head_seq,
        }


class StreamingMaintainer:
    """Drains change logs into materialized views (one per warehouse)."""

    def __init__(self, warehouse: Any, policy: StreamingPolicy):
        if not isinstance(policy, StreamingPolicy):
            raise StreamingError(f"not a StreamingPolicy: {policy!r}")
        self.warehouse = warehouse
        self.policy = policy
        self.changes = ChangeLogSet(
            retention=policy.retention,
            clock=lambda: self.scheduler.clock.now,
        )
        self.changes.attach(warehouse.database)
        self.graph = PropagationGraph([])
        #: Per-view watermark: the view reflects every change record with
        #: a global seq <= synced[view] (plus all data present at its
        #: last full recompute).
        self._synced: Dict[str, int] = {}
        self.coalesced_total = 0
        self.drains = 0
        self.recompile()

    # ------------------------------------------------------------- wiring
    @property
    def scheduler(self):
        """The warehouse's refresh scheduler (shared clock + breakers)."""
        return self.warehouse.scheduler()

    @property
    def propagator(self) -> DeltaPropagator:
        return DeltaPropagator(
            self.graph, self.warehouse.database, self.warehouse.engine
        )

    def recompile(self) -> PropagationGraph:
        """Rebuild the propagation graph for the installed design.

        Called by the warehouse whenever the view set changes
        (``design()`` / ``install_design()``).  New base dependencies
        get change logs; views already materialized *and fresh* start
        synced at the head (their contents reflect the current base
        state), anything else syncs on its first recompute.
        """
        views = list(self.warehouse.views)
        self.graph = PropagationGraph(views)
        for relation in self.graph.relations:
            self.changes.capture(relation)
        head = self.changes.head_seq
        installed = {view.name for view in views}
        for name in list(self._synced):
            if name not in installed:
                del self._synced[name]
        for view in views:
            if view.name in self._synced:
                continue
            if view.name in self.warehouse.database and (
                self.warehouse.is_fresh(view)
            ):
                self._synced[view.name] = head
        return self.graph

    def note_refresh(self, view_name: str) -> None:
        """A full recompute committed: the view reflects the head state."""
        self._synced[view_name] = self.changes.head_seq

    def watermark(self, view_name: str) -> Optional[int]:
        return self._synced.get(view_name)

    # ---------------------------------------------------------------- lag
    def _view(self, view_name: str):
        for view in self.warehouse.views:
            if view.name == view_name:
                return view
        raise StreamingError(f"unknown view {view_name!r}")

    def _pending(self, view) -> List[ChangeRecord]:
        watermark = self._synced.get(view.name, 0)
        records: List[ChangeRecord] = []
        for relation in sorted(view.base_relations):
            if self.changes.captures(relation):
                records.extend(
                    self.changes.log(relation).records_after(watermark)
                )
        records.sort(key=lambda r: r.seq)
        return records

    def lag_records(self, view_name: str) -> int:
        """LSN lag: pending change records the view has not absorbed."""
        return len(self._pending(self._view(view_name)))

    def lag_ticks(self, view_name: str) -> float:
        """Age (logical ticks) of the view's oldest unabsorbed record."""
        pending = self._pending(self._view(view_name))
        if not pending:
            return 0.0
        return max(0.0, self.scheduler.clock.now - pending[0].tick)

    def max_lag(self) -> int:
        """The worst record lag across materialized views."""
        lags = [
            self.lag_records(view.name)
            for view in self.warehouse.views
            if view.name in self.warehouse.database
        ]
        return max(lags, default=0)

    def staleness(self) -> Dict[str, int]:
        """Per-view LSN lag (the streaming bounded-staleness answer)."""
        return {
            view.name: self.lag_records(view.name)
            for view in self.warehouse.views
            if view.name in self.warehouse.database
        }

    # ------------------------------------------------------------- ingest
    def on_ingest(self) -> Optional[DrainReport]:
        """Backpressure check after appending change records.

        Drains immediately when any materialized view's lag exceeds the
        policy's record or tick bound; otherwise the records just queue
        (load leveling).
        """
        for view in self.warehouse.views:
            if view.name not in self.warehouse.database:
                continue
            if self.lag_records(view.name) > self.policy.max_lag_records:
                return self.drain()
            if self.lag_ticks(view.name) > self.policy.max_lag_ticks:
                return self.drain()
        return None

    # -------------------------------------------------------------- drain
    def drain(self) -> DrainReport:
        """Propagate every pending change record to every affected view.

        Processes maximal same-relation runs of the global change
        sequence (chunked at ``coalesce_records``); each run is
        coalesced, evaluated once against rewound overlays, and applied
        to its delta-eligible views atomically (shadow swap).  Views
        that cannot take the delta are recomputed through the
        scheduler's breaker-guarded batch path at the end.
        """
        warehouse = self.warehouse
        database = warehouse.database
        scheduler = self.scheduler
        self.drains += 1
        io_before = database.io.snapshot()
        head = self.changes.head_seq
        views = [
            view for view in warehouse.views if view.name in database
        ]
        by_name = {view.name: view for view in views}
        need_recompute: Dict[str, str] = {}
        updated: List[str] = []
        coalesced = 0

        min_watermark = min(
            (self._synced.get(view.name, 0) for view in views),
            default=head,
        )
        records: List[ChangeRecord] = []
        for relation in self.changes.relations:
            records.extend(
                self.changes.log(relation).records_after(min_watermark)
            )
        records.sort(key=lambda r: r.seq)

        runs: List[Tuple[str, List[ChangeRecord]]] = []
        for record in records:
            if (
                runs
                and runs[-1][0] == record.relation
                and len(runs[-1][1]) < self.policy.coalesce_records
            ):
                runs[-1][1].append(record)
            else:
                runs.append((record.relation, [record]))

        self._journal(
            "cdc.drain.begin", records=len(records), runs=len(runs),
            head_seq=head,
        )
        for relation, run in runs:
            first_seq, last_seq = run[0].seq, run[-1].seq
            targets = self._run_targets(
                views, relation, first_seq, last_seq, need_recompute
            )
            inserts, deletes, cancelled = _coalesce(run)
            coalesced += cancelled
            delta_targets = []
            for view in targets:
                rule = self.graph.rule(view.name, relation)
                if rule.distinct and deletes:
                    # DISTINCT deletes need per-row counting state the
                    # store does not keep — recompute instead.
                    need_recompute[view.name] = "distinct-delete"
                else:
                    delta_targets.append(view)
            if delta_targets and (inserts or deletes):
                rewinds = self._rewinds(relation, last_seq, delta_targets)
                applied = self._apply_run(
                    relation, inserts, deletes, delta_targets, rewinds,
                    need_recompute,
                )
                for view in applied:
                    self._synced[view.name] = last_seq
                    if view.name not in updated:
                        updated.append(view.name)
            else:
                for view in delta_targets:
                    self._synced[view.name] = last_seq

        # Views fully caught up reflect the current base contents: no
        # retained record past their watermark over any dependency (and
        # no gap hiding evicted ones), so the watermark can jump to head.
        for view in views:
            if view.name in need_recompute or view.name not in self._synced:
                continue
            watermark = self._synced[view.name]
            if any(
                self.changes.log(r).has_gap(watermark)
                for r in sorted(view.base_relations)
                if self.changes.captures(r)
            ):
                need_recompute[view.name] = "gap"
                continue
            if not self._pending(view):
                self._synced[view.name] = head
                warehouse._mark_fresh(view)
        delta_io = database.io.since(io_before)
        scheduler.note_io(float(delta_io.total))

        # Degradation: batch-refresh (retry/backoff/breaker) everything
        # that could not absorb its deltas.  refresh_view marks the view
        # fresh on success, which advances the watermark to head via
        # note_refresh().
        failed: List[str] = []
        for name in sorted(need_recompute):
            outcome = scheduler.degrade(by_name[name], need_recompute[name])
            if not outcome.ok:
                failed.append(name)

        self.coalesced_total += coalesced
        report = DrainReport(
            records=len(records),
            runs=len(runs),
            coalesced=coalesced,
            views_updated=tuple(sorted(updated)),
            views_recomputed=tuple(
                sorted(n for n in need_recompute if n not in failed)
            ),
            views_failed=tuple(sorted(failed)),
            io=database.io.since(io_before),
            head_seq=head,
        )
        if obs.enabled():
            registry = obs.metrics()
            if coalesced:
                registry.counter("cdc.coalesced").inc(coalesced)
            for view in views:
                registry.gauge("cdc.lag", view=view.name).set(
                    float(self.lag_records(view.name))
                )
        self._journal("cdc.drain.end", **report.to_dict())
        return report

    # ------------------------------------------------------------ internals
    def _run_targets(
        self,
        views: Sequence[Any],
        relation: str,
        first_seq: int,
        last_seq: int,
        need_recompute: Dict[str, str],
    ) -> List[Any]:
        """Views that must absorb the run ``[first_seq..last_seq]``.

        A view qualifies when its oldest unabsorbed record is exactly
        the start of this run; anything behind (missed history, log gap,
        never synced) degrades to recompute, anything ahead skips.
        """
        targets = []
        for view in views:
            name = view.name
            if name in need_recompute or not view.depends_on(relation):
                continue
            watermark = self._synced.get(name)
            if watermark is None:
                need_recompute[name] = "unsynced"
                continue
            if any(
                self.changes.log(r).has_gap(watermark)
                for r in sorted(view.base_relations)
                if self.changes.captures(r)
            ):
                need_recompute[name] = "gap"
                continue
            if watermark >= last_seq:
                continue
            pending = self._pending(view)
            if not pending or pending[0].seq > last_seq:
                continue
            if pending[0].seq < first_seq:
                need_recompute[name] = "behind"
                continue
            rule = self.graph.rule(name, relation)
            if rule is None or rule.mode != MODE_DELTA:
                need_recompute[name] = rule.reason if rule else "no-edge"
                continue
            targets.append(view)
        return targets

    def _rewinds(
        self, relation: str, last_seq: int, targets: Sequence[Any]
    ) -> Dict[str, Table]:
        """Overlay tables restoring other relations to their state at
        ``last_seq`` (head rows minus future inserts plus future
        deletes), so a coalesced run evaluates against the base state it
        logically executed in."""
        others = sorted(  # lint: ignore[C102] — relation names, totally ordered
            {
                r
                for view in targets
                for r in view.base_relations
                if r != relation and self.changes.captures(r)
            }
        )
        rewinds: Dict[str, Table] = {}
        database = self.warehouse.database
        for name in others:
            future = self.changes.log(name).records_after(last_seq)
            if not future:
                continue
            table = database._tables[name]  # raw rows; no fault/IO charge
            rows = [dict(row) for row in table.rows()]
            for record in reversed(future):
                if record.op in (INSERT, UPDATE):
                    self._remove_one(rows, record.row)
                if record.op in (DELETE, UPDATE):
                    rows.append(dict(record.old_row))
            rewound = Table(table.schema, table.blocking_factor, io=database.io)
            rewound.insert_many(rows, count_io=False)
            rewinds[name] = rewound
        return rewinds

    @staticmethod
    def _remove_one(rows: List[Dict[str, Any]], row: Mapping[str, Any]) -> None:
        key = _row_key(row)
        for index in range(len(rows) - 1, -1, -1):
            if _row_key(rows[index]) == key:
                del rows[index]
                return
        raise StreamingError(
            "change log is inconsistent with the stored table: "
            "a logged insert is missing from the head state"
        )

    def _apply_run(
        self,
        relation: str,
        inserts: List[Dict[str, Any]],
        deletes: List[Dict[str, Any]],
        targets: List[Any],
        rewinds: Dict[str, Table],
        need_recompute: Dict[str, str],
    ) -> List[Any]:
        """Propagate one coalesced run and commit the per-view deltas.

        Tries the shared-subplan batch evaluation first; if a fault
        interrupts it, falls back to per-view propagation so one failing
        view degrades alone instead of taking the whole run down."""
        injector = self.warehouse.fault_injector
        names = [view.name for view in targets]

        def propagate(view_names: Sequence[str]) -> Dict[str, ViewDelta]:
            if injector is not None:
                with injector.maintenance():
                    return self.propagator.propagate(
                        relation, inserts, deletes, view_names, rewinds
                    )
            return self.propagator.propagate(
                relation, inserts, deletes, view_names, rewinds
            )

        deltas: Dict[str, ViewDelta] = {}
        try:
            deltas = propagate(names)
        except ReproError:
            for view in targets:
                try:
                    deltas.update(propagate([view.name]))
                except ReproError as exc:
                    need_recompute[view.name] = "fault"
                    self._journal(
                        "cdc.propagate.fault", view=view.name,
                        relation=relation, error=str(exc),
                    )
        applied = []
        for view in targets:
            delta = deltas.get(view.name)
            if delta is None:
                if view.name not in need_recompute:
                    need_recompute[view.name] = "fault"
                continue
            try:
                if injector is not None:
                    with injector.maintenance():
                        self._commit_delta(view, relation, delta)
                else:
                    self._commit_delta(view, relation, delta)
            except ReproError as exc:
                need_recompute[view.name] = "fault"
                self._journal(
                    "cdc.apply.fault", view=view.name, relation=relation,
                    error=str(exc),
                )
                continue
            applied.append(view)
        return applied

    def _commit_delta(self, view: Any, relation: str, delta: ViewDelta) -> None:
        """Atomically swap the view to (stored − deletes) + inserts."""
        warehouse = self.warehouse
        database = warehouse.database
        stored = database.table(view.name)
        shadow = Table(stored.schema, stored.blocking_factor, io=database.io)
        shadow.insert_many(stored.rows(), count_io=False)
        if delta.delete_rows:
            shadow.delete_many(delta.delete_rows, count_io=True)
        insert_rows = delta.insert_rows
        rule = self.graph.rule(view.name, relation)
        if rule is not None and rule.distinct and insert_rows:
            names = shadow.schema.attribute_names
            existing = {
                tuple(row[n] for n in names) for row in shadow.rows()
            }
            deduped = []
            for row in insert_rows:
                key = tuple(row[n] for n in names)
                if key not in existing:
                    existing.add(key)
                    deduped.append(row)
            insert_rows = deduped
        if insert_rows:
            shadow.insert_many(insert_rows, count_io=True)
        database.register(view.name, shadow)
        warehouse.engine.indexes.invalidate(view.name)
        warehouse.engine.build_cache.invalidate(view.name)
        warehouse._committed_cards[view.name] = shadow.cardinality
        self._journal(
            "cdc.apply", view=view.name, relation=relation,
            inserted=len(insert_rows), deleted=len(delta.delete_rows),
            rows_after=shadow.cardinality,
        )
        if obs.enabled():
            obs.metrics().counter(
                "cdc.deltas_applied", view=view.name
            ).inc()

    # -------------------------------------------------------------- status
    def _journal(self, kind: str, **attributes: Any) -> None:
        if obs.enabled():
            obs.journal_event(
                kind, tick=self.scheduler.clock.now, **attributes
            )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "policy": self.policy.to_dict(),
            "changes": self.changes.to_dict(),
            "graph": self.graph.to_dict(),
            "synced": dict(sorted(self._synced.items())),
            "coalesced_total": self.coalesced_total,
            "drains": self.drains,
        }
