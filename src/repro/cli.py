"""Command-line interface.

Usage (also via ``python -m repro``)::

    repro workloads                       # list built-in workloads
    repro design   --workload paper       # run the full design pipeline
    repro explain  --workload paper       # logical + physical plan per query
    repro compare  --workload paper       # Table-2-style strategy table
    repro trace    --workload paper       # Figure-9 selection trace
    repro profile  --workload paper       # instrumented end-to-end run
    repro refresh  --failure-rate 0.3     # resilient scheduler refresh pass
    repro simulate --faults               # seeded fault-injection lifecycle
    repro simulate --drift                # static vs adaptive vs eager redesign
    repro adapt    --windows 8            # online drift-detection replay
    repro trace    --events               # flight-recorder journal as JSONL
    repro calibrate --workload paper      # estimated-vs-measured Ca/Cm report
    repro bench    --suite macro          # BENCH-tracked macro benchmark
    repro dot      --workload paper       # DOT export of the chosen MVPP
    repro lint     --workload paper       # semantic lint of the design problem
    repro lint     --self                 # determinism lint of the repro sources

Synthetic workloads accept ``--seed/--relations/--queries``; ``design``
can persist the result with ``--json FILE``; ``profile`` writes the full
span tree and metrics snapshot with ``--trace-json FILE``; ``lint``
emits ``--format text|json|sarif`` and exits nonzero on error-severity
findings.
"""

from __future__ import annotations

import argparse
import json
import sys
import warnings
from typing import Dict, List, Mapping, Optional, Tuple

from repro import __version__, obs
from repro.analysis import format_blocks, strategy_table, to_dot
from repro.errors import ReproError
from repro.mvpp import (
    DesignConfig,
    MVPPCostCalculator,
    design,
    generate_mvpps,
    select_views,
    strategies,
    strategy_names,
)
from repro.parallel import EXECUTOR_KINDS
from repro.mvpp.serialize import design_to_dict
from repro.obs.export import (
    dump_json,
    selection_trace_to_dict,
    validate_profile,
)
from repro.workload import (
    GeneratorConfig,
    StarConfig,
    generate_workload,
    paper_workload,
    paper_workload_fig7,
    star_workload,
)

WORKLOADS = ("paper", "paper-fig7", "star", "synthetic")


def resolve_workload(args: argparse.Namespace):
    if args.workload == "paper":
        return paper_workload()
    if args.workload == "paper-fig7":
        return paper_workload_fig7()
    if args.workload == "star":
        return star_workload(
            StarConfig(num_queries=args.queries, seed=args.seed)
        )
    return generate_workload(
        GeneratorConfig(
            num_relations=args.relations,
            num_queries=args.queries,
            seed=args.seed,
        )
    ).workload


def resolve_workload_rows(
    args: argparse.Namespace, scale: float
) -> Tuple[object, Dict[str, List[Mapping[str, object]]]]:
    """A workload plus synthetic rows matching its statistics at ``scale``."""
    from repro.workload.datagen import paper_rows, star_rows, synthetic_rows

    if args.workload in ("paper", "paper-fig7"):
        return resolve_workload(args), paper_rows(scale=scale, seed=args.seed)
    if args.workload == "star":
        config = StarConfig(num_queries=args.queries, seed=args.seed)
        return star_workload(config), star_rows(config, scale=scale, seed=args.seed)
    generated = generate_workload(
        GeneratorConfig(
            num_relations=args.relations,
            num_queries=args.queries,
            seed=args.seed,
        )
    )
    return generated.workload, synthetic_rows(generated, scale=scale, seed=args.seed)


def _add_workload_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workload", choices=WORKLOADS, default="paper",
        help="built-in workload to design for (default: paper)",
    )
    parser.add_argument("--seed", type=int, default=0,
                        help="seed for generated workloads")
    parser.add_argument("--relations", type=int, default=6,
                        help="relation count for synthetic workloads")
    parser.add_argument("--queries", type=int, default=5,
                        help="query count for generated workloads")
    parser.add_argument(
        "--rotations", type=int, default=None,
        help="limit the number of MVPP rotations (default: one per query)",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker count for the candidate search (0 = auto, default 1)",
    )
    parser.add_argument(
        "--parallel", choices=EXECUTOR_KINDS, default="auto",
        help="executor backend when --workers > 1 (default: auto)",
    )
    parser.add_argument(
        "--no-cost-cache", action="store_true",
        help="disable the shared cross-candidate cost cache",
    )
    parser.add_argument(
        "--strategy", default="heuristic", metavar="NAME",
        help="view-selection strategy (see `repro strategies`)",
    )
    parser.add_argument(
        "--engine", choices=("vectorized", "reference"), default="vectorized",
        help="execution engine: the vectorized columnar executor or the "
             "row-at-a-time reference oracle (default: vectorized)",
    )


def design_config(args: argparse.Namespace) -> DesignConfig:
    """The :class:`DesignConfig` described by the shared CLI flags."""
    return DesignConfig(
        strategy=args.strategy,
        rotations=args.rotations,
        workers=args.workers,
        executor=args.parallel,
        cache=not args.no_cost_cache,
        seed=args.seed,
        engine=args.engine,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MVPP materialized view design (Yang/Karlapalem/Li, ICDCS'97)",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("workloads", help="list built-in workloads")

    commands.add_parser(
        "strategies", help="list registered view-selection strategies"
    )

    design_parser = commands.add_parser("design", help="run the design pipeline")
    _add_workload_arguments(design_parser)
    design_parser.add_argument("--json", metavar="FILE", default=None,
                               help="write the design result as JSON")
    design_parser.add_argument(
        "--shards", type=int, default=0, metavar="N",
        help="also cost the design over N-way horizontal partitions "
             "(keys derived from the workload's own predicates)",
    )
    design_parser.add_argument(
        "--replicas", type=int, default=1, metavar="R",
        help="with --shards: read replicas per shard (default 1)",
    )

    explain_parser = commands.add_parser(
        "explain",
        help="logical plan annotations plus the physical operator tree",
    )
    _add_workload_arguments(explain_parser)
    explain_parser.add_argument(
        "--query", metavar="NAME", default=None,
        help="explain only this registered query (default: all of them)",
    )

    compare_parser = commands.add_parser(
        "compare", help="compare materialization strategies (Table 2)"
    )
    _add_workload_arguments(compare_parser)
    compare_parser.add_argument(
        "--exhaustive", action="store_true",
        help="include the 2^n optimum (small MVPPs only)",
    )

    trace_parser = commands.add_parser(
        "trace", help="print the Figure-9 selection trace"
    )
    _add_workload_arguments(trace_parser)
    trace_parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (json shares the observability serializer)",
    )
    trace_parser.add_argument(
        "--events", action="store_true",
        help="run an instrumented lifecycle and dump the flight-recorder "
             "journal as JSONL instead of the selection trace",
    )
    trace_parser.add_argument(
        "--scale", type=float, default=0.01,
        help="with --events: fraction of the statistics' cardinalities "
             "to load (default 0.01)",
    )
    trace_parser.add_argument(
        "--output", metavar="FILE", default=None,
        help="with --events: write the JSONL here instead of stdout",
    )

    profile_parser = commands.add_parser(
        "profile",
        help="instrumented end-to-end run (design, load, execute, maintain)",
    )
    _add_workload_arguments(profile_parser)
    profile_parser.add_argument(
        "--scale", type=float, default=0.01,
        help="fraction of the statistics' cardinalities to load (default 0.01)",
    )
    profile_parser.add_argument(
        "--trace-json", metavar="FILE", default=None,
        help="write the span tree + metrics snapshot as JSON",
    )
    profile_parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="stdout format (json prints the full profile document)",
    )

    report_parser = commands.add_parser(
        "report", help="full design report (views, extremes, sensitivity)"
    )
    _add_workload_arguments(report_parser)

    dot_parser = commands.add_parser("dot", help="export the designed MVPP as DOT")
    _add_workload_arguments(dot_parser)
    dot_parser.add_argument("--output", metavar="FILE", default=None,
                            help="write DOT here instead of stdout")

    refresh_parser = commands.add_parser(
        "refresh",
        help="resilient view refresh: retry/backoff/breaker scheduler",
    )
    _add_workload_arguments(refresh_parser)
    refresh_parser.add_argument(
        "--scale", type=float, default=0.01,
        help="fraction of the statistics' cardinalities to load (default 0.01)",
    )
    refresh_parser.add_argument(
        "--failure-rate", type=float, default=0.0,
        help="injected storage failure rate during maintenance (default 0)",
    )
    refresh_parser.add_argument(
        "--max-attempts", type=int, default=5,
        help="retry attempts per view refresh (default 5)",
    )

    simulate_parser = commands.add_parser(
        "simulate",
        help="end-to-end lifecycle simulation (updates, refreshes, queries)",
    )
    _add_workload_arguments(simulate_parser)
    simulate_parser.add_argument(
        "--faults", action="store_true",
        help="inject seeded storage faults during maintenance",
    )
    simulate_parser.add_argument(
        "--failure-rate", type=float, default=0.3,
        help="injected failure rate when --faults is on (default 0.3)",
    )
    simulate_parser.add_argument(
        "--rounds", type=int, default=3,
        help="update/serve/refresh rounds to simulate (default 3)",
    )
    simulate_parser.add_argument(
        "--scale", type=float, default=0.02,
        help="fraction of the statistics' cardinalities to load (default 0.02)",
    )
    simulate_parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    simulate_parser.add_argument(
        "--shards", type=int, default=0, metavar="N",
        help="run the sharding simulation instead: N-way partitions, "
             "pruned vs unpruned serving, partition-wise refresh",
    )
    simulate_parser.add_argument(
        "--replicas", type=int, default=2,
        help="with --shards: read replicas per shard (default 2)",
    )
    simulate_parser.add_argument(
        "--drift", action="store_true",
        help="replay a drifting workload instead: static vs adaptive vs "
             "eager redesign on the logical tick clock",
    )
    simulate_parser.add_argument(
        "--stationary", action="store_true",
        help="with --drift: stationary control run (the design-time "
             "profile throughout; the controller must accept nothing)",
    )
    simulate_parser.add_argument(
        "--windows-per-phase", type=int, default=4,
        help="with --drift: observation windows per workload phase "
             "(default 4; the replay runs three phases)",
    )

    stream_parser = commands.add_parser(
        "stream",
        help="CDC streaming maintenance: ingest, coalesce, drain, verify",
    )
    _add_workload_arguments(stream_parser)
    stream_parser.add_argument(
        "--faults", action="store_true",
        help="inject seeded storage faults during delta propagation",
    )
    stream_parser.add_argument(
        "--failure-rate", type=float, default=0.3,
        help="injected failure rate when --faults is on (default 0.3)",
    )
    stream_parser.add_argument(
        "--rounds", type=int, default=3,
        help="ingest/serve/drain rounds to simulate (default 3)",
    )
    stream_parser.add_argument(
        "--scale", type=float, default=0.02,
        help="fraction of the statistics' cardinalities to load (default 0.02)",
    )
    stream_parser.add_argument(
        "--max-lag", type=int, default=None, metavar="N",
        help="StreamingPolicy.max_lag_records backpressure bound",
    )
    stream_parser.add_argument(
        "--coalesce", type=int, default=None, metavar="N",
        help="StreamingPolicy.coalesce_records batch size",
    )
    stream_parser.add_argument(
        "--retention", type=int, default=None, metavar="N",
        help="change-log ring capacity per relation",
    )
    stream_parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )

    adapt_parser = commands.add_parser(
        "adapt",
        help="online adaptation: drift detection + cost-gated redesign",
    )
    _add_workload_arguments(adapt_parser)
    adapt_parser.add_argument(
        "--windows", type=int, default=8,
        help="observation windows to replay (default 8; the hot set "
             "inverts halfway through)",
    )
    adapt_parser.add_argument(
        "--stationary", action="store_true",
        help="keep the design-time profile throughout (control run)",
    )
    adapt_parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )

    lint_parser = commands.add_parser(
        "lint",
        help="static analysis: semantic MVPP/workload lints or --self code lint",
    )
    _add_workload_arguments(lint_parser)
    lint_parser.add_argument(
        "--self", dest="self_check", action="store_true",
        help="lint the repro package sources for determinism violations",
    )
    lint_parser.add_argument(
        "--path", action="append", metavar="PATH", default=None,
        help="lint these files/directories instead of the installed package "
             "(implies the code analyzer)",
    )
    lint_parser.add_argument(
        "--target", choices=("workload", "mvpp", "design", "all"), default="all",
        help="semantic scope: the workload spec, every candidate MVPP, "
             "the chosen design, or all three (default: all)",
    )
    lint_parser.add_argument(
        "--format", choices=("text", "json", "sarif", "github"), default="text",
        help="output format (default: text)",
    )
    lint_parser.add_argument(
        "--output", metavar="FILE", default=None,
        help="write the report here instead of stdout",
    )
    lint_parser.add_argument(
        "--rules", action="store_true",
        help="list the rule catalog and exit",
    )
    lint_parser.add_argument(
        "--cache-dir", metavar="DIR", nargs="?", default=None,
        const=".repro-lint-cache",
        help="cache per-file results under DIR keyed by content hash "
             "(--self only; default DIR: .repro-lint-cache)",
    )
    lint_parser.add_argument(
        "--diff", metavar="REV", default=None,
        help="restrict per-file analysis to files changed since the git "
             "revision REV (--self only; package-wide rules still run)",
    )
    lint_parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="fan uncached files out over N worker threads (--self only)",
    )
    lint_parser.add_argument(
        "--baseline", metavar="FILE", default=None,
        help="hide findings listed in this baseline file; expired "
             "entries (no longer matching) are reported",
    )
    lint_parser.add_argument(
        "--write-baseline", metavar="FILE", default=None,
        help="write the surviving findings to FILE as the new baseline "
             "and exit 0",
    )

    calibrate_parser = commands.add_parser(
        "calibrate",
        help="estimated-vs-measured Ca/Cm report (worst-calibrated first)",
    )
    _add_workload_arguments(calibrate_parser)
    calibrate_parser.add_argument(
        "--scale", type=float, default=0.01,
        help="fraction of the statistics' cardinalities to load (default 0.01)",
    )
    calibrate_parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    calibrate_parser.add_argument(
        "--limit", type=int, default=5,
        help="worst-calibrated entries to highlight (default 5)",
    )

    bench_parser = commands.add_parser(
        "bench",
        help="macro-benchmark sweep, BENCH-tracked with a regression gate",
    )
    _add_workload_arguments(bench_parser)
    bench_parser.add_argument(
        "--suite", choices=("macro",), default="macro",
        help="benchmark suite to run (default: macro)",
    )
    bench_parser.add_argument(
        "--scale", type=float, default=0.01,
        help="fraction of the statistics' cardinalities to load (default 0.01)",
    )
    bench_parser.add_argument(
        "--repeats", type=int, default=3,
        help="query-sweep repetitions (default 3)",
    )
    bench_parser.add_argument(
        "--windows", type=int, default=4,
        help="drift-replay observation windows (default 4)",
    )
    bench_parser.add_argument(
        "--output", metavar="FILE", default="BENCH_macro.json",
        help="write the benchmark document here (default: BENCH_macro.json)",
    )
    bench_parser.add_argument(
        "--baseline", metavar="FILE", default=None,
        help="compare against this document (default: the --output path "
             "when it already exists)",
    )
    bench_parser.add_argument(
        "--tolerance", type=float, default=0.25,
        help="allowed per-phase regression before failing (default 0.25)",
    )
    bench_parser.add_argument(
        "--smoke", action="store_true",
        help="deterministic mode: record wall_ms as 0 so the document is "
             "bit-compatible across machines (also via REPRO_BENCH_SMOKE)",
    )
    return parser


def command_workloads(args: argparse.Namespace) -> int:
    print("built-in workloads:")
    print("  paper       — the paper's Section-2 example (Table 1, Q1..Q4)")
    print("  paper-fig7  — the Figure 5/7/8 variant (divergent selections)")
    print("  star        — generated star schema (--queries, --seed)")
    print("  synthetic   — generated SPJ workload (--relations, --queries, --seed)")
    return 0


def command_strategies(args: argparse.Namespace) -> int:
    print("registered strategies:")
    for name in strategy_names():
        print(f"  {name}")
    return 0


def command_design(args: argparse.Namespace) -> int:
    workload = resolve_workload(args)
    config = design_config(args)
    result = design(workload, config)
    print(f"workload: {workload.name} ({len(workload.queries)} queries)")
    print(f"chosen MVPP: {result.mvpp.name} ({len(result.mvpp)} vertices)")
    print(f"materialize: {', '.join(result.materialized_names) or '(nothing)'}")
    breakdown = result.breakdown
    print(
        f"per-period cost: query={format_blocks(breakdown.query_processing)} "
        f"maintenance={format_blocks(breakdown.maintenance)} "
        f"total={format_blocks(breakdown.total)}"
    )
    if result.cache_stats is not None:
        stats = result.cache_stats
        print(
            f"cost cache: {stats['hits']:g} hits / {stats['misses']:g} misses "
            f"(hit ratio {stats['hit_ratio']:.0%}, {stats['size']:g} entries)"
        )
    sharding_doc = None
    if getattr(args, "shards", 0):
        sharding_doc = _design_sharding(args, workload, result)
    if args.json:
        document = design_to_dict(result)
        if sharding_doc is not None:
            document["sharding"] = sharding_doc
        with open(args.json, "w") as handle:
            json.dump(document, handle, indent=2)
        print(f"design written to {args.json}")
    return 0


def _design_sharding(
    args: argparse.Namespace, workload, result
) -> Dict[str, object]:
    """Cost the finished design over horizontal partitions.

    Builds an N-way shard catalog (partition keys derived from the
    workload's predicates, round-robin placement with replicas) and
    reports the distributed per-period cost with and without partition
    awareness — the difference is what per-shard update locality and
    pruned access buy at design time.
    """
    from repro.distributed import (
        DistributedCostCalculator,
        ShardCatalog,
        Topology,
    )
    from repro.distributed.simulate import choose_schemes

    if args.shards < 1:
        raise ReproError(f"--shards must be >= 1: {args.shards}")
    replicas = args.replicas
    if replicas < 1:
        raise ReproError(f"--replicas must be >= 1: {replicas}")
    schemes = choose_schemes(workload, {}, args.shards)
    sites = tuple(f"site{i}" for i in range(max(2, replicas)))
    topology = Topology(("warehouse",) + sites)
    catalog = ShardCatalog.build(
        schemes, topology=topology, sites=sites, replication=replicas
    )
    leaves = sorted(leaf.name for leaf in result.mvpp.leaves)
    placement = {
        name: sites[index % len(sites)]
        for index, name in enumerate(leaves)
    }
    whole = DistributedCostCalculator(
        result.mvpp, topology, placement, warehouse_site="warehouse"
    )
    partitioned = DistributedCostCalculator(
        result.mvpp, topology, placement, warehouse_site="warehouse",
        sharding=catalog,
    )
    whole_total = whole.total_cost(result.materialized)
    partitioned_total = partitioned.total_cost(result.materialized)
    print(
        f"sharding: {args.shards}-way partitions, {replicas} replica(s) "
        f"over sites {', '.join(sites)}"
    )
    for scheme in schemes:
        print(f"  {scheme.relation}: {scheme.kind} on {scheme.key}")
    print(
        f"  distributed per-period cost: "
        f"whole-object={format_blocks(whole_total)} "
        f"partition-aware={format_blocks(partitioned_total)}"
    )
    return {
        "shards": args.shards,
        "replicas": replicas,
        "schemes": [
            {
                "relation": s.relation,
                "key": s.key,
                "kind": s.kind,
                "shards": s.shards,
            }
            for s in schemes
        ],
        "catalog": catalog.describe(),
        "cost": {
            "whole_object": whole_total,
            "partition_aware": partitioned_total,
        },
    }


def command_explain(args: argparse.Namespace) -> int:
    from repro.warehouse import DataWarehouse

    workload = resolve_workload(args)
    warehouse = DataWarehouse.from_workload(workload, engine=args.engine)
    warehouse.design(design_config(args))
    names = [spec.name for spec in workload.queries]
    if args.query is not None:
        if args.query not in names:
            raise ReproError(
                f"unknown query {args.query!r}; "
                f"expected one of {', '.join(names)}"
            )
        names = [args.query]
    for index, name in enumerate(names):
        if index:
            print()
        print(warehouse.explain(name))
        plan = warehouse.query_plan(name)
        print(f"physical plan ({warehouse.engine.engine} engine):")
        print(warehouse.engine.explain(plan))
    return 0


def command_compare(args: argparse.Namespace) -> int:
    workload = resolve_workload(args)
    config = design_config(args)
    mvpp = generate_mvpps(workload, rotations=args.rotations or 1)[0]
    calculator = MVPPCostCalculator(mvpp)
    rows = strategies.compare(
        mvpp, calculator, include_exhaustive=args.exhaustive, config=config
    )
    rows.append(strategies.annealing(mvpp, calculator))
    print(strategy_table(rows, title=f"Strategies on {mvpp.name}"))
    return 0


def _run_instrumented_lifecycle(args: argparse.Namespace, scale: float):
    """Design, load, query, update, resilient refresh, adapt — once.

    The shared driver behind ``repro trace --events`` and ``repro
    calibrate``: every instrumented subsystem (executor, maintenance,
    scheduler, controller) runs at least once, so the journal and the
    calibration log carry one full story.
    """
    from repro.warehouse import DataWarehouse

    if scale <= 0:
        raise ReproError(f"--scale must be positive: {scale}")
    workload, rows = resolve_workload_rows(args, scale)
    warehouse = DataWarehouse.from_workload(workload)
    warehouse.design(design_config(args))
    for relation, relation_rows in rows.items():
        warehouse.load(relation, relation_rows)
    warehouse.materialize()
    # Sync statistics (base and stored views) to the loaded actuals, so
    # calibration measures cost-model error rather than the gap between
    # the Table-1 statistics and the --scale fraction actually loaded.
    warehouse.sync_statistics()
    for view in warehouse.views:
        if view.name in warehouse.database:
            table = warehouse.database.table(view.name)
            warehouse.statistics.set_relation(
                view.name, table.cardinality, table.num_blocks
            )
    for spec in workload.queries:
        warehouse.execute(spec.name)
    target = max(
        rows, key=lambda name: (workload.update_frequency(name), name)
    )
    delta = rows[target][: max(1, len(rows[target]) // 100)]
    warehouse.apply_update(target, delta, policy="defer")
    warehouse.refresh_resilient()
    # Streaming segment: CDC capture, stream ingest, drain.  Retention
    # is sized below the appended record count so the journal also
    # carries the cdc.dropped / degradation story.
    from repro.cdc import StreamingPolicy

    streaming = warehouse.enable_streaming(
        StreamingPolicy(
            retention=max(1, len(delta) // 2), coalesce_records=8
        )
    )
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")  # retention drop is intentional
        warehouse.apply_update(target, delta, policy="stream")
        warehouse.apply_delete(target, [delta[0]], policy="stream")
        streaming.drain()
    warehouse.refresh_resilient()
    warehouse.adapt()
    return workload, warehouse


def command_trace_events(args: argparse.Namespace) -> int:
    """Dump the flight-recorder journal of one lifecycle as JSONL."""
    was_enabled = obs.enabled()
    obs.enable(reset=True)
    try:
        workload, _ = _run_instrumented_lifecycle(args, args.scale)
        journal = obs.journal()
        text = journal.to_jsonl()
        events = len(journal)
    finally:
        if not was_enabled:
            obs.disable()
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(
            f"{events} event(s) from workload {workload.name} "
            f"written to {args.output}"
        )
    else:
        print(text, end="")
    return 0


def command_trace(args: argparse.Namespace) -> int:
    if getattr(args, "events", False):
        return command_trace_events(args)
    workload = resolve_workload(args)
    mvpp = generate_mvpps(workload, rotations=args.rotations or 1)[0]
    calculator = MVPPCostCalculator(mvpp)
    result = select_views(mvpp, calculator)
    breakdown = calculator.breakdown(result.materialized)
    if getattr(args, "format", "text") == "json":
        document = selection_trace_to_dict(
            mvpp.name, result.trace, result.names, breakdown.total
        )
        print(json.dumps(document, indent=2))
        return 0
    print(f"Figure-9 trace on {mvpp.name}:")
    for step in result.trace:
        saving = "-" if step.saving is None else format_blocks(step.saving)
        pruned = f"  pruned={list(step.pruned)}" if step.pruned else ""
        print(
            f"  {step.vertex:>10}: w={format_blocks(step.weight):>10} "
            f"Cs={saving:>10} -> {step.decision}{pruned}"
        )
    print(f"M = {{{', '.join(result.names)}}}")
    print(f"total cost: {format_blocks(breakdown.total)}")
    return 0


def command_profile(args: argparse.Namespace) -> int:
    from repro.warehouse import DataWarehouse

    if args.scale <= 0:
        raise ReproError(f"--scale must be positive: {args.scale}")
    was_enabled = obs.enabled()
    obs.enable(reset=True)
    try:
        workload, rows = resolve_workload_rows(args, args.scale)
        warehouse = DataWarehouse.from_workload(workload)
        warehouse.design(design_config(args))
        for relation, relation_rows in rows.items():
            warehouse.load(relation, relation_rows)
        warehouse.materialize()
        for spec in workload.queries:
            warehouse.execute(spec.name)
        # Maintenance: an incremental delta on the most-updated relation,
        # then a full refresh (the paper's recompute policy).
        target = max(
            rows, key=lambda name: (workload.update_frequency(name), name)
        )
        delta = rows[target][: max(1, len(rows[target]) // 100)]
        warehouse.apply_update(target, delta, policy="incremental")
        warehouse.refresh()
        # Resilience + adaptive: one scheduler pass over deliberately
        # staled views and one controller decision, so the profile
        # document exercises every phase in PHASES.
        warehouse.apply_update(target, delta, policy="defer")
        warehouse.refresh_resilient()
        warehouse.adapt()

        document = obs.snapshot(workload=workload.name)
    finally:
        if not was_enabled:
            obs.disable()
    problems = validate_profile(document)
    if args.trace_json:
        dump_json(document, args.trace_json)
    if args.format == "json":
        print(json.dumps(document, indent=2))
    else:
        print(f"profiled workload: {workload.name} "
              f"({len(workload.queries)} queries, scale={args.scale})")
        print(f"{'phase':<14} {'wall_ms':>12} {'spans':>7}")
        for phase, bucket in sorted(
            document["phases"].items(), key=lambda item: -item[1]["wall_ms"]
        ):
            print(
                f"{phase:<14} {bucket['wall_ms']:>12.3f} "
                f"{int(bucket['spans']):>7}"
            )
        counters = document["metrics"]["counters"]
        for name in (
            "storage.blocks_read",
            "storage.blocks_written",
            "generation.reuse_hits",
            "selection.decisions{decision=materialize}",
        ):
            if name in counters:
                print(f"{name} = {counters[name]:g}")
        if args.trace_json:
            print(f"trace written to {args.trace_json}")
    if problems:
        for problem in problems:
            print(f"profile schema problem: {problem}", file=sys.stderr)
        return 1
    return 0


def command_report(args: argparse.Namespace) -> int:
    from repro.analysis import design_report

    workload = resolve_workload(args)
    result = design(workload, design_config(args))
    print(design_report(result))
    return 0


def command_dot(args: argparse.Namespace) -> int:
    workload = resolve_workload(args)
    result = design(workload, design_config(args))
    text = to_dot(result.mvpp, highlight=result.materialized)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print(f"DOT written to {args.output}")
    else:
        print(text)
    return 0


def command_refresh(args: argparse.Namespace) -> int:
    from repro.resilience import FaultPolicy, ResilienceConfig, RetryPolicy
    from repro.warehouse import DataWarehouse

    if args.scale <= 0:
        raise ReproError(f"--scale must be positive: {args.scale}")
    workload, rows = resolve_workload_rows(args, args.scale)
    warehouse = DataWarehouse.from_workload(workload)
    warehouse.design(design_config(args))
    for relation, relation_rows in rows.items():
        warehouse.load(relation, relation_rows)
    warehouse.materialize()
    injector = None
    if args.failure_rate > 0:
        injector = warehouse.attach_faults(
            FaultPolicy(storage_failure_rate=args.failure_rate, seed=args.seed)
        )
    config = ResilienceConfig(
        retry=RetryPolicy(max_attempts=args.max_attempts), seed=args.seed
    )
    scheduler = warehouse.scheduler(config, injector=injector)
    # Make the views stale so the refreshes do real work.
    target = max(rows, key=lambda name: (workload.update_frequency(name), name))
    delta = rows[target][: max(1, len(rows[target]) // 100)]
    warehouse.apply_update(target, delta, policy="defer")

    outcomes = scheduler.refresh_all()
    print(f"resilient refresh on {workload.name} "
          f"(failure rate {args.failure_rate:g}, seed {args.seed}):")
    for outcome in outcomes:
        detail = f" ({outcome.error})" if outcome.error else ""
        print(
            f"  {outcome.view:>10}: {outcome.status:<10} "
            f"attempts={outcome.attempts} epoch={outcome.epoch} "
            f"ticks={outcome.ticks:.1f}{detail}"
        )
    if injector is not None:
        stats = injector.stats()
        print(f"faults injected: {stats['storage_faults']:g} storage, "
              f"{stats['comm_faults']:g} comm")
    stale = warehouse.stale_views()
    print(f"stale views remaining: {len(stale)}")
    return 0 if not stale else 1


def command_simulate(args: argparse.Namespace) -> int:
    if args.drift:
        return _simulate_drift(args)
    if getattr(args, "shards", 0):
        return _simulate_sharding(args)

    from repro.resilience import simulate_faults

    if args.rounds < 1:
        raise ReproError(f"--rounds must be >= 1: {args.rounds}")
    if args.scale <= 0:
        raise ReproError(f"--scale must be positive: {args.scale}")
    failure_rate = args.failure_rate if args.faults else 0.0
    if not 0.0 <= failure_rate <= 1.0:
        raise ReproError(f"--failure-rate must be in [0, 1]: {failure_rate}")
    workload, rows = resolve_workload_rows(args, args.scale)
    result = simulate_faults(
        failure_rate=failure_rate,
        seed=args.seed,
        rounds=args.rounds,
        workload=workload,
        rows=rows,
    )
    if args.format == "json":
        print(json.dumps(result.to_dict(), indent=2))
        return 0 if result.ok else 1
    document = result.to_dict()
    print(f"simulated {result.rounds} rounds on {result.workload} "
          f"(failure rate {failure_rate:g}, seed {result.seed}):")
    refreshes = document["refreshes"]
    print(f"  refreshes: {refreshes['succeeded']} ok / "
          f"{refreshes['failed']} failed / {refreshes['skipped']} skipped "
          f"({refreshes['retries']} retries over {refreshes['attempted']} attempts)")
    print(f"  faults injected: {result.faults_injected.get('storage_faults', 0):g} "
          f"storage, {result.faults_injected.get('comm_faults', 0):g} comm")
    queries = document["queries"]
    print(f"  queries: {queries['fresh']} fresh / {queries['stale']} stale / "
          f"{queries['degraded']} degraded "
          f"({queries['consistency_violations']} consistency violations)")
    print(f"  converged: {result.converged} "
          f"(epochs {result.final_epochs}, {result.final_ticks:.1f} ticks)")
    return 0 if result.ok else 1


def command_stream(args: argparse.Namespace) -> int:
    from repro.cdc import DEFAULT_STREAMING_POLICY
    from repro.cdc.simulate import simulate_streaming

    if args.rounds < 1:
        raise ReproError(f"--rounds must be >= 1: {args.rounds}")
    if args.scale <= 0:
        raise ReproError(f"--scale must be positive: {args.scale}")
    failure_rate = args.failure_rate if args.faults else 0.0
    if not 0.0 <= failure_rate <= 1.0:
        raise ReproError(f"--failure-rate must be in [0, 1]: {failure_rate}")
    overrides = {}
    if args.max_lag is not None:
        overrides["max_lag_records"] = args.max_lag
    if args.coalesce is not None:
        overrides["coalesce_records"] = args.coalesce
    if args.retention is not None:
        overrides["retention"] = args.retention
    policy = DEFAULT_STREAMING_POLICY
    if overrides:
        policy = policy.replace(**overrides)
    workload, rows = resolve_workload_rows(args, args.scale)
    result = simulate_streaming(
        failure_rate=failure_rate,
        seed=args.seed,
        rounds=args.rounds,
        policy=policy,
        workload=workload,
        rows=rows,
    )
    if args.format == "json":
        print(json.dumps(result.to_dict(), indent=2))
        return 0 if result.ok else 1
    document = result.to_dict()
    print(f"streamed {result.rounds} rounds on {result.workload} "
          f"(failure rate {failure_rate:g}, seed {result.seed}):")
    changes = document["changes"]
    print(f"  changes: {changes['appended']} appended "
          f"({changes['inserts']} inserts / {changes['deletes']} deletes), "
          f"{changes['dropped']} dropped")
    drains = document["drains"]
    print(f"  drains: {drains['total']} total "
          f"({drains['backpressure']} from backpressure), "
          f"{drains['coalesced']} records coalesced away")
    print(f"  views: {drains['views_updated']} delta-updated / "
          f"{drains['views_recomputed']} degraded to batch / "
          f"{drains['views_failed']} failed")
    print(f"  staleness: max {result.staleness_max} records "
          f"(samples {result.staleness_samples})")
    if result.faults_injected:
        print(f"  faults injected: "
              f"{result.faults_injected.get('storage_faults', 0):g} storage")
    print(f"  consistency: {result.consistency_violations} violations, "
          f"{result.partial_writes} partial writes")
    print(f"  converged: {result.converged} "
          f"({result.final_ticks:.1f} ticks, digest {result.digest})")
    return 0 if result.ok else 1


def _simulate_sharding(args: argparse.Namespace) -> int:
    from repro.distributed.simulate import simulate_sharding

    if args.shards < 1:
        raise ReproError(f"--shards must be >= 1: {args.shards}")
    if args.replicas < 1:
        raise ReproError(f"--replicas must be >= 1: {args.replicas}")
    if args.scale <= 0:
        raise ReproError(f"--scale must be positive: {args.scale}")
    workload, rows = resolve_workload_rows(args, args.scale)
    result = simulate_sharding(
        shards=args.shards,
        replication=args.replicas,
        seed=args.seed,
        workload=workload,
        rows=rows,
    )
    if args.format == "json":
        print(json.dumps(result.to_dict(), indent=2))
        return 0 if result.ok else 1
    print(
        f"sharded {result.workload} {result.shards} ways "
        f"(replication {result.replication}, seed {result.seed}):"
    )
    for scheme in result.schemes:
        print(f"  {scheme['relation']}: {scheme['kind']} on {scheme['key']}")
    for report in result.queries:
        print(
            f"  {report['query']}: io {report['io_pruned']:g} pruned vs "
            f"{report['io_unpruned']:g} unpruned "
            f"({report['partitions_pruned']} partitions pruned)"
        )
    print(
        f"  rows identical: {result.rows_identical}; selective queries "
        f"read strictly fewer blocks: {result.pruning_wins} "
        f"({result.selective_queries} selective)"
    )
    print(
        f"  refresh: affected shards only={result.refresh_affected_only}, "
        f"bit-identical across workers {list(result.refresh_workers)}="
        f"{result.refresh_identical}"
    )
    return 0 if result.ok else 1


def _simulate_drift(args: argparse.Namespace) -> int:
    from repro.adaptive import simulate_drift

    result = simulate_drift(
        seed=args.seed,
        windows_per_phase=args.windows_per_phase,
        stationary=args.stationary,
        workload=resolve_workload(args),
    )
    if args.format == "json":
        print(json.dumps(result.to_dict(), indent=2))
    else:
        print(result.describe())
    if result.stationary:
        # The control run passes only if the controller stayed put.
        return 0 if result.accepted == 0 else 1
    return (
        0
        if result.adaptive_beats_static and result.adaptive_beats_eager
        else 1
    )


def command_adapt(args: argparse.Namespace) -> int:
    from repro.adaptive import simulation_policy
    from repro.warehouse import DataWarehouse

    if args.windows < 2:
        raise ReproError(f"--windows must be >= 2: {args.windows}")
    workload = resolve_workload(args)
    config = design_config(args)
    # One event per unit of design-time frequency (at least one), so the
    # opening windows replay exactly what the designer expected.
    base_counts = {
        spec.name: max(1, int(round(spec.frequency)))
        for spec in workload.queries
    }
    # The drifted profile swaps the hot set end-for-end: the busiest
    # query inherits the rarest query's rate and vice versa.
    ranked = sorted(base_counts, key=lambda name: (base_counts[name], name))
    drifted_counts = {
        name: base_counts[other]
        for name, other in zip(ranked, reversed(ranked))
    }
    updates = sorted(workload.update_frequencies)
    expected_events = sum(base_counts.values()) + len(updates)
    policy = simulation_policy(float(expected_events))

    warehouse = DataWarehouse.from_workload(workload)
    warehouse.design(config.replace(adaptive=policy))
    controller = warehouse.controller()

    switch = args.windows // 2
    for window in range(args.windows):
        drifted = not args.stationary and window >= switch
        counts = drifted_counts if drifted else base_counts
        for name in sorted(counts):
            for _ in range(counts[name]):
                controller.note_query(name, 1.0)
        for relation in updates:
            controller.note_update(relation, 1.0)
        controller.evaluate()

    decisions = controller.history
    accepted = sum(1 for decision in decisions if decision.accepted)
    if args.format == "json":
        document = {
            "workload": workload.name,
            "windows": args.windows,
            "stationary": args.stationary,
            "period_ticks": policy.period_ticks,
            "decisions": [decision.to_dict() for decision in decisions],
            "accepted": accepted,
            "final_views": list(
                controller.installed_result.materialized_names
            ),
        }
        print(json.dumps(document, indent=2))
        return 0
    shape = (
        "stationary"
        if args.stationary
        else f"hot set inverts at window {switch}"
    )
    print(
        f"adaptive replay on {workload.name}: {args.windows} windows "
        f"({shape}), seed {args.seed}"
    )
    for window, decision in enumerate(decisions):
        print(f"  window {window:>2}: {decision.describe()}")
    drift_events = sum(
        1 for decision in decisions if decision.drift is not None
    )
    print(f"  drift events: {drift_events}, accepted redesigns: {accepted}")
    views = ", ".join(controller.installed_result.materialized_names)
    print(f"  serving views: {views or '(nothing)'}")
    return 0


def command_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro import lint as lint_mod

    if args.rules:
        print("registered lint rules:")
        for rule in lint_mod.all_rules():
            paper = f"  [{rule.paper}]" if rule.paper else ""
            print(
                f"  {rule.rule_id}  {rule.severity.label:<7} "
                f"({rule.scope}) {rule.summary}{paper}"
            )
        return 0

    if args.self_check or args.path:
        if args.path:
            report = lint_mod.lint_paths(
                [Path(p) for p in args.path], base=Path.cwd()
            )
        else:
            changed = None
            if args.diff:
                import repro

                package_base = Path(repro.__file__).resolve().parent.parent
                changed = lint_mod.changed_files(args.diff, base=package_base)
            report = lint_mod.lint_self_incremental(
                cache_dir=Path(args.cache_dir) if args.cache_dir else None,
                changed=changed,
                jobs=args.jobs,
            )
    else:
        workload = resolve_workload(args)
        config = design_config(args)
        report = lint_mod.LintReport(target=f"workload {workload.name!r}")
        if args.target in ("workload", "all"):
            report.merge(lint_mod.lint_workload(workload))
        if args.target in ("mvpp", "all"):
            for mvpp in generate_mvpps(workload, config=config):
                report.merge(lint_mod.lint_mvpp(mvpp, workload=workload))
        if args.target in ("design", "all"):
            result = design(workload, config)
            design_report = lint_mod.lint_design(
                result.mvpp,
                result.materialized,
                calculator=result.calculator,
                workload=workload,
            )
            if args.target == "all":
                # The per-candidate pass above already ran the mvpp-scope
                # rules on the chosen MVPP; keep only design-scope findings.
                design_report.diagnostics = [
                    d
                    for d in design_report.diagnostics
                    if lint_mod.get_rule(d.rule).scope != "mvpp"
                ]
            report.merge(design_report)
        report.diagnostics = report.sorted()

    expired = []
    if args.baseline:
        entries = lint_mod.load_baseline(Path(args.baseline))
        expired = lint_mod.apply_baseline(report, entries)

    if args.write_baseline:
        count = lint_mod.write_baseline(report, Path(args.write_baseline))
        print(f"baseline with {count} entr(y/ies) written to {args.write_baseline}")
        return 0

    report.publish()
    if args.format == "json":
        text = json.dumps(lint_mod.report_to_json(report), indent=2)
    elif args.format == "sarif":
        text = json.dumps(lint_mod.report_to_sarif(report), indent=2)
    elif args.format == "github":
        text = lint_mod.render_github(report)
    else:
        text = lint_mod.render_text(report)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print(f"lint report written to {args.output}")
    else:
        print(text)
    for entry in expired:
        print(
            f"baseline entry expired (no longer matches): "
            f"{entry.get('rule', '?')} at {entry.get('path', '?')} "
            f"[{entry.get('fingerprint', '')}] — refresh with --write-baseline"
        )
    return report.exit_code


def command_calibrate(args: argparse.Namespace) -> int:
    from repro.obs.calibration import calibration_report

    was_enabled = obs.enabled()
    obs.enable(reset=True)
    try:
        workload, _ = _run_instrumented_lifecycle(args, args.scale)
        report = calibration_report(obs.calibration().samples)
    finally:
        if not was_enabled:
            obs.disable()
    if args.format == "json":
        document = {
            "workload": workload.name,
            "scale": args.scale,
            **report.to_dict(),
        }
        print(json.dumps(document, indent=2))
        return 0
    print(
        f"cost-model calibration on {workload.name} "
        f"(scale={args.scale:g}, seed={args.seed})"
    )
    print(report.render_text())
    worst = report.worst(args.limit)
    if worst:
        print(f"worst calibrated: {', '.join(e.name for e in worst)}")
    return 0


def command_bench(args: argparse.Namespace) -> int:
    import os

    from repro.obs.macro import (
        MacroConfig,
        compare_bench,
        run_macro,
        smoke_mode,
        validate_bench,
    )

    config = MacroConfig(
        workload=args.workload,
        scale=args.scale,
        repeats=args.repeats,
        windows=args.windows,
        seed=args.seed,
        smoke=args.smoke or smoke_mode(),
        engine=args.engine,
    )
    try:
        config.validate()
    except ValueError as error:
        raise ReproError(str(error)) from None
    baseline = None
    baseline_path = args.baseline or args.output
    if baseline_path and os.path.exists(baseline_path):
        with open(baseline_path) as handle:
            baseline = json.load(handle)
    document = run_macro(config)
    problems = validate_bench(document)
    if problems:
        for problem in problems:
            print(f"bench schema problem: {problem}", file=sys.stderr)
        return 1
    dump_json(document, args.output)
    mode = "smoke" if document["smoke"] else "timed"
    print(
        f"macro bench on {document['workload']} ({mode}, "
        f"seed={args.seed}) -> {args.output}"
    )
    print(f"{'phase':<10} {'wall_ms':>10} {'io_blocks':>10}")
    for name, bucket in document["phases"].items():
        print(
            f"{name:<10} {bucket['wall_ms']:>10.3f} "
            f"{bucket['io_blocks']:>10.0f}"
        )
    calibration = document["calibration"]
    print(
        f"calibration: {calibration['samples']} sample(s), mean relative "
        f"error {calibration['mean_relative_error']:.3f}"
    )
    if baseline is not None:
        regressions = compare_bench(baseline, document, args.tolerance)
        if regressions:
            for regression in regressions:
                print(f"REGRESSION: {regression}", file=sys.stderr)
            return 1
        print(
            f"no regressions against {baseline_path} "
            f"(tolerance {args.tolerance:.0%})"
        )
    return 0


COMMANDS = {
    "workloads": command_workloads,
    "strategies": command_strategies,
    "design": command_design,
    "explain": command_explain,
    "compare": command_compare,
    "trace": command_trace,
    "profile": command_profile,
    "report": command_report,
    "dot": command_dot,
    "refresh": command_refresh,
    "simulate": command_simulate,
    "stream": command_stream,
    "adapt": command_adapt,
    "lint": command_lint,
    "calibrate": command_calibrate,
    "bench": command_bench,
}


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return COMMANDS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
