"""Command-line interface.

Usage (also via ``python -m repro``)::

    repro workloads                       # list built-in workloads
    repro design   --workload paper       # run the full design pipeline
    repro compare  --workload paper       # Table-2-style strategy table
    repro trace    --workload paper       # Figure-9 selection trace
    repro dot      --workload paper       # DOT export of the chosen MVPP

Synthetic workloads accept ``--seed/--relations/--queries``; ``design``
can persist the result with ``--json FILE``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.analysis import format_blocks, strategy_table, to_dot
from repro.errors import ReproError
from repro.mvpp import MVPPCostCalculator, design, generate_mvpps, select_views, strategies
from repro.mvpp.serialize import design_to_dict
from repro.workload import (
    GeneratorConfig,
    StarConfig,
    generate_workload,
    paper_workload,
    paper_workload_fig7,
    star_workload,
)

WORKLOADS = ("paper", "paper-fig7", "star", "synthetic")


def resolve_workload(args: argparse.Namespace):
    if args.workload == "paper":
        return paper_workload()
    if args.workload == "paper-fig7":
        return paper_workload_fig7()
    if args.workload == "star":
        return star_workload(
            StarConfig(num_queries=args.queries, seed=args.seed)
        )
    return generate_workload(
        GeneratorConfig(
            num_relations=args.relations,
            num_queries=args.queries,
            seed=args.seed,
        )
    ).workload


def _add_workload_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workload", choices=WORKLOADS, default="paper",
        help="built-in workload to design for (default: paper)",
    )
    parser.add_argument("--seed", type=int, default=0,
                        help="seed for generated workloads")
    parser.add_argument("--relations", type=int, default=6,
                        help="relation count for synthetic workloads")
    parser.add_argument("--queries", type=int, default=5,
                        help="query count for generated workloads")
    parser.add_argument(
        "--rotations", type=int, default=None,
        help="limit the number of MVPP rotations (default: one per query)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MVPP materialized view design (Yang/Karlapalem/Li, ICDCS'97)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("workloads", help="list built-in workloads")

    design_parser = commands.add_parser("design", help="run the design pipeline")
    _add_workload_arguments(design_parser)
    design_parser.add_argument("--json", metavar="FILE", default=None,
                               help="write the design result as JSON")

    compare_parser = commands.add_parser(
        "compare", help="compare materialization strategies (Table 2)"
    )
    _add_workload_arguments(compare_parser)
    compare_parser.add_argument(
        "--exhaustive", action="store_true",
        help="include the 2^n optimum (small MVPPs only)",
    )

    trace_parser = commands.add_parser(
        "trace", help="print the Figure-9 selection trace"
    )
    _add_workload_arguments(trace_parser)

    report_parser = commands.add_parser(
        "report", help="full design report (views, extremes, sensitivity)"
    )
    _add_workload_arguments(report_parser)

    dot_parser = commands.add_parser("dot", help="export the designed MVPP as DOT")
    _add_workload_arguments(dot_parser)
    dot_parser.add_argument("--output", metavar="FILE", default=None,
                            help="write DOT here instead of stdout")
    return parser


def command_workloads(args: argparse.Namespace) -> int:
    print("built-in workloads:")
    print("  paper       — the paper's Section-2 example (Table 1, Q1..Q4)")
    print("  paper-fig7  — the Figure 5/7/8 variant (divergent selections)")
    print("  star        — generated star schema (--queries, --seed)")
    print("  synthetic   — generated SPJ workload (--relations, --queries, --seed)")
    return 0


def command_design(args: argparse.Namespace) -> int:
    workload = resolve_workload(args)
    result = design(workload, rotations=args.rotations)
    print(f"workload: {workload.name} ({len(workload.queries)} queries)")
    print(f"chosen MVPP: {result.mvpp.name} ({len(result.mvpp)} vertices)")
    print(f"materialize: {', '.join(result.materialized_names) or '(nothing)'}")
    breakdown = result.breakdown
    print(
        f"per-period cost: query={format_blocks(breakdown.query_processing)} "
        f"maintenance={format_blocks(breakdown.maintenance)} "
        f"total={format_blocks(breakdown.total)}"
    )
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(design_to_dict(result), handle, indent=2)
        print(f"design written to {args.json}")
    return 0


def command_compare(args: argparse.Namespace) -> int:
    workload = resolve_workload(args)
    mvpp = generate_mvpps(workload, rotations=args.rotations or 1)[0]
    calculator = MVPPCostCalculator(mvpp)
    rows = strategies.compare(
        mvpp, calculator, include_exhaustive=args.exhaustive
    )
    rows.append(strategies.annealing(mvpp, calculator))
    print(strategy_table(rows, title=f"Strategies on {mvpp.name}"))
    return 0


def command_trace(args: argparse.Namespace) -> int:
    workload = resolve_workload(args)
    mvpp = generate_mvpps(workload, rotations=args.rotations or 1)[0]
    calculator = MVPPCostCalculator(mvpp)
    result = select_views(mvpp, calculator)
    print(f"Figure-9 trace on {mvpp.name}:")
    for step in result.trace:
        saving = "-" if step.saving is None else format_blocks(step.saving)
        pruned = f"  pruned={list(step.pruned)}" if step.pruned else ""
        print(
            f"  {step.vertex:>10}: w={format_blocks(step.weight):>10} "
            f"Cs={saving:>10} -> {step.decision}{pruned}"
        )
    print(f"M = {{{', '.join(result.names)}}}")
    breakdown = calculator.breakdown(result.materialized)
    print(f"total cost: {format_blocks(breakdown.total)}")
    return 0


def command_report(args: argparse.Namespace) -> int:
    from repro.analysis import design_report

    workload = resolve_workload(args)
    result = design(workload, rotations=args.rotations)
    print(design_report(result))
    return 0


def command_dot(args: argparse.Namespace) -> int:
    workload = resolve_workload(args)
    result = design(workload, rotations=args.rotations)
    text = to_dot(result.mvpp, highlight=result.materialized)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print(f"DOT written to {args.output}")
    else:
        print(text)
    return 0


COMMANDS = {
    "workloads": command_workloads,
    "design": command_design,
    "compare": command_compare,
    "trace": command_trace,
    "report": command_report,
    "dot": command_dot,
}


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return COMMANDS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
