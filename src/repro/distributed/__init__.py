"""Distributed-warehouse extension: sites, transfer costs, mirroring,
horizontal partitioning with replicas."""

from repro.distributed.comm_cost import DistributedCostCalculator
from repro.distributed.partition import (
    HASH,
    RANGE,
    PartitionScheme,
    range_bounds,
    shard_table_name,
    stable_hash,
)
from repro.distributed.placement import (
    MIRROR,
    REMOTE,
    MirrorDecision,
    assign_round_robin,
    mirror_decisions,
)
from repro.distributed.sharding import LOCAL_SITE, ShardCatalog
from repro.distributed.sites import DEFAULT_LINK_COST, Site, Topology

__all__ = [
    "DEFAULT_LINK_COST",
    "DistributedCostCalculator",
    "HASH",
    "LOCAL_SITE",
    "MIRROR",
    "MirrorDecision",
    "PartitionScheme",
    "RANGE",
    "REMOTE",
    "ShardCatalog",
    "Site",
    "Topology",
    "assign_round_robin",
    "mirror_decisions",
    "range_bounds",
    "shard_table_name",
    "stable_hash",
]
