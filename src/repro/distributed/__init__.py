"""Distributed-warehouse extension: sites, transfer costs, mirroring."""

from repro.distributed.comm_cost import DistributedCostCalculator
from repro.distributed.placement import (
    MIRROR,
    REMOTE,
    MirrorDecision,
    assign_round_robin,
    mirror_decisions,
)
from repro.distributed.sites import DEFAULT_LINK_COST, Site, Topology

__all__ = [
    "DEFAULT_LINK_COST",
    "DistributedCostCalculator",
    "MIRROR",
    "MirrorDecision",
    "REMOTE",
    "Site",
    "Topology",
    "assign_round_robin",
    "mirror_decisions",
]
