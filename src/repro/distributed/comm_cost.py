"""Site-aware MVPP costing.

Extends the centralized :class:`~repro.mvpp.cost.MVPPCostCalculator` with
the data-transfer term the paper calls for in distributed warehouses:
computing anything at the warehouse from a *virtual* (non-materialized)
lineage requires shipping the involved base relations' blocks from their
member-database sites; refreshing a materialized view does the same, once
per refresh trigger.  Materialized views live at the warehouse site, so
reading them incurs no communication.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Mapping

from repro.distributed.sites import Topology
from repro.errors import DistributedError
from repro.mvpp.cost import MVPPCostCalculator, PER_PERIOD
from repro.mvpp.graph import MVPP, Vertex


class DistributedCostCalculator(MVPPCostCalculator):
    """MVPP cost model with inter-site block-transfer charges."""

    def __init__(
        self,
        mvpp: MVPP,
        topology: Topology,
        placement: Mapping[str, str],
        warehouse_site: str,
        maintenance_trigger: str = PER_PERIOD,
    ):
        super().__init__(mvpp, maintenance_trigger)
        if warehouse_site not in topology:
            raise DistributedError(f"unknown warehouse site {warehouse_site!r}")
        for relation, site in placement.items():
            if site not in topology:
                raise DistributedError(
                    f"relation {relation!r} placed at unknown site {site!r}"
                )
        missing = [
            leaf.name for leaf in mvpp.leaves if leaf.name not in placement
        ]
        if missing:
            raise DistributedError(
                f"no site assigned for base relations: {sorted(missing)}"
            )
        self.topology = topology
        self.placement = dict(placement)
        self.warehouse_site = warehouse_site

    # ------------------------------------------------------------- transfers
    def leaf_transfer_cost(self, leaf: Vertex) -> float:
        """Cost of shipping one copy of a base relation to the warehouse."""
        if leaf.stats is None:
            return 0.0
        return self.topology.transfer_cost(
            self.placement[leaf.name], self.warehouse_site, leaf.stats.blocks
        )

    def lineage_transfer_cost(self, vertex: Vertex) -> float:
        """Transfer cost of every base relation feeding ``vertex``."""
        return sum(
            self.leaf_transfer_cost(leaf)
            for leaf in self.mvpp.base_relations_of(vertex)
        )

    # --------------------------------------------------- overridden costing
    def _access(
        self, vertex: Vertex, materialized: FrozenSet[int], cache: Dict[int, float]
    ) -> float:
        cached = cache.get(vertex.vertex_id)
        if cached is not None:
            return cached
        if vertex.vertex_id in materialized and vertex.stats is not None:
            cost = float(vertex.stats.blocks)  # stored at the warehouse
        elif vertex.is_leaf:
            cost = self.leaf_transfer_cost(vertex)
        else:
            cost = vertex.local_cost + sum(
                self._access(child, materialized, cache)
                for child in self.mvpp.children_of(vertex)
            )
        # The memo dict is created by access_cost() for exactly this
        # traversal — writing it is the memoization, not caller state.
        cache[vertex.vertex_id] = cost  # lint: ignore[E203]
        return cost

    def maintenance_cost(self, materialized: FrozenSet[int]) -> float:
        total = 0.0
        for vertex_id in sorted(materialized):  # id order: deterministic float sum
            vertex = self.mvpp.vertex(vertex_id)
            if vertex.is_leaf:
                continue
            per_refresh = vertex.maintenance_cost + self.lineage_transfer_cost(vertex)
            total += self.refresh_trigger(vertex) * per_refresh
        return total

    def weight(self, vertex: Vertex) -> float:
        if vertex.is_leaf:
            return 0.0
        distributed_ca = vertex.access_cost + self.lineage_transfer_cost(vertex)
        saving = sum(
            q.frequency for q in self.mvpp.queries_using(vertex)
        ) * distributed_ca
        per_refresh = vertex.maintenance_cost + self.lineage_transfer_cost(vertex)
        return saving - self.refresh_trigger(vertex) * per_refresh

    def incremental_saving(
        self, vertex: Vertex, materialized: FrozenSet[int]
    ) -> float:
        if vertex.is_leaf:
            return 0.0
        distributed_ca = vertex.access_cost + self.lineage_transfer_cost(vertex)
        already_saved = sum(
            self.mvpp.vertex(i).access_cost
            + self.lineage_transfer_cost(self.mvpp.vertex(i))
            for i in self.mvpp.descendants(vertex) & materialized
        )
        effective = distributed_ca - already_saved
        saving = sum(
            q.frequency for q in self.mvpp.queries_using(vertex)
        ) * effective
        per_refresh = vertex.maintenance_cost + self.lineage_transfer_cost(vertex)
        return saving - self.refresh_trigger(vertex) * per_refresh
