"""Site-aware MVPP costing.

Extends the centralized :class:`~repro.mvpp.cost.MVPPCostCalculator` with
the data-transfer term the paper calls for in distributed warehouses:
computing anything at the warehouse from a *virtual* (non-materialized)
lineage requires shipping the involved base relations' blocks from their
member-database sites; refreshing a materialized view does the same, once
per refresh trigger.  Materialized views live at the warehouse site, so
reading them incurs no communication — with or without synced statistics
(a stats-less stored view is priced as a warehouse-local recompute, the
same proxy the centralized calculator uses).

With a :class:`~repro.distributed.sharding.ShardCatalog` the model
becomes partition-aware:

* **access** — a partitioned base relation ships per shard, each from
  its own primary site, weighted by the catalog's per-shard query
  weight (the probability a query execution needs the shard; pass an
  explicit surviving-shard map for a concrete pruned query);
* **refresh** — a view co-partitioned with one partitioned base pays
  per *affected* partition: each shard contributes its update-weight
  share of the trigger times (its fraction of the view recompute plus
  shipping that one shard and the whole of every other lineage
  relation).  With a single partition this degenerates exactly to the
  whole-object formula, and with zero transfer costs to the centralized
  calculator.
"""

from __future__ import annotations

from typing import FrozenSet, Mapping, Optional, Sequence

from repro.distributed.sharding import LOCAL_SITE, ShardCatalog
from repro.distributed.sites import Topology
from repro.errors import DistributedError
from repro.mvpp.cost import MVPPCostCalculator, PER_PERIOD
from repro.mvpp.graph import MVPP, Vertex

#: Surviving shards per relation, as produced by
#: :func:`repro.warehouse.rewriter.prune_shards`.
PrunedShards = Mapping[str, Sequence[int]]


class DistributedCostCalculator(MVPPCostCalculator):
    """MVPP cost model with inter-site block-transfer charges."""

    def __init__(
        self,
        mvpp: MVPP,
        topology: Topology,
        placement: Mapping[str, str],
        warehouse_site: str,
        maintenance_trigger: str = PER_PERIOD,
        sharding: Optional[ShardCatalog] = None,
    ):
        super().__init__(mvpp, maintenance_trigger)
        if warehouse_site not in topology:
            raise DistributedError(f"unknown warehouse site {warehouse_site!r}")
        for relation, site in placement.items():
            if site not in topology:
                raise DistributedError(
                    f"relation {relation!r} placed at unknown site {site!r}"
                )
        missing = [
            leaf.name for leaf in mvpp.leaves if leaf.name not in placement
        ]
        if missing:
            raise DistributedError(
                f"no site assigned for base relations: {sorted(missing)}"
            )
        if sharding is not None:
            for relation in sharding.relations:
                scheme = sharding.require_scheme(relation)
                for shard in scheme.all_shards:
                    for site in sharding.sites_for(relation, shard):
                        if site != LOCAL_SITE and site not in topology:
                            raise DistributedError(
                                f"shard {relation!r}#{shard} placed at "
                                f"unknown site {site!r}"
                            )
        self.topology = topology
        self.placement = dict(placement)
        self.warehouse_site = warehouse_site
        self.sharding = sharding

    # ------------------------------------------------------------- transfers
    def _shard_site(self, relation: str, shard: int) -> str:
        """Where one shard's primary copy lives (placement fallback)."""
        assert self.sharding is not None
        primary = self.sharding.primary(relation, shard)
        if primary in self.topology:
            return primary
        return self.placement[relation]

    def _shard_transfer_cost(self, leaf: Vertex, shard: int) -> float:
        """Shipping one shard of a partitioned base to the warehouse."""
        if leaf.stats is None:
            return 0.0
        assert self.sharding is not None
        blocks = leaf.stats.blocks * self.sharding.shard_fraction(
            leaf.name, shard
        )
        return self.topology.transfer_cost(
            self._shard_site(leaf.name, shard), self.warehouse_site, blocks
        )

    def leaf_transfer_cost(
        self, leaf: Vertex, surviving: Optional[Sequence[int]] = None
    ) -> float:
        """Cost of shipping one copy of a base relation to the warehouse.

        For a partitioned relation this sums per shard: over the
        ``surviving`` shards when given (a concrete pruned query), else
        over every shard weighted by the catalog's per-shard query
        weight (the design-time expectation).
        """
        scheme = (
            self.sharding.scheme(leaf.name)
            if self.sharding is not None
            else None
        )
        if scheme is None:
            if leaf.stats is None:
                return 0.0
            return self.topology.transfer_cost(
                self.placement[leaf.name], self.warehouse_site,
                leaf.stats.blocks,
            )
        if surviving is not None:
            return sum(
                self._shard_transfer_cost(leaf, shard)
                for shard in sorted(surviving)
            )
        return sum(
            self.sharding.query_weight(leaf.name, shard)
            * self._shard_transfer_cost(leaf, shard)
            for shard in scheme.all_shards
        )

    def lineage_transfer_cost(
        self, vertex: Vertex, pruned: Optional[PrunedShards] = None
    ) -> float:
        """Transfer cost of every base relation feeding ``vertex``.

        ``pruned`` maps relation names to their surviving shard ids
        (absent relations ship in full) — access cost becomes the sum
        over partitions surviving pruning.
        """
        total = 0.0
        for leaf in sorted(
            self.mvpp.base_relations_of(vertex), key=lambda v: v.name
        ):
            surviving = None if pruned is None else pruned.get(leaf.name)
            total += self.leaf_transfer_cost(leaf, surviving)
        return total

    def _maintenance_transfer_cost(self, leaf: Vertex) -> float:
        """Shipping a whole lineage relation for one refresh (unweighted)."""
        scheme = (
            self.sharding.scheme(leaf.name)
            if self.sharding is not None
            else None
        )
        if scheme is None:
            if leaf.stats is None:
                return 0.0
            return self.topology.transfer_cost(
                self.placement[leaf.name], self.warehouse_site,
                leaf.stats.blocks,
            )
        return sum(
            self._shard_transfer_cost(leaf, shard)
            for shard in scheme.all_shards
        )

    # --------------------------------------------------- overridden costing
    def _leaf_access_cost(self, vertex: Vertex) -> float:
        """Reading a base relation ships it from its member site(s)."""
        return self.leaf_transfer_cost(vertex)

    def _copartition_base(
        self, leaves: Sequence[Vertex]
    ) -> Optional[Vertex]:
        """The partitioned base a view's refresh fans out over.

        A view is refreshed partition-wise along exactly one partitioned
        lineage relation; with several partitioned bases the name-least
        one is chosen (deterministic, matching the storage layer's
        co-partitioning rule of requiring a single partitioned base).
        """
        if self.sharding is None:
            return None
        partitioned = sorted(
            (leaf for leaf in leaves if leaf.name in self.sharding),
            key=lambda v: v.name,
        )
        return partitioned[0] if partitioned else None

    def _per_refresh_cost(self, vertex: Vertex) -> float:
        """Refresh cost per trigger unit, partition-aware.

        Without sharding (or with no partitioned lineage): recompute the
        view and ship its whole lineage.  With a co-partition base ``b``:
        ``Σ_s w_u(b,s) · (Cm·fraction(b,s) + T(b,s) + Σ_{l≠b} T(l))`` —
        only the partition named by an update batch refreshes, so each
        shard contributes its update-weight share of recomputing its
        fraction of the view plus shipping that one shard (and the whole
        of every other lineage relation it joins against).
        """
        leaves = sorted(
            self.mvpp.base_relations_of(vertex), key=lambda v: v.name
        )
        base = self._copartition_base(leaves)
        if base is None:
            return vertex.maintenance_cost + sum(
                self._maintenance_transfer_cost(leaf) for leaf in leaves
            )
        scheme = self.sharding.require_scheme(base.name)
        others = sum(
            self._maintenance_transfer_cost(leaf)
            for leaf in leaves
            if leaf.name != base.name
        )
        total = 0.0
        for shard in scheme.all_shards:
            weight = self.sharding.update_weight(base.name, shard)
            fraction = self.sharding.shard_fraction(base.name, shard)
            total += weight * (
                vertex.maintenance_cost * fraction
                + self._shard_transfer_cost(base, shard)
                + others
            )
        return total

    def maintenance_cost(self, materialized: FrozenSet[int]) -> float:
        total = 0.0
        for vertex_id in sorted(materialized):  # id order: deterministic float sum
            vertex = self.mvpp.vertex(vertex_id)
            if vertex.is_leaf:
                continue
            total += self.refresh_trigger(vertex) * self._per_refresh_cost(
                vertex
            )
        return total

    def weight(self, vertex: Vertex) -> float:
        if vertex.is_leaf:
            return 0.0
        distributed_ca = vertex.access_cost + self.lineage_transfer_cost(vertex)
        saving = sum(
            q.frequency for q in self.mvpp.queries_using(vertex)
        ) * distributed_ca
        return saving - self.refresh_trigger(vertex) * self._per_refresh_cost(
            vertex
        )

    def incremental_saving(
        self, vertex: Vertex, materialized: FrozenSet[int]
    ) -> float:
        if vertex.is_leaf:
            return 0.0
        distributed_ca = vertex.access_cost + self.lineage_transfer_cost(vertex)
        already_saved = sum(
            self.mvpp.vertex(i).access_cost
            + self.lineage_transfer_cost(self.mvpp.vertex(i))
            for i in self.mvpp.descendants(vertex) & materialized
        )
        effective = distributed_ca - already_saved
        saving = sum(
            q.frequency for q in self.mvpp.queries_using(vertex)
        ) * effective
        return saving - self.refresh_trigger(vertex) * self._per_refresh_cost(
            vertex
        )
