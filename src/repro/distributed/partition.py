"""Horizontal partitioning: deterministic shard maps over key attributes.

The paper's Figure-1 architecture separates member-database sites from
the warehouse; this module extends that model below the relation level.
A :class:`PartitionScheme` splits one relation into ``shards`` horizontal
fragments on a *partition key* attribute, either by a stable hash or by
range bounds.  The shard map is a pure function of the key value — no
process-salted ``hash()``, no randomness — so every component (catalog,
cost model, rewriter, refresh scheduler) derives the same placement from
the same scheme, across processes and runs.

Pruning: given a comparison ``key <op> literal`` the scheme can name the
subset of shards that may hold satisfying rows (:meth:`PartitionScheme.
shards_for`).  Hash schemes prune only equalities; range schemes also
prune inequalities via their ordered bounds.
"""

from __future__ import annotations

import zlib
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Tuple

from repro.errors import DistributedError

__all__ = [
    "HASH",
    "RANGE",
    "PartitionScheme",
    "range_bounds",
    "shard_table_name",
    "stable_hash",
]

#: Partitioning kinds.
HASH = "hash"
RANGE = "range"

#: Separator between a relation name and its shard ordinal in stored
#: shard-table names (``Order#3``).  ``#`` cannot appear in SQL
#: identifiers, so shard tables never collide with catalog relations.
SHARD_SEPARATOR = "#"


def stable_hash(value: Any) -> int:
    """A process-independent hash of a partition-key value.

    Python's built-in ``hash()`` is salted per process for strings, so a
    shard map built on it would differ between runs.  This uses CRC-32
    over a type-tagged canonical encoding instead; integral floats hash
    like the equal int so ``5`` and ``5.0`` land on the same shard.
    """
    if isinstance(value, bool):
        tag = f"i:{int(value)}"
    elif isinstance(value, int):
        tag = f"i:{value}"
    elif isinstance(value, float):
        tag = f"i:{int(value)}" if value.is_integer() else f"f:{value!r}"
    elif isinstance(value, str):
        tag = f"s:{value}"
    elif value is None:
        tag = "n:"
    else:
        tag = f"o:{value!r}"  # dates etc. repr deterministically
    return zlib.crc32(tag.encode("utf-8"))


def shard_table_name(relation: str, shard: int) -> str:
    """Stored-table name of one shard (``Order`` + 3 → ``Order#3``)."""
    return f"{relation}{SHARD_SEPARATOR}{shard}"


def range_bounds(values: Iterable[Any], shards: int) -> Tuple[Any, ...]:
    """Evenly-spaced quantile bounds for a RANGE scheme over ``values``.

    Returns ``shards - 1`` strictly increasing split points taken from
    the sorted distinct values (deterministic; no interpolation).  Fewer
    distinct values than shards is rejected — a range scheme needs a
    distinct bound per split.
    """
    if shards < 1:
        raise DistributedError(f"need at least one shard: {shards}")
    distinct = sorted(dict.fromkeys(values))
    if shards == 1:
        return ()
    if len(distinct) < shards:
        raise DistributedError(
            f"cannot derive {shards} range partitions from "
            f"{len(distinct)} distinct values"
        )
    step = len(distinct) / shards
    bounds = []
    for index in range(1, shards):
        bounds.append(distinct[int(index * step)])
    if len(set(bounds)) != len(bounds):
        raise DistributedError(
            "derived range bounds are not strictly increasing; "
            "values are too skewed for this shard count"
        )
    return tuple(bounds)


@dataclass(frozen=True)
class PartitionScheme:
    """A deterministic shard map for one relation.

    ``key`` names the partition-key attribute (qualified or short; shard
    routing resolves it by short name against stored rows).  HASH maps
    ``stable_hash(value) % shards``; RANGE uses ``bounds`` — a strictly
    increasing tuple of ``shards - 1`` split points where shard ``i``
    holds values in ``[bounds[i-1], bounds[i])``-style buckets computed
    with :func:`bisect.bisect_right` (values at or above the last bound
    go to the last shard).
    """

    relation: str
    key: str
    shards: int
    kind: str = HASH
    bounds: Tuple[Any, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.relation:
            raise DistributedError("partition scheme needs a relation name")
        if not self.key:
            raise DistributedError("partition scheme needs a key attribute")
        if self.shards < 1:
            raise DistributedError(
                f"need at least one shard: {self.shards}"
            )
        if self.kind not in (HASH, RANGE):
            raise DistributedError(f"unknown partition kind {self.kind!r}")
        object.__setattr__(self, "bounds", tuple(self.bounds))
        if self.kind == HASH:
            if self.bounds:
                raise DistributedError("hash partitioning takes no bounds")
            return
        if len(self.bounds) != self.shards - 1:
            raise DistributedError(
                f"range partitioning over {self.shards} shards needs "
                f"{self.shards - 1} bounds, got {len(self.bounds)}"
            )
        for low, high in zip(self.bounds, self.bounds[1:]):
            if not low < high:
                raise DistributedError(
                    "range bounds must be strictly increasing"
                )

    # ------------------------------------------------------------- routing
    @property
    def key_short(self) -> str:
        """The key's unqualified attribute name."""
        return self.key.split(".")[-1]

    @property
    def all_shards(self) -> Tuple[int, ...]:
        return tuple(range(self.shards))

    def shard_of(self, value: Any) -> int:
        """The shard holding rows whose key equals ``value``."""
        if self.kind == HASH:
            return stable_hash(value) % self.shards
        try:
            return bisect_right(self.bounds, value)
        except TypeError:
            raise DistributedError(
                f"value {value!r} is not comparable with the range bounds "
                f"of {self.relation!r}"
            ) from None

    # ------------------------------------------------------------- pruning
    def shards_for(self, op: str, value: Any) -> Tuple[int, ...]:
        """Shards that may hold rows satisfying ``key <op> value``.

        Sound over-approximation: a shard absent from the result holds
        no satisfying row.  Equality prunes under both kinds; range
        comparisons prune only under RANGE; anything unprunable returns
        every shard.
        """
        if op == "=":
            return (self.shard_of(value),)
        if self.kind != RANGE or op not in ("<", "<=", ">", ">="):
            return self.all_shards
        try:
            pivot = bisect_right(self.bounds, value)
        except TypeError:
            return self.all_shards
        if op in ("<", "<="):
            return tuple(range(0, pivot + 1))
        return tuple(range(pivot, self.shards))

    # ------------------------------------------------------------ row split
    def key_value(self, row: Mapping[str, Any]) -> Any:
        """Extract the partition-key value from a (possibly qualified) row."""
        if self.key in row:
            return row[self.key]
        short = self.key_short
        matches = [
            row[name]
            for name in sorted(row)
            if name.split(".")[-1] == short
        ]
        if len(matches) == 1:
            return matches[0]
        raise DistributedError(
            f"cannot resolve partition key {self.key!r} of "
            f"{self.relation!r} in row with columns {sorted(row)}"
        )

    def split_rows(
        self, rows: Iterable[Mapping[str, Any]]
    ) -> Dict[int, List[Mapping[str, Any]]]:
        """Group ``rows`` by destination shard (order preserved per shard)."""
        out: Dict[int, List[Mapping[str, Any]]] = {
            shard: [] for shard in self.all_shards
        }
        for row in rows:
            out[self.shard_of(self.key_value(row))].append(row)
        return out

    def shard_table(self, shard: int) -> str:
        """Stored-table name of one of this scheme's shards."""
        if not 0 <= shard < self.shards:
            raise DistributedError(
                f"shard {shard} out of range for {self.relation!r} "
                f"({self.shards} shards)"
            )
        return shard_table_name(self.relation, shard)
