"""Member-database mirroring decisions.

The paper's architecture (Figure 1) keeps a *member database* per local
database and notes that "when the member database views are decided
whether to be materialized or not, it shall be calculated based on cost of
view maintenance and data communication between different sites".

:func:`mirror_decisions` implements exactly that trade-off per base
relation: mirror it at the warehouse (pay its transfer once per update
period) or access it remotely (pay its transfer once per query use).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Tuple

from repro import obs
from repro.distributed.sites import Topology
from repro.errors import DistributedError, WorkloadWarning
from repro.mvpp.graph import MVPP

MIRROR = "mirror"
REMOTE = "remote"


@dataclass(frozen=True)
class MirrorDecision:
    """Outcome for one base relation.

    ``stats_known`` is False when the relation had no synced statistics:
    both candidate costs are then 0.0 and the MIRROR choice is the tie
    default, not a cost-justified decision.
    """

    relation: str
    choice: str  # MIRROR | REMOTE
    mirror_cost: float  # per-period cost if mirrored at the warehouse
    remote_cost: float  # per-period cost if accessed remotely
    stats_known: bool = True

    @property
    def saving(self) -> float:
        return abs(self.mirror_cost - self.remote_cost)


def assign_round_robin(
    relations: Sequence[str], sites: Sequence[str]
) -> Dict[str, str]:
    """Spread base relations across member-database sites round-robin.

    Duplicate relation names are rejected: the dict comprehension would
    keep only the last occurrence, silently skewing the spread.
    """
    if not sites:
        raise DistributedError("need at least one site")
    seen: set = set()
    duplicates = sorted(
        dict.fromkeys(r for r in relations if r in seen or seen.add(r))
    )
    if duplicates:
        raise DistributedError(
            f"duplicate relation names in round-robin placement: "
            f"{duplicates}"
        )
    return {
        relation: sites[index % len(sites)]
        for index, relation in enumerate(relations)
    }


def mirror_decisions(
    mvpp: MVPP,
    topology: Topology,
    placement: Mapping[str, str],
    warehouse_site: str,
) -> Tuple[MirrorDecision, ...]:
    """Decide, per base relation, mirror-at-warehouse vs remote access.

    * mirroring costs ``fu(b) · transfer(site(b) → warehouse, B(b))`` per
      period (refresh the mirror on every update);
    * remote access costs
      ``(Σ_{q uses b} fq(q)) · transfer(site(b) → warehouse, B(b))``
      (ship the relation for every query evaluation that reads it).
    """
    decisions = []
    with obs.span(
        "distributed.mirror_decisions",
        mvpp=mvpp.name,
        warehouse_site=warehouse_site,
    ) as span:
        emit = obs.enabled()
        for leaf in sorted(mvpp.leaves, key=lambda v: v.name):
            if leaf.name not in placement:
                raise DistributedError(f"no site assigned for {leaf.name!r}")
            stats_known = leaf.stats is not None
            if not stats_known:
                warnings.warn(
                    WorkloadWarning(
                        f"relation {leaf.name!r} has no statistics; its "
                        f"mirror-vs-remote costs are both 0.0 and the "
                        f"MIRROR choice is a tie default, not "
                        f"cost-justified — sync statistics before "
                        f"trusting this placement"
                    ),
                    stacklevel=2,
                )
            blocks = leaf.stats.blocks if stats_known else 0
            transfer = topology.transfer_cost(
                placement[leaf.name], warehouse_site, blocks
            )
            total_query_frequency = sum(
                q.frequency for q in mvpp.queries_using(leaf)
            )
            mirror_cost = leaf.frequency * transfer
            remote_cost = total_query_frequency * transfer
            choice = MIRROR if mirror_cost <= remote_cost else REMOTE
            decision = MirrorDecision(
                leaf.name, choice, mirror_cost, remote_cost,
                stats_known=stats_known,
            )
            decisions.append(decision)
            if emit:
                site = placement[leaf.name]
                chosen_cost = mirror_cost if choice == MIRROR else remote_cost
                obs.metrics().counter(
                    "distributed.comm_cost", site=site
                ).inc(chosen_cost)
                span.event(
                    "mirror_decision",
                    relation=leaf.name,
                    site=site,
                    choice=choice,
                    mirror_cost=mirror_cost,
                    remote_cost=remote_cost,
                    stats_known=stats_known,
                )
        span.set(relations=len(decisions))
    return tuple(decisions)
