"""The shard/replica catalog: schemes, per-shard placement, routing.

One :class:`ShardCatalog` holds, per partitioned relation:

* its :class:`~repro.distributed.partition.PartitionScheme`;
* per-shard placement — a primary site plus read replicas;
* per-shard frequency weights refining the paper's fq/fu to partition
  granularity: ``update_weight`` is the fraction of the relation's
  update mass landing on a shard (defaults uniform, sums to 1), and
  ``query_weight`` is the probability a query execution needs the shard
  (defaults 1.0 — without pruning every query reads every shard);
* per-shard data fractions used to apportion block counts.

Read routing is deterministic: :meth:`route_read` round-robins over the
sorted ``(primary, *replicas)`` site list with a per-shard cursor, so a
fixed request sequence always lands on the same sites.  Every routed
read increments the ``distributed.replica_reads{site}`` counter.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

from repro import obs
from repro.distributed.partition import PartitionScheme
from repro.distributed.sites import Topology
from repro.errors import DistributedError

__all__ = ["LOCAL_SITE", "ShardCatalog"]

#: Placement reported for shards that were never assigned a site (a
#: single-machine warehouse still has a well-defined shard map).
LOCAL_SITE = "local"


class ShardCatalog:
    """Registry of partition schemes, shard placement, and shard weights."""

    def __init__(self, topology: Optional[Topology] = None):
        self.topology = topology
        self._schemes: Dict[str, PartitionScheme] = {}
        # (relation, shard) -> (primary, replicas...)
        self._sites: Dict[Tuple[str, int], Tuple[str, ...]] = {}
        self._query_weights: Dict[Tuple[str, int], float] = {}
        self._update_weights: Dict[Tuple[str, int], float] = {}
        self._fractions: Dict[Tuple[str, int], float] = {}
        # Deterministic round-robin cursors for replica routing.
        self._cursors: Dict[Tuple[str, int], int] = {}

    # ----------------------------------------------------------------- schemes
    def add_scheme(self, scheme: PartitionScheme) -> PartitionScheme:
        if scheme.relation in self._schemes:
            raise DistributedError(
                f"relation {scheme.relation!r} is already partitioned"
            )
        self._schemes[scheme.relation] = scheme
        return scheme

    def scheme(self, relation: str) -> Optional[PartitionScheme]:
        return self._schemes.get(relation)

    def require_scheme(self, relation: str) -> PartitionScheme:
        scheme = self._schemes.get(relation)
        if scheme is None:
            raise DistributedError(f"relation {relation!r} is not partitioned")
        return scheme

    def __contains__(self, relation: str) -> bool:
        return relation in self._schemes

    @property
    def relations(self) -> Tuple[str, ...]:
        """Partitioned relation names, sorted for deterministic iteration."""
        return tuple(sorted(self._schemes))

    # --------------------------------------------------------------- placement
    def place_shard(
        self,
        relation: str,
        shard: int,
        primary: str,
        replicas: Sequence[str] = (),
    ) -> None:
        """Assign one shard a primary site plus read replicas."""
        scheme = self.require_scheme(relation)
        if not 0 <= shard < scheme.shards:
            raise DistributedError(
                f"shard {shard} out of range for {relation!r}"
            )
        sites = (primary, *replicas)
        if len(set(sites)) != len(sites):
            raise DistributedError(
                f"duplicate sites in placement of {relation!r}#{shard}: "
                f"{sorted(sites)}"
            )
        if self.topology is not None:
            for site in sites:
                if site not in self.topology:
                    raise DistributedError(
                        f"shard {relation!r}#{shard} placed at unknown "
                        f"site {site!r}"
                    )
        self._sites[(relation, shard)] = sites

    def assign_shards_round_robin(
        self, relation: str, sites: Sequence[str], replication: int = 1
    ) -> None:
        """Spread a relation's shards across ``sites`` round-robin.

        ``replication`` counts total copies per shard (1 = primary only);
        replicas are the next sites in rotation after the primary.
        """
        scheme = self.require_scheme(relation)
        if not sites:
            raise DistributedError("need at least one site")
        if len(set(sites)) != len(sites):
            raise DistributedError(f"duplicate sites: {sorted(sites)}")
        if not 1 <= replication <= len(sites):
            raise DistributedError(
                f"replication {replication} needs between 1 and "
                f"{len(sites)} distinct sites"
            )
        for shard in scheme.all_shards:
            copies = tuple(
                sites[(shard + offset) % len(sites)]
                for offset in range(replication)
            )
            self.place_shard(relation, shard, copies[0], copies[1:])

    def sites_for(self, relation: str, shard: int) -> Tuple[str, ...]:
        """``(primary, replicas...)`` of a shard (``("local",)`` if unplaced)."""
        self.require_scheme(relation)
        return self._sites.get((relation, shard), (LOCAL_SITE,))

    def primary(self, relation: str, shard: int) -> str:
        return self.sites_for(relation, shard)[0]

    def route_read(self, relation: str, shard: int) -> str:
        """Pick the site serving the next read of this shard.

        Deterministic round-robin over the sorted site list (primary and
        replicas are equally readable); each call advances the shard's
        cursor and increments ``distributed.replica_reads{site}``.
        """
        sites = sorted(self.sites_for(relation, shard))
        cursor = self._cursors.get((relation, shard), 0)
        self._cursors[(relation, shard)] = cursor + 1
        site = sites[cursor % len(sites)]
        if obs.enabled():
            obs.metrics().counter(
                "distributed.replica_reads", site=site
            ).inc()
        return site

    # ----------------------------------------------------------------- weights
    def set_shard_weights(
        self,
        relation: str,
        shard: int,
        query: Optional[float] = None,
        update: Optional[float] = None,
        fraction: Optional[float] = None,
    ) -> None:
        """Override one shard's per-shard fq/fu weights and data fraction."""
        scheme = self.require_scheme(relation)
        if not 0 <= shard < scheme.shards:
            raise DistributedError(
                f"shard {shard} out of range for {relation!r}"
            )
        for name, value in (
            ("query", query), ("update", update), ("fraction", fraction)
        ):
            if value is not None and not 0.0 <= value <= 1.0:
                raise DistributedError(
                    f"{name} weight out of range for "
                    f"{relation!r}#{shard}: {value}"
                )
        if query is not None:
            self._query_weights[(relation, shard)] = query
        if update is not None:
            self._update_weights[(relation, shard)] = update
        if fraction is not None:
            self._fractions[(relation, shard)] = fraction

    def query_weight(self, relation: str, shard: int) -> float:
        """P(a query execution touches this shard); 1.0 without pruning."""
        self.require_scheme(relation)
        return self._query_weights.get((relation, shard), 1.0)

    def update_weight(self, relation: str, shard: int) -> float:
        """Fraction of the relation's fu landing on this shard (Σ = 1)."""
        scheme = self.require_scheme(relation)
        return self._update_weights.get(
            (relation, shard), 1.0 / scheme.shards
        )

    def shard_fraction(self, relation: str, shard: int) -> float:
        """Fraction of the relation's rows/blocks held by this shard."""
        scheme = self.require_scheme(relation)
        return self._fractions.get((relation, shard), 1.0 / scheme.shards)

    # ------------------------------------------------------------------ bulk
    @classmethod
    def build(
        cls,
        schemes: Iterable[PartitionScheme],
        topology: Optional[Topology] = None,
        sites: Sequence[str] = (),
        replication: int = 1,
    ) -> "ShardCatalog":
        """Catalog with every scheme added and (optionally) placed."""
        catalog = cls(topology)
        for scheme in schemes:
            catalog.add_scheme(scheme)
        if sites:
            for relation in catalog.relations:
                catalog.assign_shards_round_robin(
                    relation, sites, replication
                )
        return catalog

    def describe(self) -> Mapping[str, object]:
        """A JSON-safe snapshot of schemes and placement."""
        out: Dict[str, object] = {}
        for relation in self.relations:
            scheme = self._schemes[relation]
            out[relation] = {
                "key": scheme.key,
                "kind": scheme.kind,
                "shards": scheme.shards,
                "bounds": list(scheme.bounds),
                "placement": {
                    str(shard): list(self.sites_for(relation, shard))
                    for shard in scheme.all_shards
                },
            }
        return out
