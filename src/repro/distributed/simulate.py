"""End-to-end sharding simulation: pruning, replicas, partition refresh.

The sharded counterpart of :mod:`repro.resilience.simulate`: build a
warehouse, partition its base relations horizontally, and verify the
three contracts the partition layer makes —

* **pruning is sound and pays** — every query served through the pruned
  path returns rows identical to the unpruned baseline, and queries with
  a selective predicate on a partition key read *strictly fewer* blocks;
* **refresh is partition-wise** — after an update batch, only the shards
  the batch actually landed on are stale on co-partitioned views, and a
  refresh touches exactly those;
* **parallel refresh is deterministic** — refreshing with 1, 2 and 4
  workers produces bit-identical view contents, measured I/O and epochs
  (parallelism changes wall-clock, never results).

Everything is seeded and runs on the logical tick clock, so two
invocations with the same arguments produce the same result document.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.algebra import predicates as P
from repro.algebra.expressions import ColumnRef, Comparison, Literal
from repro.algebra.operators import Relation
from repro.distributed.partition import (
    HASH,
    RANGE,
    PartitionScheme,
    range_bounds,
)
from repro.errors import DistributedError
from repro.mvpp.config import DesignConfig
from repro.sql.translator import parse_query
from repro.workload.spec import Workload

__all__ = ["ShardingSimulationResult", "choose_schemes", "simulate_sharding"]


def _json_safe(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, Mapping):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return str(value)


@dataclass(frozen=True)
class ShardingSimulationResult:
    """Outcome of one :func:`simulate_sharding` run."""

    workload: str
    seed: int
    shards: int
    replication: int
    schemes: Tuple[Mapping[str, Any], ...]
    queries: Tuple[Mapping[str, Any], ...]
    rows_identical: bool
    pruning_wins: bool
    selective_queries: int
    refresh_affected_only: bool
    refresh_identical: bool
    refresh_workers: Tuple[int, ...]
    refreshed_shards: Tuple[str, ...]
    stale_after_update: Mapping[str, Tuple[int, ...]] = field(
        default_factory=dict
    )
    replica_reads: Mapping[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Every contract held: sound pruning that pays, partition-wise
        refresh, and worker-count-independent results."""
        return (
            self.rows_identical
            and self.pruning_wins
            and self.selective_queries > 0
            and self.refresh_affected_only
            and self.refresh_identical
        )

    def to_dict(self) -> Dict[str, Any]:
        return _json_safe(
            {
                "workload": self.workload,
                "seed": self.seed,
                "shards": self.shards,
                "replication": self.replication,
                "schemes": list(self.schemes),
                "queries": list(self.queries),
                "rows_identical": self.rows_identical,
                "pruning_wins": self.pruning_wins,
                "selective_queries": self.selective_queries,
                "refresh": {
                    "affected_only": self.refresh_affected_only,
                    "identical_across_workers": self.refresh_identical,
                    "workers": list(self.refresh_workers),
                    "refreshed_shards": list(self.refreshed_shards),
                    "stale_after_update": dict(self.stale_after_update),
                },
                "replica_reads": dict(self.replica_reads),
                "ok": self.ok,
            }
        )


# ---------------------------------------------------------------------------
# Scheme selection
# ---------------------------------------------------------------------------

def choose_schemes(
    workload: Workload,
    rows: Mapping[str, Sequence[Mapping[str, Any]]],
    shards: int,
) -> List[PartitionScheme]:
    """Derive partition schemes from the workload's own predicates.

    For each relation, the partition key is the column its queries
    compare against literals most often — the column pruning can act on.
    Numeric keys get RANGE schemes (bounds from the loaded values, so
    inequalities prune too); everything else hashes.  Relations never
    constrained by a literal predicate stay unpartitioned: sharding them
    could only add routing overhead, never pruning.
    """
    counts: Dict[Tuple[str, str], int] = {}
    for spec in workload.queries:
        plan = parse_query(spec.sql, workload.catalog)
        leaves = [n for n in plan.walk() if isinstance(n, Relation)]
        for node in plan.walk():
            predicate = getattr(node, "predicate", None)
            if predicate is None:
                predicate = getattr(node, "condition", None)
            if predicate is None:
                continue
            for conjunct in P.conjuncts(predicate):
                if not isinstance(conjunct, Comparison):
                    continue
                if not isinstance(conjunct.left, ColumnRef):
                    continue
                if not isinstance(conjunct.right, Literal):
                    continue
                for leaf in leaves:
                    try:
                        resolved = leaf.schema.attribute(conjunct.left.name)
                    except Exception:
                        continue
                    key = (leaf.name, resolved.name)
                    counts[key] = counts.get(key, 0) + 1

    best: Dict[str, Tuple[int, str]] = {}
    for (relation, column), count in counts.items():
        values = [
            _key_value(row, column) for row in rows.get(relation, ())
        ]
        numeric = bool(values) and all(
            isinstance(v, (int, float)) and not isinstance(v, bool)
            for v in values
        )
        # Prefer more-often-constrained keys; break ties toward RANGE-able
        # (numeric) keys, then alphabetically for determinism.
        rank = (count, 1 if numeric else 0, column)
        if relation not in best or rank > (
            best[relation][0],
            1 if _is_numeric(rows, relation, best[relation][1]) else 0,
            best[relation][1],
        ):
            best[relation] = (count, column)

    schemes: List[PartitionScheme] = []
    for relation in sorted(best):
        column = best[relation][1]
        values = [_key_value(row, column) for row in rows.get(relation, ())]
        if values and _is_numeric(rows, relation, column):
            try:
                bounds = range_bounds(values, shards)
                schemes.append(
                    PartitionScheme(
                        relation=relation,
                        key=column,
                        shards=shards,
                        kind=RANGE,
                        bounds=bounds,
                    )
                )
                continue
            except DistributedError:
                pass  # too few distinct values: fall back to hash
        schemes.append(
            PartitionScheme(
                relation=relation, key=column, shards=shards, kind=HASH
            )
        )
    if not schemes:
        raise DistributedError(
            f"workload {workload.name!r} has no literal predicates to "
            "partition on"
        )
    return schemes


def _key_value(row: Mapping[str, Any], column: str) -> Any:
    if column in row:
        return row[column]
    short = column.split(".")[-1]
    return row.get(short)


def _is_numeric(
    rows: Mapping[str, Sequence[Mapping[str, Any]]],
    relation: str,
    column: str,
) -> bool:
    values = [_key_value(row, column) for row in rows.get(relation, ())]
    return bool(values) and all(
        isinstance(v, (int, float)) and not isinstance(v, bool)
        for v in values
    )


# ---------------------------------------------------------------------------
# Simulation
# ---------------------------------------------------------------------------

def _canonical_rows(table) -> Tuple[Tuple[Tuple[str, Any], ...], ...]:
    return tuple(
        sorted(tuple(sorted(row.items())) for row in table.rows())
    )


def _build_warehouse(
    workload: Workload,
    rows: Mapping[str, Sequence[Mapping[str, Any]]],
    schemes: Sequence[PartitionScheme],
    seed: int,
    sites: Tuple[str, ...],
    replication: int,
):
    from repro.warehouse import DataWarehouse

    warehouse = DataWarehouse.from_workload(workload)
    warehouse.design(DesignConfig(seed=seed))
    for relation, relation_rows in rows.items():
        warehouse.load(relation, relation_rows)
    warehouse.enable_sharding(
        schemes, sites=sites, replication=replication
    )
    return warehouse


def _update_batch(
    rows: Mapping[str, Sequence[Mapping[str, Any]]],
    schemes: Sequence[PartitionScheme],
) -> Tuple[str, List[Mapping[str, Any]]]:
    """A deterministic delta that lands on a strict subset of shards.

    Takes the partitioned relation with the most rows and re-inserts the
    rows of its first non-empty shard bucket (capped), so the affected
    shard set is known in advance and smaller than the full shard map.
    """
    target_scheme = max(
        schemes, key=lambda s: (len(rows.get(s.relation, ())), s.relation)
    )
    relation = target_scheme.relation
    buckets = target_scheme.split_rows(rows.get(relation, ()))
    for shard in target_scheme.all_shards:
        if buckets[shard]:
            return relation, list(buckets[shard][:5])
    raise DistributedError(f"no rows to update in {relation!r}")


def simulate_sharding(
    shards: int = 8,
    replication: int = 2,
    seed: int = 0,
    workers: Sequence[int] = (1, 2, 4),
    workload: Optional[Workload] = None,
    rows: Optional[Mapping[str, Sequence[Mapping[str, Any]]]] = None,
    scale: float = 0.02,
) -> ShardingSimulationResult:
    """Run the sharded-warehouse lifecycle and check its contracts.

    Serves every workload query through the pruned and unpruned paths
    (rows must match; selective queries must read strictly fewer
    blocks), applies a shard-local update batch (only co-partitioned
    shards may go stale), and refreshes partition-wise under each worker
    count in ``workers`` on independently-built warehouses (results must
    be bit-identical).
    """
    from repro import obs
    from repro.workload import paper_rows, paper_workload

    if workload is None:
        workload = paper_workload()
    if rows is None:
        rows = paper_rows(scale=scale, seed=seed)
    schemes = choose_schemes(workload, rows, shards)
    sites = tuple(f"site{i}" for i in range(max(2, replication)))

    warehouse = _build_warehouse(
        workload, rows, schemes, seed, sites, replication
    )

    # ------------------------------------------------------- serve: pruning
    query_reports: List[Mapping[str, Any]] = []
    rows_identical = True
    pruning_wins = True
    selective = 0
    for spec in workload.queries:
        pruned = warehouse.serve(spec.name, prune=True)
        unpruned = warehouse.serve(spec.name, prune=False)
        identical = _canonical_rows(pruned.table) == _canonical_rows(
            unpruned.table
        )
        rows_identical &= identical
        is_selective = pruned.partitions_pruned > 0
        if is_selective:
            selective += 1
            pruning_wins &= pruned.io.total < unpruned.io.total
        query_reports.append(
            {
                "query": spec.name,
                "rows": pruned.table.cardinality,
                "io_pruned": pruned.io.total,
                "io_unpruned": unpruned.io.total,
                "partitions_read": {
                    name: list(read)
                    for name, read in pruned.partitions_read.items()
                },
                "partitions_pruned": pruned.partitions_pruned,
                "rows_identical": identical,
            }
        )

    # --------------------------------------------- update: affected shards
    relation, delta = _update_batch(rows, schemes)
    scheme = next(s for s in schemes if s.relation == relation)
    affected = sorted(
        dict.fromkeys(
            scheme.shard_of(scheme.key_value(row)) for row in delta
        )
    )

    def run_refresh(worker_count: int):
        wh = _build_warehouse(
            workload, rows, schemes, seed, sites, replication
        )
        wh.refresh_partitions(workers=worker_count)  # baseline: all fresh
        wh.apply_update(relation, delta, policy="defer")
        stale = {
            view.name: tuple(wh.sharding.stale_shards(view))
            for view in wh.sharding.shardable_views()
        }
        outcomes = wh.refresh_partitions(workers=worker_count)
        fingerprint = {}
        for view in wh.sharding.shardable_views():
            for shard in wh.sharding.schemes[
                wh.sharding.copartition_base(view)
            ].all_shards:
                name = f"{view.name}#{shard}"
                if name in wh.database:
                    fingerprint[name] = _canonical_rows(
                        wh.database.table(name)
                    )
        io = wh.database.io.snapshot()
        return stale, outcomes, fingerprint, (io.reads, io.writes)

    worker_counts = tuple(
        sorted(dict.fromkeys(int(w) for w in workers))
    ) or (1,)
    baseline = None
    refresh_identical = True
    refresh_affected_only = True
    stale_after_update: Dict[str, Tuple[int, ...]] = {}
    refreshed_names: Tuple[str, ...] = ()
    for worker_count in worker_counts:
        stale, outcomes, fingerprint, io = run_refresh(worker_count)
        refreshed = tuple(
            sorted(o.view for o in outcomes if o.status == "refreshed")
        )
        # Co-partitioned views may only have shards from the update's
        # landing set stale; unrelated views must stay fresh.
        for view_name, stale_shards in stale.items():
            if not set(stale_shards) <= set(affected):
                refresh_affected_only = False
        expected = tuple(
            sorted(
                f"{view_name}#{shard}"
                for view_name, stale_shards in stale.items()
                for shard in stale_shards
            )
        )
        if refreshed != expected:
            refresh_affected_only = False
        if baseline is None:
            baseline = (stale, fingerprint, io)
            stale_after_update = stale
            refreshed_names = refreshed
        elif baseline != (stale, fingerprint, io):
            refresh_identical = False

    replica_reads: Dict[str, int] = {}
    if obs.enabled():
        for metric in obs.metrics().snapshot().get("counters", ()):
            if metric.get("name") == "distributed.replica_reads":
                site = metric.get("labels", {}).get("site", "?")
                replica_reads[site] = replica_reads.get(site, 0) + int(
                    metric.get("value", 0)
                )

    return ShardingSimulationResult(
        workload=workload.name,
        seed=seed,
        shards=shards,
        replication=replication,
        schemes=tuple(
            {
                "relation": s.relation,
                "key": s.key,
                "kind": s.kind,
                "shards": s.shards,
            }
            for s in schemes
        ),
        queries=tuple(query_reports),
        rows_identical=rows_identical,
        pruning_wins=pruning_wins,
        selective_queries=selective,
        refresh_affected_only=refresh_affected_only,
        refresh_identical=refresh_identical,
        refresh_workers=worker_counts,
        refreshed_shards=refreshed_names,
        stale_after_update=stale_after_update,
        replica_reads=replica_reads,
    )
