"""Sites and the communication topology.

The paper notes (Section 4.1) that in a distributed warehouse "the cost C
should incorporate the costs of data transferring among different sites".
A :class:`Topology` prices moving blocks between named sites; transfers
within a site are free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Tuple

from repro.errors import DistributedError

#: Blocks-transferred multiplier used when a link has no explicit cost.
DEFAULT_LINK_COST = 2.0


@dataclass(frozen=True)
class Site:
    """A named location holding data (a member database or the warehouse)."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise DistributedError("site name must be non-empty")


class Topology:
    """Symmetric per-block transfer costs between sites."""

    def __init__(
        self,
        sites: Iterable[str],
        default_link_cost: float = DEFAULT_LINK_COST,
    ):
        self._sites: Dict[str, Site] = {name: Site(name) for name in sites}
        if not self._sites:
            raise DistributedError("topology needs at least one site")
        if default_link_cost < 0:
            raise DistributedError("link cost must be >= 0")
        self.default_link_cost = default_link_cost
        self._links: Dict[FrozenSet[str], float] = {}

    @property
    def site_names(self) -> Tuple[str, ...]:
        return tuple(self._sites)

    def __contains__(self, name: str) -> bool:
        return name in self._sites

    def add_site(self, name: str) -> Site:
        if name in self._sites:
            raise DistributedError(f"site {name!r} already exists")
        site = Site(name)
        self._sites[name] = site
        return site

    def set_link(self, a: str, b: str, cost_per_block: float) -> None:
        """Set the symmetric per-block cost between two sites."""
        self._require(a)
        self._require(b)
        if a == b:
            raise DistributedError("cannot set a link from a site to itself")
        if cost_per_block < 0:
            raise DistributedError("link cost must be >= 0")
        self._links[frozenset((a, b))] = cost_per_block

    def link_cost(self, a: str, b: str) -> float:
        """Per-block transfer cost between two sites (0 within a site)."""
        self._require(a)
        self._require(b)
        if a == b:
            return 0.0
        return self._links.get(frozenset((a, b)), self.default_link_cost)

    def transfer_cost(self, source: str, destination: str, blocks: float) -> float:
        """Cost of shipping ``blocks`` blocks from ``source`` to ``destination``."""
        if blocks < 0:
            raise DistributedError(f"negative block count: {blocks}")
        return self.link_cost(source, destination) * blocks

    def with_faults(self, injector) -> "FaultyTopology":
        """This topology behind seeded communication-fault injection.

        Returns a :class:`repro.resilience.faults.FaultyTopology` proxy:
        every cross-site :meth:`transfer_cost` first asks ``injector``
        whether the link is up (raising
        :class:`~repro.errors.CommFault` when it is not).
        """
        from repro.resilience.faults import FaultyTopology

        return FaultyTopology(self, injector)

    def _require(self, name: str) -> None:
        if name not in self._sites:
            raise DistributedError(f"unknown site {name!r}")
