"""Exception hierarchy for the repro library.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch a single base class at an API boundary.  Subsystems raise
the most specific subclass that applies.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class CatalogError(ReproError):
    """Schema or statistics lookup/registration failed."""


class UnknownRelationError(CatalogError):
    """A relation name was not found in the catalog."""

    def __init__(self, name: str):
        super().__init__(f"unknown relation: {name!r}")
        self.name = name


class UnknownAttributeError(CatalogError):
    """An attribute name was not found in a relation schema."""

    def __init__(self, attribute: str, relation: str = ""):
        where = f" in relation {relation!r}" if relation else ""
        super().__init__(f"unknown attribute: {attribute!r}{where}")
        self.attribute = attribute
        self.relation = relation


class DuplicateRelationError(CatalogError):
    """A relation with the same name is already registered."""

    def __init__(self, name: str):
        super().__init__(f"relation already registered: {name!r}")
        self.name = name


class AlgebraError(ReproError):
    """An operator tree or scalar expression is malformed."""


class TypeMismatchError(AlgebraError):
    """Operands of an expression have incompatible types."""


class SQLError(ReproError):
    """Base class for SQL front-end errors."""


class LexerError(SQLError):
    """The SQL text contains a character sequence that is not a token."""

    def __init__(self, message: str, position: int):
        super().__init__(f"{message} (at position {position})")
        self.position = position


class ParseError(SQLError):
    """The SQL token stream does not match the grammar."""


class TranslationError(SQLError):
    """A parsed statement cannot be translated to the algebra."""


class OptimizerError(ReproError):
    """Plan enumeration or cost estimation failed."""


class StorageError(ReproError):
    """Physical storage operation failed."""


class ExecutionError(ReproError):
    """Runtime failure while executing a physical plan."""


class MVPPError(ReproError):
    """The MVPP graph is malformed or an MVPP algorithm precondition failed."""


class CycleError(MVPPError):
    """An operation would introduce a cycle into the MVPP DAG."""


class WarehouseError(ReproError):
    """Data warehouse facade misuse (unknown query, missing data, ...)."""


class DeltaSchemaError(WarehouseError):
    """Delta rows do not match the base relation's schema.

    Raised by the maintenance/update path *before* any row reaches the
    overlay executor, naming exactly which columns are unknown and which
    required attributes are missing, so callers see the bad input —
    not a failure deep inside a delta evaluation.
    """

    def __init__(
        self,
        relation: str,
        unknown: "tuple[str, ...]" = (),
        missing: "tuple[str, ...]" = (),
        row_index: int = 0,
    ):
        parts = []
        if unknown:
            parts.append(f"unknown column(s) {sorted(unknown)}")
        if missing:
            parts.append(f"missing attribute(s) {sorted(missing)}")
        detail = " and ".join(parts) or "schema mismatch"
        super().__init__(
            f"delta row {row_index} for relation {relation!r} has {detail}"
        )
        self.relation = relation
        self.unknown = tuple(sorted(unknown))
        self.missing = tuple(sorted(missing))
        self.row_index = row_index


class StreamingError(ReproError):
    """CDC/streaming-maintenance misuse (bad policy, no capture, ...)."""


class LintError(ReproError):
    """Static analysis failed, or a lint gate found error-severity findings."""


class WorkloadError(ReproError):
    """Workload or data generation parameters are invalid."""


class WorkloadWarning(ReproError, UserWarning):
    """A workload input is suspicious but recoverable (e.g. a frequency
    estimate naming relations the catalog does not know — usually a typo
    in the query log's relation names).

    Derives from both ``ReproError`` (every repro condition is catchable
    with one except clause) and ``UserWarning`` (so ``warnings.warn``
    and ``-W error`` filters treat it as a normal warning category)."""


class AdaptiveError(ReproError):
    """Adaptive-controller misuse (bad policy knobs, no design, ...)."""


class DistributedError(ReproError):
    """Site topology or placement constraint violated."""


class ResilienceError(ReproError):
    """Fault-injection or refresh-scheduling misuse (bad rates, ...)."""


class InjectedFault(ResilienceError):
    """A fault deliberately injected by the resilience test harness.

    Carries the fault ``kind`` (``"storage"`` / ``"comm"``) and the
    ``target`` it fired on (a relation or site name) so retry loops and
    tests can assert on exactly what failed.
    """

    def __init__(self, kind: str, target: str, operation: str = ""):
        what = f" during {operation}" if operation else ""
        super().__init__(f"injected {kind} fault on {target!r}{what}")
        self.kind = kind
        self.target = target
        self.operation = operation


class StorageFault(InjectedFault):
    """Injected failure at the storage-I/O boundary (block read/write)."""

    def __init__(self, target: str, operation: str = ""):
        super().__init__("storage", target, operation)


class CommFault(InjectedFault):
    """Injected failure at the site-communication boundary."""

    def __init__(self, target: str, operation: str = ""):
        super().__init__("comm", target, operation)


class RefreshTimeout(ResilienceError):
    """A view refresh attempt exceeded the scheduler's timeout budget."""


class CircuitOpenError(ResilienceError):
    """An operation was rejected because the view's circuit breaker is open."""
