"""Execution engine: physical operators with measured block I/O."""

from repro.executor.engine import (
    HASH,
    INDEX_NESTED_LOOP,
    NESTED_LOOP,
    SORT_MERGE,
    Database,
    ExecutionEngine,
    load_database,
)
from repro.executor.indexes import IndexManager, index_nested_loop_join
from repro.executor.iterators import (
    aggregate_table,
    sort_merge_join,
    hash_join,
    linear_select,
    materialize_table,
    nested_loop_join,
    project_table,
)

__all__ = [
    "Database",
    "ExecutionEngine",
    "HASH",
    "INDEX_NESTED_LOOP",
    "IndexManager",
    "NESTED_LOOP",
    "SORT_MERGE",
    "index_nested_loop_join",
    "sort_merge_join",
    "aggregate_table",
    "hash_join",
    "linear_select",
    "load_database",
    "materialize_table",
    "nested_loop_join",
    "project_table",
]
