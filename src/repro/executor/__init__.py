"""Execution engine: logical plans lowered to physical operators.

Two layers make up the public executor API (see ``docs/api.md`` for the
stability contract):

* the **engine** (:class:`ExecutionEngine`, :class:`Database`) with its
  engine selector (:data:`VECTORIZED` / :data:`REFERENCE`) and join
  methods, and
* the **physical operator protocol**
  (:class:`~repro.executor.physical.PhysicalOperator` and its concrete
  operators, :class:`~repro.executor.batch.Batch`,
  :class:`~repro.executor.physical.PhysicalPlanner`,
  :class:`~repro.executor.physical.BuildSideCache`).

The free functions re-exported from :mod:`repro.executor.iterators`
(``linear_select`` et al.) are deprecated shims kept for one release.
"""

from repro.executor.batch import Batch, DEFAULT_BATCH_SIZE
from repro.executor.engine import (
    ENGINES,
    HASH,
    INDEX_NESTED_LOOP,
    JOIN_METHODS,
    NESTED_LOOP,
    REFERENCE,
    SORT_MERGE,
    VECTORIZED,
    Database,
    ExecutionEngine,
    load_database,
)
from repro.executor.indexes import IndexManager, index_nested_loop_join
from repro.executor.iterators import (
    aggregate_table,
    sort_merge_join,
    hash_join,
    linear_select,
    materialize_table,
    nested_loop_join,
    project_table,
)
from repro.executor.physical import (
    BuildSideCache,
    ExecutionContext,
    Filter,
    HashAggregate,
    HashJoin,
    IndexNestedLoopJoin,
    LimitOperator,
    MergeJoin,
    NestedLoopJoin,
    PhysicalOperator,
    PhysicalPlanner,
    Projection,
    Scan,
    SortOperator,
    charge_materialize,
    execute_operator,
    scan_of,
)

__all__ = [
    "Batch",
    "BuildSideCache",
    "DEFAULT_BATCH_SIZE",
    "Database",
    "ENGINES",
    "ExecutionContext",
    "ExecutionEngine",
    "Filter",
    "HASH",
    "HashAggregate",
    "HashJoin",
    "INDEX_NESTED_LOOP",
    "IndexManager",
    "IndexNestedLoopJoin",
    "JOIN_METHODS",
    "LimitOperator",
    "MergeJoin",
    "NESTED_LOOP",
    "NestedLoopJoin",
    "PhysicalOperator",
    "PhysicalPlanner",
    "Projection",
    "REFERENCE",
    "SORT_MERGE",
    "Scan",
    "SortOperator",
    "VECTORIZED",
    "charge_materialize",
    "execute_operator",
    "index_nested_loop_join",
    "scan_of",
    "sort_merge_join",
    "aggregate_table",
    "hash_join",
    "linear_select",
    "load_database",
    "materialize_table",
    "nested_loop_join",
    "project_table",
]
