"""Columnar batches and vectorized expression compilation.

This module is the data plane of the vectorized executor
(:mod:`repro.executor.physical`).  A :class:`Batch` is a fixed-size
columnar chunk — one Python list per attribute, aligned by row
position, with the producing operator's schema carried along — and the
unit :meth:`PhysicalOperator.batches` yields.

The compilers translate :mod:`repro.algebra.expressions` trees into
closures over column vectors:

* :func:`compile_mask` — a selection predicate over one input becomes
  ``fn(columns, n) -> mask`` where the mask holds SQL three-valued
  results (``True`` / ``False`` / ``None``) per row, exactly matching
  ``Expression.evaluate`` on the corresponding row dict.
* :func:`compile_pair` — a join condition becomes a scalar
  ``fn(left_row, right_row) -> value`` over *tuples* (one value per
  attribute), with column references resolved against the merged-dict
  semantics of the row engine (``{**outer_row, **inner_row}``: inner
  keys shadow outer keys, and short-name fallback searches the merged
  key set).

Both compilers return ``None`` for anything they cannot translate
(an unknown node type, or a column reference the row engine would
resolve dynamically per row); callers then fall back to row-at-a-time
``evaluate`` so behaviour — including raised errors — is unchanged.
"""

from __future__ import annotations

import operator as _operator
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.algebra.expressions import (
    And,
    ColumnRef,
    Comparison,
    Expression,
    Literal,
    Not,
    Or,
)

__all__ = [
    "Batch",
    "DEFAULT_BATCH_SIZE",
    "compile_mask",
    "compile_pair",
    "iter_batches",
    "resolve_column",
    "resolve_merged_column",
]

#: Rows per batch unless the engine overrides it.
DEFAULT_BATCH_SIZE = 1024

_COMPARISON_OPS = {
    "=": _operator.eq,
    "!=": _operator.ne,
    "<": _operator.lt,
    "<=": _operator.le,
    ">": _operator.gt,
    ">=": _operator.ge,
}

#: ``fn(columns, n) -> vector`` — a compiled columnwise expression.
MaskFn = Callable[[Sequence[List[Any]], int], List[Any]]
#: ``fn(left_row, right_row) -> value`` — a compiled pairwise expression.
PairFn = Callable[[Tuple[Any, ...], Tuple[Any, ...]], Any]


class Batch:
    """One columnar chunk of an operator's output.

    ``columns`` holds one list per schema attribute, all of length
    ``length``; ``None`` marks SQL NULL.  Batches are read-only by
    convention — operators build fresh column lists rather than mutate
    a batch they were handed.
    """

    __slots__ = ("schema", "columns", "length")

    def __init__(self, schema, columns: Sequence[List[Any]], length: int):
        self.schema = schema
        self.columns = tuple(columns)
        self.length = length

    def column(self, name: str) -> List[Any]:
        """The column for attribute ``name`` (resolved like the schema)."""
        return self.columns[self.schema.index_of(name)]

    def rows(self):
        """Row dicts (for tests and debugging — operators stay columnar)."""
        names = self.schema.attribute_names
        for values in zip(*self.columns) if self.columns else ():
            yield dict(zip(names, values))

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:
        return f"Batch({self.schema.name}, rows={self.length})"


def iter_batches(schema, columns: Sequence[List[Any]], length: int, batch_size: int):
    """Slice full columns into :class:`Batch` chunks of ``batch_size``."""
    if batch_size < 1:
        raise ValueError(f"batch size must be >= 1: {batch_size}")
    for start in range(0, length, batch_size):
        stop = min(start + batch_size, length)
        yield Batch(
            schema,
            [column[start:stop] for column in columns],
            stop - start,
        )


# --------------------------------------------------------------- resolution
def resolve_column(name: str, names: Sequence[str]) -> Optional[int]:
    """Index of ``name`` in ``names`` under row-dict lookup semantics.

    Mirrors :meth:`ColumnRef.evaluate`: exact key first, then a unique
    short-name suffix match.  Returns ``None`` when the reference would
    not resolve (ambiguous or missing) — the caller falls back to
    row-wise evaluation so the row engine's error surfaces unchanged.
    """
    for index, key in enumerate(names):
        if key == name:
            return index
    short = name.rsplit(".", 1)[-1]
    matches = [
        index
        for index, key in enumerate(names)
        if key.rsplit(".", 1)[-1] == short
    ]
    if len(matches) == 1:
        return matches[0]
    return None


def resolve_merged_column(
    name: str, left_names: Sequence[str], right_names: Sequence[str]
) -> Optional[Tuple[int, int]]:
    """Resolve ``name`` against ``{**left_row, **right_row}`` semantics.

    Returns ``(side, index)`` with side 0 = left, 1 = right.  A key
    present on both sides resolves to the right (the inner row's value
    shadows the outer's in the merged dict); the short-name fallback
    requires uniqueness across the merged key *set*, exactly like
    :meth:`ColumnRef.evaluate` over the merged row.
    """
    if name in right_names:
        return (1, list(right_names).index(name))
    if name in left_names:
        return (0, list(left_names).index(name))
    left_set = set(left_names)
    merged = list(left_names) + [k for k in right_names if k not in left_set]
    short = name.rsplit(".", 1)[-1]
    matches = [k for k in merged if k.rsplit(".", 1)[-1] == short]
    if len(matches) != 1:
        return None
    key = matches[0]
    if key in right_names:
        return (1, list(right_names).index(key))
    return (0, list(left_names).index(key))


# ----------------------------------------------------------- 3VL combiners
def _and3(values: Tuple[Any, ...]) -> Optional[bool]:
    saw_null = False
    for value in values:
        if value is None:
            saw_null = True
        elif not value:
            return False
    return None if saw_null else True


def _or3(values: Tuple[Any, ...]) -> Optional[bool]:
    saw_null = False
    for value in values:
        if value is None:
            saw_null = True
        elif value:
            return True
    return None if saw_null else False


# ------------------------------------------------------------ mask compiler
def compile_mask(expr: Optional[Expression], names: Sequence[str]) -> Optional[MaskFn]:
    """Compile ``expr`` to a columnwise kernel over columns named ``names``.

    The returned function maps (columns, row count) to a per-row vector
    of ``expr.evaluate`` results.  ``None`` means the expression (or a
    sub-expression) is not vectorizable; the caller must evaluate row
    dicts instead.
    """
    if expr is None:
        return None
    names = tuple(names)

    if isinstance(expr, Literal):
        value = expr.value
        return lambda cols, n: [value] * n

    if isinstance(expr, ColumnRef):
        index = resolve_column(expr.name, names)
        if index is None:
            return None
        return lambda cols, n: cols[index]

    if isinstance(expr, Comparison):
        op = _COMPARISON_OPS[expr.op]
        left, right = expr.left, expr.right
        if isinstance(left, ColumnRef) and isinstance(right, Literal):
            index = resolve_column(left.name, names)
            if index is None:
                return None
            value = right.value
            if value is None:
                return lambda cols, n: [None] * n
            return lambda cols, n: [
                None if item is None else op(item, value)
                for item in cols[index]
            ]
        if isinstance(left, ColumnRef) and isinstance(right, ColumnRef):
            li = resolve_column(left.name, names)
            ri = resolve_column(right.name, names)
            if li is None or ri is None:
                return None
            return lambda cols, n: [
                None if (a is None or b is None) else op(a, b)
                for a, b in zip(cols[li], cols[ri])
            ]
        left_fn = compile_mask(left, names)
        right_fn = compile_mask(right, names)
        if left_fn is None or right_fn is None:
            return None
        return lambda cols, n: [
            None if (a is None or b is None) else op(a, b)
            for a, b in zip(left_fn(cols, n), right_fn(cols, n))
        ]

    if isinstance(expr, (And, Or)):
        combine = _and3 if isinstance(expr, And) else _or3
        child_fns = [compile_mask(child, names) for child in expr.children]
        if any(fn is None for fn in child_fns):
            return None
        return lambda cols, n: [
            combine(values)
            for values in zip(*[fn(cols, n) for fn in child_fns])
        ]

    if isinstance(expr, Not):
        child_fn = compile_mask(expr.operand, names)
        if child_fn is None:
            return None
        return lambda cols, n: [
            None if value is None else (not value)
            for value in child_fn(cols, n)
        ]

    return None


# ------------------------------------------------------------ pair compiler
def compile_pair(
    expr: Optional[Expression],
    left_names: Sequence[str],
    right_names: Sequence[str],
) -> Optional[PairFn]:
    """Compile a join condition to a scalar kernel over row tuples.

    The returned ``fn(left_row, right_row)`` equals
    ``expr.evaluate({**left_row_dict, **right_row_dict})`` for rows
    given as value tuples in schema order.  ``None`` means fall back to
    merged-dict evaluation.
    """
    if expr is None:
        return None

    if isinstance(expr, Literal):
        value = expr.value
        return lambda lrow, rrow: value

    if isinstance(expr, ColumnRef):
        resolved = resolve_merged_column(expr.name, left_names, right_names)
        if resolved is None:
            return None
        side, index = resolved
        if side == 1:
            return lambda lrow, rrow: rrow[index]
        return lambda lrow, rrow: lrow[index]

    if isinstance(expr, Comparison):
        op = _COMPARISON_OPS[expr.op]
        left_fn = compile_pair(expr.left, left_names, right_names)
        right_fn = compile_pair(expr.right, left_names, right_names)
        if left_fn is None or right_fn is None:
            return None

        def comparison(lrow, rrow, op=op, lf=left_fn, rf=right_fn):
            a = lf(lrow, rrow)
            b = rf(lrow, rrow)
            if a is None or b is None:
                return None
            return op(a, b)

        return comparison

    if isinstance(expr, (And, Or)):
        combine = _and3 if isinstance(expr, And) else _or3
        child_fns = [
            compile_pair(child, left_names, right_names)
            for child in expr.children
        ]
        if any(fn is None for fn in child_fns):
            return None
        return lambda lrow, rrow: combine(
            tuple(fn(lrow, rrow) for fn in child_fns)
        )

    if isinstance(expr, Not):
        child_fn = compile_pair(expr.operand, left_names, right_names)
        if child_fn is None:
            return None

        def negation(lrow, rrow, fn=child_fn):
            value = fn(lrow, rrow)
            if value is None:
                return None
            return not value

        return negation

    return None
