"""Plan execution over a database of in-memory tables.

The :class:`ExecutionEngine` walks a logical operator tree and runs the
matching physical operators; the join implementation (nested-loop, per
the paper, or hash) is selected per engine.  All operators share the
database's :class:`IOCounter`, so a single query's measured block I/O is
directly comparable with the cost model's prediction.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Tuple

from repro import obs
from repro.algebra import predicates as P
from repro.algebra.operators import (
    Aggregate,
    Join,
    Limit,
    Operator,
    Project,
    Relation,
    Select,
    Sort,
)
from repro.errors import ExecutionError
from repro.storage.block import IOCounter, IOSnapshot
from repro.storage.table import DEFAULT_BLOCKING_FACTOR, Table
from repro.executor.iterators import (
    aggregate_table,
    hash_join,
    linear_select,
    nested_loop_join,
    project_table,
)

#: Join strategies the engine supports.
NESTED_LOOP = "nested-loop"
HASH = "hash"
INDEX_NESTED_LOOP = "index-nested-loop"
SORT_MERGE = "sort-merge"


class Database:
    """A named collection of tables sharing one I/O counter.

    When a :class:`repro.resilience.faults.FaultInjector` is attached
    (``fault_injector``), :meth:`table` hands out fault-injecting
    proxies sharing the stored rows, so seeded storage failures fire at
    the same boundary real I/O errors would.
    """

    def __init__(self) -> None:
        self.io = IOCounter()
        self._tables: Dict[str, Table] = {}
        self.fault_injector = None

    def register(self, name: str, table: Table) -> Table:
        """Register ``table`` under ``name``, adopting the shared counter."""
        table.io = self.io
        self._tables[name] = table
        return table

    def table(self, name: str) -> Table:
        try:
            table = self._tables[name]
        except KeyError:
            raise ExecutionError(f"no table named {name!r} is loaded") from None
        if self.fault_injector is not None:
            from repro.resilience.faults import FaultyTable

            return FaultyTable(table, name, self.fault_injector)
        return table

    def drop(self, name: str) -> None:
        self._tables.pop(name, None)

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    @property
    def table_names(self) -> Tuple[str, ...]:
        return tuple(self._tables)


class ExecutionEngine:
    """Executes logical plans against a :class:`Database`."""

    def __init__(self, database: Database, join_method: str = NESTED_LOOP):
        if join_method not in (NESTED_LOOP, HASH, INDEX_NESTED_LOOP, SORT_MERGE):
            raise ExecutionError(f"unknown join method {join_method!r}")
        self.database = database
        self.join_method = join_method
        from repro.executor.indexes import IndexManager

        self.indexes = IndexManager()

    def execute(self, plan: Operator) -> Table:
        """Run ``plan`` and return its result table (I/O is accumulated)."""
        if not obs.enabled():
            return self._execute(plan)
        before = self.database.io.snapshot()
        result = self._execute(plan)
        registry = obs.metrics()
        operator = type(plan).__name__.lower()
        registry.counter(
            "executor.rows_produced", operator=operator
        ).inc(result.cardinality)
        # Inclusive per-operator block I/O (children included) — the
        # measured side of the calibration layer's operator breakdown.
        registry.histogram("executor.operator_io", operator=operator).observe(
            float(self.database.io.since(before).total)
        )
        return result

    def _execute(self, plan: Operator) -> Table:
        if isinstance(plan, Relation):
            table = self.database.table(plan.name)
            self._check_schema(plan, table)
            return table
        if isinstance(plan, Select):
            return linear_select(self.execute(plan.child), plan.predicate)
        if isinstance(plan, Project):
            return project_table(self.execute(plan.child), plan.attributes, plan.distinct)
        if isinstance(plan, Join):
            return self._execute_join(plan)
        if isinstance(plan, Aggregate):
            return aggregate_table(
                self.execute(plan.child), plan.group_by, plan.aggregates, plan.schema
            )
        if isinstance(plan, Sort):
            from repro.executor.iterators import sort_table

            return sort_table(self.execute(plan.child), plan.keys)
        if isinstance(plan, Limit):
            from repro.executor.iterators import limit_table

            return limit_table(self.execute(plan.child), plan.count)
        raise ExecutionError(f"cannot execute operator {type(plan).__name__}")

    def run(self, plan: Operator) -> Tuple[Table, IOSnapshot]:
        """Execute ``plan`` and return (result, I/O consumed by this run)."""
        with obs.span(
            "execution.query", join_method=self.join_method
        ) as span:
            before = self.database.io.snapshot()
            result = self.execute(plan)
            io = self.database.io.since(before)
            span.set(
                blocks_read=io.reads,
                blocks_written=io.writes,
                rows=result.cardinality,
            )
            if obs.enabled():
                registry = obs.metrics()
                registry.counter("executor.blocks_read").inc(io.reads)
                registry.counter("executor.blocks_written").inc(io.writes)
                registry.histogram("executor.query_io").observe(io.total)
        return result, io

    # ------------------------------------------------------------------ join
    def _execute_join(self, plan: Join) -> Table:
        outer = self.execute(plan.left)
        inner = self.execute(plan.right)
        if self.join_method == NESTED_LOOP:
            return nested_loop_join(outer, inner, plan.condition)
        equi, residual = self._split_condition(plan)
        if not equi:
            return nested_loop_join(outer, inner, plan.condition)
        if self.join_method == SORT_MERGE:
            from repro.executor.iterators import sort_merge_join

            return sort_merge_join(outer, inner, equi, residual)
        if self.join_method == INDEX_NESTED_LOOP and isinstance(
            plan.right, Relation
        ):
            # Probe an index on the stored inner relation — the paper's
            # "establish a proper index on it afterwards" for
            # materialized views (Section 3.2).  Multi-key conditions
            # probe on the first key and filter the rest.
            from repro.executor.indexes import index_nested_loop_join
            from repro.algebra import predicates as P
            from repro.algebra.expressions import column, compare

            first, rest = equi[0], equi[1:]
            leftover = P.conjunction(
                [residual]
                + [compare(column(a), "=", column(b)) for a, b in rest]
            )
            index = self.indexes.ensure(plan.right.name, inner, first[1])
            return index_nested_loop_join(outer, index, first, leftover)
        return hash_join(outer, inner, equi, residual)

    def _split_condition(self, plan: Join):
        equi = []
        residual_parts = []
        outer_columns = set(plan.left.schema.attribute_names)
        for conjunct in P.conjuncts(plan.condition):
            if P.is_join_predicate(conjunct):
                left_name = conjunct.left.name  # type: ignore[union-attr]
                right_name = conjunct.right.name  # type: ignore[union-attr]
                if left_name in outer_columns:
                    equi.append((left_name, right_name))
                    continue
                if right_name in outer_columns:
                    equi.append((right_name, left_name))
                    continue
            residual_parts.append(conjunct)
        return equi, P.conjunction(residual_parts)

    @staticmethod
    def _check_schema(plan: Relation, table: Table) -> None:
        expected = set(plan.schema.attribute_names)
        actual = set(table.schema.attribute_names)
        if not expected <= actual:
            raise ExecutionError(
                f"table {plan.name!r} is missing attributes "
                f"{sorted(expected - actual)}"
            )


def load_database(
    tables: Mapping[str, Iterable[Mapping[str, object]]],
    catalog,
    blocking_factors: Optional[Mapping[str, float]] = None,
) -> Database:
    """Build a :class:`Database` from raw rows.

    ``tables`` maps relation names to row iterables with *short* column
    names; schemas come from ``catalog`` and are qualified so plans can
    reference ``Relation.attr`` columns.
    """
    database = Database()
    for name, rows in tables.items():
        schema = catalog.schema(name).qualify()
        factor = DEFAULT_BLOCKING_FACTOR
        if blocking_factors and name in blocking_factors:
            factor = blocking_factors[name]
        table = Table(schema, factor)
        for row in rows:
            table.insert(row)
        database.register(name, table)
    return database
