"""Plan execution over a database of in-memory tables.

The :class:`ExecutionEngine` runs logical operator trees through one of
two execution engines sharing a single semantics:

* ``vectorized`` (the default) — :class:`~repro.executor.physical.PhysicalPlanner`
  lowers the logical plan to a physical operator tree once per execute,
  then drives it columnar batch-at-a-time over
  :class:`~repro.storage.columnar.ColumnView` chunks.  Hash-join build
  sides are reused across refreshes through the engine's
  :class:`~repro.executor.physical.BuildSideCache`.
* ``reference`` — the original row-at-a-time operators
  (:mod:`repro.executor.iterators`), kept as the behavioural oracle the
  equivalence suite checks the vectorized engine against.

Both engines produce bit-identical rows and charge identical block I/O
to the same counters, so a query's measured I/O is directly comparable
with the cost model's prediction regardless of engine.  The join
implementation (nested-loop, per the paper, or hash / sort-merge /
index-nested-loop) is selected per engine instance.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Tuple

from repro import obs
from repro.algebra.operators import (
    Aggregate,
    Join,
    Limit,
    Operator,
    Project,
    Relation,
    Select,
    Sort,
)
from repro.errors import ExecutionError
from repro.storage.block import IOCounter, IOSnapshot
from repro.storage.table import DEFAULT_BLOCKING_FACTOR, Table
from repro.executor.physical import (
    HASH,
    INDEX_NESTED_LOOP,
    NESTED_LOOP,
    SORT_MERGE,
    BuildSideCache,
    ExecutionContext,
    PhysicalOperator,
    PhysicalPlanner,
    materialize,
    table_from_columns,
)
from repro.executor.batch import DEFAULT_BATCH_SIZE

#: Execution engines.
VECTORIZED = "vectorized"
REFERENCE = "reference"

JOIN_METHODS = (NESTED_LOOP, HASH, INDEX_NESTED_LOOP, SORT_MERGE)
ENGINES = (VECTORIZED, REFERENCE)


class Database:
    """A named collection of tables sharing one I/O counter.

    When a :class:`repro.resilience.faults.FaultInjector` is attached
    (``fault_injector``), :meth:`table` hands out fault-injecting
    proxies sharing the stored rows, so seeded storage failures fire at
    the same boundary real I/O errors would.

    Every registration or drop bumps the relation's *version*
    (:meth:`version`) — the freshness epoch build-side and cost caches
    key their validity on.
    """

    def __init__(self) -> None:
        self.io = IOCounter()
        self._tables: Dict[str, Table] = {}
        self._versions: Dict[str, int] = {}
        self.fault_injector = None
        #: Optional :class:`repro.cdc.changelog.ChangeLogSet` capturing
        #: writes on registered base relations; :meth:`register` notifies
        #: it so hooks survive table replacement (a reload registers a
        #: brand-new Table object).
        self.change_capture = None

    def register(self, name: str, table: Table) -> Table:
        """Register ``table`` under ``name``, adopting the shared counter."""
        table.io = self.io
        self._tables[name] = table
        self._versions[name] = self._versions.get(name, 0) + 1
        if self.change_capture is not None:
            self.change_capture.on_register(name, table)
        return table

    def table(self, name: str) -> Table:
        try:
            table = self._tables[name]
        except KeyError:
            raise ExecutionError(f"no table named {name!r} is loaded") from None
        if self.fault_injector is not None:
            from repro.resilience.faults import FaultyTable

            return FaultyTable(table, name, self.fault_injector)
        return table

    def drop(self, name: str) -> None:
        if self._tables.pop(name, None) is not None:
            self._versions[name] = self._versions.get(name, 0) + 1

    def version(self, name: str) -> int:
        """Monotonic registration epoch for ``name`` (0 = never seen)."""
        return self._versions.get(name, 0)

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    @property
    def table_names(self) -> Tuple[str, ...]:
        return tuple(self._tables)


class ExecutionEngine:
    """Executes logical plans against a :class:`Database`."""

    def __init__(
        self,
        database: Database,
        join_method: str = NESTED_LOOP,
        engine: str = VECTORIZED,
        batch_size: int = DEFAULT_BATCH_SIZE,
        lint: bool = False,
    ):
        if join_method not in JOIN_METHODS:
            raise ExecutionError(f"unknown join method {join_method!r}")
        if engine not in ENGINES:
            raise ExecutionError(f"unknown execution engine {engine!r}")
        if batch_size < 1:
            raise ExecutionError(f"batch size must be >= 1: {batch_size}")
        self.database = database
        self.join_method = join_method
        self.engine = engine
        self.batch_size = batch_size
        #: When set (``DesignConfig.lint``), every lowering runs the plan
        #: verifier and error-severity findings raise ``LintError``.
        self.lint = lint
        self.build_cache = BuildSideCache()
        from repro.executor.indexes import IndexManager

        self.indexes = IndexManager()

    # ------------------------------------------------------------ public API
    def execute(self, plan: Operator, *, engine: Optional[str] = None) -> Table:
        """Run ``plan`` and return its result table (I/O is accumulated).

        ``engine`` overrides the engine chosen at construction for this
        one call — the hook the equivalence suite and ``--engine`` CLI
        flag use.
        """
        if self._resolve_engine(engine) == REFERENCE:
            if self.lint:
                # The reference path never lowers, so it verifies the
                # logical plan directly (P001-P007; P008 is a lowering
                # property and does not apply).
                from repro.lint.plans import verify_plan

                report = verify_plan(plan, name=plan.schema.name)
                report.publish()
                report.raise_on_errors()
            return self._reference_execute(plan)
        return self._vectorized_execute(plan)

    def run(
        self, plan: Operator, *, engine: Optional[str] = None
    ) -> Tuple[Table, IOSnapshot]:
        """Execute ``plan`` and return (result, I/O consumed by this run)."""
        with obs.span(
            "execution.query", join_method=self.join_method
        ) as span:
            before = self.database.io.snapshot()
            result = self.execute(plan, engine=engine)
            io = self.database.io.since(before)
            span.set(
                blocks_read=io.reads,
                blocks_written=io.writes,
                rows=result.cardinality,
            )
            if obs.enabled():
                registry = obs.metrics()
                registry.counter("executor.blocks_read").inc(io.reads)
                registry.counter("executor.blocks_written").inc(io.writes)
                registry.histogram("executor.query_io").observe(io.total)
        return result, io

    def explain(self, plan: Operator, *, engine: Optional[str] = None) -> str:
        """The plan as the chosen engine would run it.

        The vectorized engine shows the *physical* operator tree
        (lowered without requiring tables to be loaded); the reference
        engine shows the logical tree it walks directly.  Plan-verifier
        findings (rules P001-P008) are appended as ``plan diagnostics``
        lines — explain reports problems instead of raising on them.
        """
        from repro.lint.plans import verify_lowering, verify_plan

        if self._resolve_engine(engine) == REFERENCE:
            text = plan.describe()
            report = verify_plan(plan, name=plan.schema.name)
        else:
            root = self.physical_plan(plan, require_tables=False, lint=False)
            text = root.describe()
            report = verify_lowering(plan, root, name=plan.schema.name)
        if report.diagnostics:
            lines = [d.render() for d in report.sorted()]
            text += "\nplan diagnostics:\n" + "\n".join(
                f"  {line}" for line in lines
            )
        return text

    def physical_plan(
        self,
        plan: Operator,
        require_tables: bool = True,
        lint: Optional[bool] = None,
    ) -> PhysicalOperator:
        """Lower ``plan`` to this engine's physical operator tree.

        ``lint`` overrides the engine-level flag for this one lowering
        (``explain`` lowers with linting off and reports findings
        instead of raising).
        """
        planner = PhysicalPlanner(
            self.database,
            self.join_method,
            require_tables=require_tables,
            lint=self.lint if lint is None else lint,
        )
        return planner.lower(plan)

    def _resolve_engine(self, engine: Optional[str]) -> str:
        if engine is None:
            return self.engine
        if engine not in ENGINES:
            raise ExecutionError(f"unknown execution engine {engine!r}")
        return engine

    # ------------------------------------------------------------ vectorized
    def _vectorized_execute(self, plan: Operator) -> Table:
        recording = obs.enabled()
        if isinstance(plan, Relation):
            table = self.database.table(plan.name)
            self._check_schema(plan, table)
            self._record_root(plan, table.cardinality, 0.0, recording)
            return table
        before = self.database.io.snapshot() if recording else None
        root = self.physical_plan(plan)
        ctx = ExecutionContext(
            io=self.database.io,
            batch_size=self.batch_size,
            cache=(
                self.build_cache
                if self.database.fault_injector is None
                else None
            ),
            database=self.database,
            indexes=self.indexes,
            record=recording,
        )
        columns, length = materialize(root, ctx)
        result = table_from_columns(
            root.schema, root.blocking_factor, columns, length, self.database.io
        )
        if before is not None:
            self._record_root(
                plan,
                result.cardinality,
                float(self.database.io.since(before).total),
                recording,
            )
        return result

    @staticmethod
    def _record_root(
        plan: Operator, rows: int, io_total: float, recording: bool
    ) -> None:
        if not recording:
            return
        registry = obs.metrics()
        operator = type(plan).__name__.lower()
        registry.counter("executor.rows_produced", operator=operator).inc(rows)
        registry.histogram("executor.operator_io", operator=operator).observe(
            io_total
        )

    # ------------------------------------------------------------- reference
    def _reference_execute(self, plan: Operator) -> Table:
        """The row-at-a-time oracle path (per-node obs, like always)."""
        if not obs.enabled():
            return self._reference_node(plan)
        before = self.database.io.snapshot()
        result = self._reference_node(plan)
        registry = obs.metrics()
        operator = type(plan).__name__.lower()
        registry.counter(
            "executor.rows_produced", operator=operator
        ).inc(result.cardinality)
        # Inclusive per-operator block I/O (children included) — the
        # measured side of the calibration layer's operator breakdown.
        registry.histogram("executor.operator_io", operator=operator).observe(
            float(self.database.io.since(before).total)
        )
        return result

    def _reference_node(self, plan: Operator) -> Table:
        from repro.executor.iterators import (
            _aggregate_table,
            _limit_table,
            _linear_select,
            _project_table,
            _sort_table,
        )

        if isinstance(plan, Relation):
            table = self.database.table(plan.name)
            self._check_schema(plan, table)
            return table
        if isinstance(plan, Select):
            return _linear_select(
                self._reference_execute(plan.child), plan.predicate
            )
        if isinstance(plan, Project):
            return _project_table(
                self._reference_execute(plan.child),
                plan.attributes,
                plan.distinct,
            )
        if isinstance(plan, Join):
            return self._reference_join(plan)
        if isinstance(plan, Aggregate):
            return _aggregate_table(
                self._reference_execute(plan.child),
                plan.group_by,
                plan.aggregates,
                plan.schema,
            )
        if isinstance(plan, Sort):
            return _sort_table(self._reference_execute(plan.child), plan.keys)
        if isinstance(plan, Limit):
            return _limit_table(self._reference_execute(plan.child), plan.count)
        raise ExecutionError(f"cannot execute operator {type(plan).__name__}")

    def _reference_join(self, plan: Join) -> Table:
        from repro.executor.iterators import (
            _hash_join,
            _nested_loop_join,
            _sort_merge_join,
        )

        outer = self._reference_execute(plan.left)
        inner = self._reference_execute(plan.right)
        if self.join_method == NESTED_LOOP:
            return _nested_loop_join(outer, inner, plan.condition)
        equi, residual = self._split_condition(plan)
        if not equi:
            return _nested_loop_join(outer, inner, plan.condition)
        if self.join_method == SORT_MERGE:
            return _sort_merge_join(outer, inner, equi, residual)
        if self.join_method == INDEX_NESTED_LOOP and isinstance(
            plan.right, Relation
        ):
            # Probe an index on the stored inner relation — the paper's
            # "establish a proper index on it afterwards" for
            # materialized views (Section 3.2).  Multi-key conditions
            # probe on the first key and filter the rest.
            from repro.executor.indexes import index_nested_loop_join
            from repro.algebra import predicates as P
            from repro.algebra.expressions import column, compare

            first, rest = equi[0], equi[1:]
            leftover = P.conjunction(
                [residual]
                + [compare(column(a), "=", column(b)) for a, b in rest]
            )
            index = self.indexes.ensure(plan.right.name, inner, first[1])
            return index_nested_loop_join(outer, index, first, leftover)
        return _hash_join(outer, inner, equi, residual)

    @staticmethod
    def _split_condition(plan: Join):
        from repro.executor.physical import split_join_condition

        return split_join_condition(plan)

    @staticmethod
    def _check_schema(plan: Relation, table: Table) -> None:
        expected = set(plan.schema.attribute_names)
        actual = set(table.schema.attribute_names)
        if not expected <= actual:
            raise ExecutionError(
                f"table {plan.name!r} is missing attributes "
                f"{sorted(expected - actual)}"
            )


def load_database(
    tables: Mapping[str, Iterable[Mapping[str, object]]],
    catalog,
    blocking_factors: Optional[Mapping[str, float]] = None,
) -> Database:
    """Build a :class:`Database` from raw rows.

    ``tables`` maps relation names to row iterables with *short* column
    names; schemas come from ``catalog`` and are qualified so plans can
    reference ``Relation.attr`` columns.
    """
    database = Database()
    for name, rows in tables.items():
        schema = catalog.schema(name).qualify()
        factor = DEFAULT_BLOCKING_FACTOR
        if blocking_factors and name in blocking_factors:
            factor = blocking_factors[name]
        table = Table(schema, factor)
        for row in rows:
            table.insert(row)
        database.register(name, table)
    return database
