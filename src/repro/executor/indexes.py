"""Index management and index-nested-loop join.

Paper Section 3.2 argues that, unlike generic multiple-query-processing
temporaries, a *materialized* intermediate result can always be indexed
afterwards, "therefore it is guaranteed that there is a performance gain
if an intermediate result is materialized".  This module makes that claim
executable: an :class:`IndexManager` maintains hash indexes over stored
tables, and :func:`index_nested_loop_join` probes an index instead of
rescanning the inner relation for every outer block.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.algebra.expressions import Expression
from repro.errors import ExecutionError
from repro.storage.index import HashIndex
from repro.storage.table import Table
from repro.executor.iterators import _joined_blocking_factor


class IndexManager:
    """Hash indexes over named tables, rebuilt on demand.

    Keys are ``(table name, attribute)``.  The manager tracks the table
    cardinality at build time so a changed table is re-indexed lazily.
    """

    def __init__(self) -> None:
        self._indexes: Dict[Tuple[str, str], Tuple[HashIndex, int]] = {}

    def ensure(self, name: str, table: Table, attribute: str) -> HashIndex:
        """Return a fresh index on ``table.attribute`` (build if needed)."""
        resolved = table.schema.attribute(attribute).name
        key = (name, resolved)
        cached = self._indexes.get(key)
        if cached is not None:
            index, built_at = cached
            if built_at == table.cardinality and index.table is table:
                return index
        index = HashIndex(table, resolved)
        # Building costs one pass over the table.
        table.io.read_blocks(table.num_blocks)
        self._indexes[key] = (index, table.cardinality)
        return index

    def invalidate(self, name: str) -> None:
        """Drop all indexes of a table (after updates)."""
        for key in [k for k in self._indexes if k[0] == name]:
            del self._indexes[key]

    def __len__(self) -> int:
        return len(self._indexes)


def index_nested_loop_join(
    outer: Table,
    index: HashIndex,
    equi_pair: Tuple[str, str],
    residual: Optional[Expression] = None,
) -> Table:
    """Join ``outer`` against an indexed inner table.

    Reads ``B(outer)`` blocks plus, per outer row, the index probe and
    the matching inner blocks — the access pattern that makes indexed
    materialized views profitable even for selective probes.
    """
    outer_key, inner_key = equi_pair
    inner = index.table
    if index.attribute != inner.schema.attribute(inner_key).name:
        raise ExecutionError(
            f"index is on {index.attribute!r}, join needs {inner_key!r}"
        )
    schema = outer.schema.join(inner.schema)
    out = Table(schema, _joined_blocking_factor(outer, inner), io=outer.io)
    resolved_outer = outer.schema.attribute(outer_key).name
    for row in outer.scan(count_io=True):
        for match in index.lookup(row[resolved_outer]):
            merged = {**row, **match}
            if residual is None or residual.evaluate(merged):
                out.insert(merged)
    return out
