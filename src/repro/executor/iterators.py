"""Row-at-a-time operators over block-structured tables (deprecated API).

.. deprecated::
    The free functions in this module are superseded by the physical
    operator classes in :mod:`repro.executor.physical` — construct a
    :class:`~repro.executor.physical.PhysicalOperator` tree (usually via
    :class:`~repro.executor.physical.PhysicalPlanner`) and drive it with
    :func:`~repro.executor.physical.execute_operator`.  The public names
    here are thin shims that emit :class:`DeprecationWarning` and
    delegate to the physical layer; they will be removed in a future
    release.  See ``docs/api.md`` for the stability contract.

The private ``_``-prefixed implementations remain the row-at-a-time
*reference engine*: each consumes input
:class:`~repro.storage.table.Table` objects, charges the *same*
block-I/O pattern the analytical cost model assumes (linear-scan
selection, block nested-loop join, ...), and produces a new table.
``ExecutionEngine.execute(plan, engine="reference")`` runs them, and the
equivalence suite checks the vectorized engine against them —
see ``tests/executor/test_vectorized_equivalence.py``.
"""

from __future__ import annotations

import warnings
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.algebra.expressions import Expression
from repro.algebra.operators import AggregateFunction, AggregateSpec
from repro.catalog.schema import RelationSchema
from repro.errors import ExecutionError
from repro.storage.block import IOCounter
from repro.storage.table import Table

__all__ = [
    "aggregate_table",
    "hash_join",
    "limit_table",
    "linear_select",
    "materialize_table",
    "nested_loop_join",
    "project_table",
    "sort_merge_join",
    "sort_table",
]


def _warn_deprecated(name: str, replacement: str) -> None:
    warnings.warn(
        f"repro.executor.iterators.{name}() is deprecated; use "
        f"repro.executor.physical.{replacement} instead",
        DeprecationWarning,
        stacklevel=3,
    )


# --------------------------------------------------------- deprecated shims
def linear_select(source: Table, predicate: Expression) -> Table:
    """σ via linear scan. Deprecated shim over :class:`physical.Filter`."""
    _warn_deprecated("linear_select", "Filter")
    from repro.executor import physical

    op = physical.Filter(physical.scan_of(source), predicate)
    return physical.execute_operator(op, io=source.io)


def project_table(
    source: Table, attributes: Sequence[str], distinct: bool = False
) -> Table:
    """π. Deprecated shim over :class:`physical.Projection`."""
    _warn_deprecated("project_table", "Projection")
    from repro.executor import physical

    op = physical.Projection(physical.scan_of(source), attributes, distinct)
    return physical.execute_operator(op, io=source.io)


def nested_loop_join(
    outer: Table,
    inner: Table,
    condition: Optional[Expression],
) -> Table:
    """Block nested-loop join. Deprecated shim over
    :class:`physical.NestedLoopJoin`."""
    _warn_deprecated("nested_loop_join", "NestedLoopJoin")
    from repro.executor import physical

    op = physical.NestedLoopJoin(
        physical.scan_of(outer), physical.scan_of(inner), condition
    )
    return physical.execute_operator(op, io=outer.io)


def hash_join(
    outer: Table,
    inner: Table,
    equi_pairs: Sequence[Tuple[str, str]],
    residual: Optional[Expression] = None,
) -> Table:
    """In-memory hash join. Deprecated shim over :class:`physical.HashJoin`."""
    _warn_deprecated("hash_join", "HashJoin")
    from repro.executor import physical

    op = physical.HashJoin(
        physical.scan_of(outer), physical.scan_of(inner), equi_pairs, residual
    )
    return physical.execute_operator(op, io=outer.io)


def sort_merge_join(
    outer: Table,
    inner: Table,
    equi_pairs: Sequence[Tuple[str, str]],
    residual: Optional[Expression] = None,
) -> Table:
    """Sort-merge join. Deprecated shim over :class:`physical.MergeJoin`."""
    _warn_deprecated("sort_merge_join", "MergeJoin")
    from repro.executor import physical

    op = physical.MergeJoin(
        physical.scan_of(outer), physical.scan_of(inner), equi_pairs, residual
    )
    return physical.execute_operator(op, io=outer.io)


def aggregate_table(
    source: Table,
    group_by: Sequence[str],
    specs: Sequence[AggregateSpec],
    output_schema: RelationSchema,
) -> Table:
    """γ. Deprecated shim over :class:`physical.HashAggregate`."""
    _warn_deprecated("aggregate_table", "HashAggregate")
    from repro.executor import physical

    op = physical.HashAggregate(
        physical.scan_of(source), group_by, specs, output_schema
    )
    return physical.execute_operator(op, io=source.io)


def sort_table(source: Table, keys: Sequence[Tuple[str, bool]]) -> Table:
    """τ (ORDER BY). Deprecated shim over :class:`physical.SortOperator`."""
    _warn_deprecated("sort_table", "SortOperator")
    from repro.executor import physical

    op = physical.SortOperator(physical.scan_of(source), keys)
    return physical.execute_operator(op, io=source.io)


def limit_table(source: Table, count: int) -> Table:
    """LIMIT. Deprecated shim over :class:`physical.LimitOperator`."""
    _warn_deprecated("limit_table", "LimitOperator")
    from repro.executor import physical

    op = physical.LimitOperator(physical.scan_of(source), count)
    return physical.execute_operator(op, io=source.io)


def materialize_table(result: Table) -> Table:
    """Charge materialization writes. Deprecated shim over
    :func:`physical.charge_materialize`."""
    _warn_deprecated("materialize_table", "charge_materialize")
    from repro.executor.physical import charge_materialize

    return charge_materialize(result)


# ------------------------------------------------- reference implementations
def _linear_select(source: Table, predicate: Expression) -> Table:
    """σ via linear scan: reads every block of ``source``."""
    out = Table(source.schema, source.blocking_factor, io=source.io)
    for row in source.scan(count_io=True):
        if predicate.evaluate(row):
            out.insert(row)
    return out


def _project_table(
    source: Table, attributes: Sequence[str], distinct: bool = False
) -> Table:
    """π: one pass; output packs more rows per block.

    Bag semantics by default; with ``distinct=True`` duplicate output
    tuples are eliminated (hash-set dedup, first occurrence wins).
    """
    resolved = [source.schema.attribute(a).name for a in attributes]
    schema = source.schema.project(resolved)
    fraction = len(resolved) / max(1, source.schema.arity)
    blocking_factor = source.blocking_factor / max(fraction, 1e-9)
    out = Table(schema, blocking_factor, io=source.io)
    seen: set = set()
    for row in source.scan(count_io=True):
        projected = {name: row[name] for name in resolved}
        if distinct:
            key = tuple(projected[name] for name in resolved)
            if key in seen:
                continue
            seen.add(key)
        out.insert(projected)
    return out


def _nested_loop_join(
    outer: Table,
    inner: Table,
    condition: Optional[Expression],
) -> Table:
    """Block nested-loop join: ``B(outer) + B(outer)·B(inner)`` reads.

    For every outer block the inner relation is rescanned, exactly as the
    paper's cost formula assumes.
    """
    schema = outer.schema.join(inner.schema)
    blocking_factor = _joined_blocking_factor(outer, inner)
    out = Table(schema, blocking_factor, io=outer.io)
    outer.io.read_blocks(outer.num_blocks)
    outer.io.read_blocks(outer.num_blocks * inner.num_blocks)
    inner_rows = inner.rows()
    for outer_row in outer.rows():
        for inner_row in inner_rows:
            merged = {**outer_row, **inner_row}
            if condition is None or condition.evaluate(merged):
                out.insert(merged)
    return out


def _hash_join(
    outer: Table,
    inner: Table,
    equi_pairs: Sequence[Tuple[str, str]],
    residual: Optional[Expression] = None,
) -> Table:
    """In-memory hash join: one pass over each input.

    ``equi_pairs`` holds (outer column, inner column) join keys; any
    ``residual`` predicate is applied to surviving pairs.
    """
    if not equi_pairs:
        raise ExecutionError("hash join requires at least one equi-join pair")
    schema = outer.schema.join(inner.schema)
    blocking_factor = _joined_blocking_factor(outer, inner)
    out = Table(schema, blocking_factor, io=outer.io)

    inner_keys = [inner.schema.attribute(b).name for _, b in equi_pairs]
    outer_keys = [outer.schema.attribute(a).name for a, _ in equi_pairs]
    buckets: Dict[Tuple[Any, ...], List[Dict[str, Any]]] = {}
    for row in inner.scan(count_io=True):
        key = tuple(row[k] for k in inner_keys)
        buckets.setdefault(key, []).append(row)
    for row in outer.scan(count_io=True):
        key = tuple(row[k] for k in outer_keys)
        for match in buckets.get(key, ()):
            merged = {**row, **match}
            if residual is None or residual.evaluate(merged):
                out.insert(merged)
    return out


def _sort_merge_join(
    outer: Table,
    inner: Table,
    equi_pairs: Sequence[Tuple[str, str]],
    residual: Optional[Expression] = None,
) -> Table:
    """Sort-merge join on one or more equi-join keys.

    Charges one read pass plus ``B·⌈log2 B⌉`` sort I/O per input (external
    merge sort accounting, matching
    :class:`repro.optimizer.cost_model.SortMergeCostModel`), then merges
    the sorted runs.  Rows with NULL join keys never match.
    """
    import math

    if not equi_pairs:
        raise ExecutionError("sort-merge join requires at least one equi-join pair")
    outer_keys = [outer.schema.attribute(a).name for a, _ in equi_pairs]
    inner_keys = [inner.schema.attribute(b).name for _, b in equi_pairs]

    def charge_sort(table: Table) -> None:
        blocks = table.num_blocks
        table.io.read_blocks(blocks)
        if blocks > 1:
            table.io.read_blocks(int(blocks * math.ceil(math.log2(blocks))))

    charge_sort(outer)
    charge_sort(inner)

    def sortable(rows, keys):
        return sorted(
            (r for r in rows if all(r[k] is not None for k in keys)),
            key=lambda r: tuple(r[k] for k in keys),
        )

    left_rows = sortable(outer.rows(), outer_keys)
    right_rows = sortable(inner.rows(), inner_keys)

    schema = outer.schema.join(inner.schema)
    out = Table(schema, _joined_blocking_factor(outer, inner), io=outer.io)
    i = j = 0
    while i < len(left_rows) and j < len(right_rows):
        left_key = tuple(left_rows[i][k] for k in outer_keys)
        right_key = tuple(right_rows[j][k] for k in inner_keys)
        if left_key < right_key:
            i += 1
        elif left_key > right_key:
            j += 1
        else:
            # Emit the cross product of the two equal-key runs.
            run_start = j
            while (
                j < len(right_rows)
                and tuple(right_rows[j][k] for k in inner_keys) == left_key
            ):
                j += 1
            run_end = j
            while (
                i < len(left_rows)
                and tuple(left_rows[i][k] for k in outer_keys) == left_key
            ):
                for index in range(run_start, run_end):
                    merged = {**left_rows[i], **right_rows[index]}
                    if residual is None or residual.evaluate(merged):
                        out.insert(merged)
                i += 1
    return out


def _aggregate_table(
    source: Table,
    group_by: Sequence[str],
    specs: Sequence[AggregateSpec],
    output_schema: RelationSchema,
) -> Table:
    """γ: hash aggregation in one pass over the input."""
    keys = [source.schema.attribute(k).name for k in group_by]
    groups: Dict[Tuple[Any, ...], List[Dict[str, Any]]] = {}
    for row in source.scan(count_io=True):
        group_key = tuple(row[k] for k in keys)
        groups.setdefault(group_key, []).append(row)
    if not groups and not keys:
        groups[()] = []  # global aggregate over an empty input

    out = Table(output_schema, source.blocking_factor, io=source.io)
    for group_key, rows in groups.items():
        result: Dict[str, Any] = dict(zip(keys, group_key))
        for spec in specs:
            result[spec.alias] = _evaluate_aggregate(spec, rows)
        out.insert(result)
    return out


def _sort_table(source: Table, keys: Sequence[Tuple[str, bool]]) -> Table:
    """τ (ORDER BY): external-sort I/O accounting, stable in-memory sort.

    Mixed ascending/descending keys are handled by repeated stable sorts
    from the least-significant key outward.  NULLs order first on
    ascending keys (and last on descending), matching most engines'
    NULLS FIRST default.
    """
    resolved = [
        (source.schema.attribute(name).name, bool(ascending))
        for name, ascending in keys
    ]
    import math

    blocks = source.num_blocks
    source.io.read_blocks(blocks)
    if blocks > 1:
        source.io.read_blocks(int(blocks * math.ceil(math.log2(blocks))))

    rows = source.rows()
    for name, ascending in reversed(resolved):
        rows.sort(
            key=lambda r, n=name: (r[n] is not None, r[n])
            if r[n] is not None
            else (False, 0),
            reverse=not ascending,
        )
    out = Table(source.schema, source.blocking_factor, io=source.io)
    for row in rows:
        out.insert(row)
    return out


def _limit_table(source: Table, count: int) -> Table:
    """LIMIT: read only the blocks holding the first ``count`` rows."""
    from repro.storage.block import block_count

    needed_blocks = block_count(min(count, source.cardinality), source.blocking_factor)
    source.io.read_blocks(needed_blocks)
    out = Table(source.schema, source.blocking_factor, io=source.io)
    for row in source.rows()[:count]:
        out.insert(row)
    return out


def _materialize_table(result: Table) -> Table:
    """Charge the block writes of storing ``result`` persistently."""
    result.io.write_blocks(result.num_blocks)
    return result


def _evaluate_aggregate(spec: AggregateSpec, rows: List[Dict[str, Any]]) -> Any:
    if spec.function is AggregateFunction.COUNT:
        if spec.attribute is None:
            return len(rows)
        return sum(1 for r in rows if r[spec.attribute] is not None)
    values = [r[spec.attribute] for r in rows if r[spec.attribute] is not None]
    if not values:
        return None
    if spec.function is AggregateFunction.SUM:
        return float(sum(values))
    if spec.function is AggregateFunction.AVG:
        return float(sum(values)) / len(values)
    if spec.function is AggregateFunction.MIN:
        return min(values)
    if spec.function is AggregateFunction.MAX:
        return max(values)
    raise ExecutionError(f"unsupported aggregate {spec.function}")


def _joined_blocking_factor(outer: Table, inner: Table) -> float:
    """Joined rows are wider: records-per-block combine harmonically."""
    from repro.executor.physical import joined_blocking_factor

    return joined_blocking_factor(outer.blocking_factor, inner.blocking_factor)
