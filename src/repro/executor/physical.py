"""The physical operator layer of the vectorized executor.

Logical plans (:mod:`repro.algebra.operators`) describe *what* relation
to compute; the classes here describe *how*.  A
:class:`PhysicalOperator` tree is produced by :class:`PhysicalPlanner`
(one lowering per execute — schemas, blocking factors, join splits and
compiled predicate kernels are all resolved once per plan, not once per
operator invocation), then driven by
:meth:`repro.executor.engine.ExecutionEngine.execute`.

Operators are columnar internally: each ``_compute`` materializes its
full output as column lists, mirroring the row engine's
materialize-every-operator execution model so block I/O accounting is
*identical*.  The public :meth:`PhysicalOperator.batches` protocol
slices that output into fixed-size :class:`~repro.executor.batch.Batch`
chunks.

Equivalence contract (enforced by
``tests/executor/test_vectorized_equivalence.py``): every operator
produces bit-identical rows, in the same order where the row engine
defines one, and charges the same reads/writes to the same
:class:`~repro.storage.block.IOCounter` in the same sequence — so
seeded fault injection (:mod:`repro.resilience.faults`) draws the exact
same decision stream under either engine.
"""

from __future__ import annotations

import math
from itertools import compress
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.algebra import operators as L
from repro.algebra import predicates as P
from repro.algebra.expressions import Expression, column, compare
from repro.errors import ExecutionError, StorageError
from repro.executor.batch import (
    DEFAULT_BATCH_SIZE,
    compile_mask,
    compile_pair,
    iter_batches,
)
from repro.storage.block import block_count
from repro.storage.table import DEFAULT_BLOCKING_FACTOR, Table

__all__ = [
    "ExecutionContext",
    "PhysicalOperator",
    "Scan",
    "Filter",
    "Projection",
    "NestedLoopJoin",
    "HashJoin",
    "MergeJoin",
    "IndexNestedLoopJoin",
    "HashAggregate",
    "SortOperator",
    "LimitOperator",
    "BuildSideCache",
    "PhysicalPlanner",
    "charge_materialize",
    "execute_operator",
    "joined_blocking_factor",
    "scan_of",
]


def joined_blocking_factor(outer_bf: float, inner_bf: float) -> float:
    """Joined rows are wider: records-per-block combine harmonically."""
    bf_outer = max(outer_bf, 1e-9)
    bf_inner = max(inner_bf, 1e-9)
    return 1.0 / (1.0 / bf_outer + 1.0 / bf_inner)


class ExecutionContext:
    """Per-execute state threaded through an operator tree.

    ``io`` is the counter explicit charges go to (the database's shared
    counter in engine runs); scans of stored tables always charge the
    *table's* counter, exactly like the row operators.  ``cache`` is the
    engine's :class:`BuildSideCache` (``None`` disables reuse, e.g.
    under fault injection, where skipping a build would desynchronize
    the seeded fault stream).
    """

    __slots__ = ("io", "batch_size", "cache", "database", "indexes", "record")

    def __init__(
        self,
        io,
        batch_size: int = DEFAULT_BATCH_SIZE,
        cache: Optional["BuildSideCache"] = None,
        database=None,
        indexes=None,
        record: bool = False,
    ):
        self.io = io
        self.batch_size = batch_size
        self.cache = cache
        self.database = database
        self.indexes = indexes
        self.record = record


class PhysicalOperator:
    """Base class: a node of the physical plan.

    Subclasses implement ``_compute(ctx) -> (columns, row_count)``;
    :meth:`batches` wraps that into the chunked protocol.  ``schema``
    and ``blocking_factor`` are fixed at plan time.
    """

    name = "physical"
    __slots__ = ("schema", "blocking_factor", "children")

    def __init__(self, schema, blocking_factor: float, children: Tuple["PhysicalOperator", ...]):
        self.schema = schema
        self.blocking_factor = blocking_factor
        self.children = children

    def _compute(self, ctx: ExecutionContext) -> Tuple[List[List[Any]], int]:
        raise NotImplementedError

    def batches(self, ctx: ExecutionContext):
        """Yield the operator's output as fixed-size columnar batches."""
        columns, length = materialize(self, ctx)
        yield from iter_batches(self.schema, columns, length, ctx.batch_size)

    @property
    def label(self) -> str:
        return self.name

    def describe(self, indent: int = 0) -> str:
        """Indented multi-line rendering of the physical subtree."""
        lines = ["  " * indent + self.label]
        for child in self.children:
            lines.append(child.describe(indent + 1))
        return "\n".join(lines)

    def walk(self):
        """Post-order traversal (children before parents)."""
        for child in self.children:
            yield from child.walk()
        yield self


def materialize(op: PhysicalOperator, ctx: ExecutionContext) -> Tuple[List[List[Any]], int]:
    """Run ``op`` fully, recording per-operator metrics when enabled."""
    if not ctx.record:
        return op._compute(ctx)
    before = ctx.io.snapshot()
    columns, length = op._compute(ctx)
    registry = obs.metrics()
    registry.counter("executor.rows_produced", operator=op.name).inc(length)
    registry.counter("executor.batches_produced", operator=op.name).inc(
        -(-length // ctx.batch_size) if length else 0
    )
    registry.histogram("executor.operator_io", operator=op.name).observe(
        float(ctx.io.since(before).total)
    )
    return columns, length


class _Prepared:
    """A child readied for consumption: materialized now, charged later.

    The row operators execute subtrees first and charge input reads at
    their own boundary (e.g. nested-loop charges ``B + B·B`` *after*
    both inputs exist).  ``_prepare`` mirrors the subtree execution,
    ``_finish_scan`` / ``_finish_rows`` mirror the charge, preserving
    both the I/O totals and the fault-injection draw order.
    """

    __slots__ = ("op", "columns", "length")

    def __init__(self, op, columns, length):
        self.op = op
        self.columns = columns
        self.length = length


def _prepare(op: PhysicalOperator, ctx: ExecutionContext) -> _Prepared:
    if isinstance(op, Scan):
        return _Prepared(op, None, op.require_table().cardinality)
    columns, length = materialize(op, ctx)
    return _Prepared(op, columns, length)


def _blocks(prep: _Prepared) -> int:
    if isinstance(prep.op, Scan):
        return prep.op.require_table().num_blocks
    return block_count(prep.length, prep.op.blocking_factor)


def _finish_scan(prep: _Prepared, ctx: ExecutionContext):
    """Consume like ``table.scan(count_io=True)`` would."""
    if isinstance(prep.op, Scan):
        return prep.op.touch_scan(ctx)
    ctx.io.read_blocks(block_count(prep.length, prep.op.blocking_factor))
    return prep.columns, prep.length


def _finish_rows(prep: _Prepared, ctx: ExecutionContext):
    """Consume like ``table.rows()`` would (no read charge)."""
    if isinstance(prep.op, Scan):
        return prep.op.touch_rows(ctx)
    return prep.columns, prep.length


def _charge_io(prep: _Prepared, ctx: ExecutionContext):
    """The counter explicit charges for this input go to."""
    if isinstance(prep.op, Scan):
        return prep.op.require_table().io
    return ctx.io


# ------------------------------------------------------------------- leaves
class Scan(PhysicalOperator):
    """Leaf: a stored table (base relation or materialized view).

    The table handle is bound at plan time (a fault-injecting proxy
    when the database has an injector attached); the consuming operator
    decides *how* it is touched — ``touch_scan`` reproduces a counted
    ``scan()`` (one fault draw plus a full read charge), ``touch_rows``
    reproduces ``rows()`` (one fault draw, no charge).  Plain tables
    skip the proxy ceremony and charge directly.
    """

    name = "scan"
    __slots__ = ("relation_name", "table")

    def __init__(
        self,
        relation_name: str,
        table: Optional[Table] = None,
        schema=None,
        blocking_factor: Optional[float] = None,
    ):
        if table is not None:
            schema = table.schema
            blocking_factor = table.blocking_factor
        elif schema is None:
            raise ExecutionError(
                f"unbound scan of {relation_name!r} needs an explicit schema"
            )
        super().__init__(
            schema,
            blocking_factor if blocking_factor is not None else DEFAULT_BLOCKING_FACTOR,
            (),
        )
        self.relation_name = relation_name
        self.table = table

    def require_table(self) -> Table:
        if self.table is None:
            raise ExecutionError(
                f"scan of {self.relation_name!r} is not bound to a table"
            )
        return self.table

    def _columns(self) -> List[List[Any]]:
        view = self.require_table().column_view()
        return [view.column(name) for name in self.schema.attribute_names]

    def touch_scan(self, ctx: ExecutionContext):
        table = self.require_table()
        if type(table) is Table:
            table.io.read_blocks(table.num_blocks)
        else:
            # Proxy: let scan() draw its fault decision and charge.
            iterator = table.scan(count_io=True)
            next(iterator, None)
            iterator.close()
        return self._columns(), table.cardinality

    def touch_rows(self, ctx: ExecutionContext):
        table = self.require_table()
        if type(table) is not Table:
            table.rows()  # fault draw; the copy itself is discarded
        return self._columns(), table.cardinality

    def _compute(self, ctx: ExecutionContext):
        return self.touch_scan(ctx)

    @property
    def label(self) -> str:
        if self.table is None:
            return f"Scan[{self.relation_name}] (unbound)"
        return (
            f"Scan[{self.relation_name}] "
            f"(rows={self.table.cardinality}, bf={self.blocking_factor:g})"
        )


# -------------------------------------------------------------- unary nodes
class Filter(PhysicalOperator):
    """σ via linear scan, evaluated as a columnwise 3VL mask."""

    name = "filter"
    __slots__ = ("predicate", "_mask_fn", "_names")

    def __init__(self, child: PhysicalOperator, predicate: Expression):
        super().__init__(child.schema, child.blocking_factor, (child,))
        self.predicate = predicate
        self._names = child.schema.attribute_names
        self._mask_fn = compile_mask(predicate, self._names)

    def _compute(self, ctx: ExecutionContext):
        columns, length = _finish_scan(_prepare(self.children[0], ctx), ctx)
        if self._mask_fn is not None:
            mask = self._mask_fn(columns, length)
        else:
            names = self._names
            evaluate = self.predicate.evaluate
            mask = [
                evaluate(dict(zip(names, values)))
                for values in zip(*columns)
            ]
        out = [list(compress(col, mask)) for col in columns]
        kept = len(out[0]) if out else 0
        return out, kept

    @property
    def label(self) -> str:
        vectorized = "vectorized" if self._mask_fn is not None else "row-fallback"
        return f"Filter[{L._pretty(self.predicate)}] ({vectorized})"


class Projection(PhysicalOperator):
    """π: column picking; DISTINCT dedups on the projected tuple."""

    name = "project"
    __slots__ = ("attributes", "distinct", "_indices")

    def __init__(
        self,
        child: PhysicalOperator,
        attributes: Sequence[str],
        distinct: bool = False,
    ):
        resolved = [child.schema.attribute(a).name for a in attributes]
        schema = child.schema.project(resolved)
        fraction = len(resolved) / max(1, child.schema.arity)
        blocking_factor = child.blocking_factor / max(fraction, 1e-9)
        super().__init__(schema, blocking_factor, (child,))
        self.attributes = tuple(resolved)
        self.distinct = bool(distinct)
        names = child.schema.attribute_names
        self._indices = [names.index(name) for name in resolved]

    def _compute(self, ctx: ExecutionContext):
        columns, length = _finish_scan(_prepare(self.children[0], ctx), ctx)
        picked = [columns[i] for i in self._indices]
        if not self.distinct:
            return picked, length
        seen = set()
        keep = []
        for position, key in enumerate(zip(*picked)):
            if key not in seen:
                seen.add(key)
                keep.append(position)
        return [[col[i] for i in keep] for col in picked], len(keep)

    @property
    def label(self) -> str:
        tag = "Project DISTINCT" if self.distinct else "Project"
        return f"{tag}[{', '.join(self.attributes)}]"


# -------------------------------------------------------------------- joins
def _merged_mapping(out_schema, left_names, right_names):
    """(side, index) source of each output attribute.

    Replicates inserting the merged row dict ``{**outer, **inner}``
    into a table with the joined schema: exact name first, then short
    name, with inner-side keys shadowing outer-side duplicates.
    """
    merged: Dict[str, Tuple[int, int]] = {}
    for index, key in enumerate(left_names):
        merged[key] = (0, index)
    for index, key in enumerate(right_names):
        merged[key] = (1, index)
    mapping = []
    for attribute in out_schema:
        source = merged.get(attribute.name)
        if source is None:
            source = merged.get(attribute.short_name)
        if source is None:
            raise StorageError(
                f"row missing attribute {attribute.name!r}: {sorted(merged)}"
            )
        mapping.append(source)
    return mapping


def _gather(mapping, outer_columns, inner_columns, outer_pos, inner_pos):
    """Build output columns from matched (outer, inner) position lists."""
    out = []
    for side, index in mapping:
        source = outer_columns[index] if side == 0 else inner_columns[index]
        positions = outer_pos if side == 0 else inner_pos
        out.append([source[p] for p in positions])
    return out


class _JoinBase(PhysicalOperator):
    """Shared state of the binary join operators."""

    __slots__ = ("_lnames", "_rnames", "_mapping")

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator):
        schema = left.schema.join(right.schema)
        blocking_factor = joined_blocking_factor(
            left.blocking_factor, right.blocking_factor
        )
        super().__init__(schema, blocking_factor, (left, right))
        self._lnames = left.schema.attribute_names
        self._rnames = right.schema.attribute_names
        self._mapping = _merged_mapping(schema, self._lnames, self._rnames)

    @property
    def left(self) -> PhysicalOperator:
        return self.children[0]

    @property
    def right(self) -> PhysicalOperator:
        return self.children[1]

    def _pair_truthy_rowwise(self, expr, ocols, icols, candidates):
        """Filter (i, j) candidates by merged-dict row evaluation."""
        lnames, rnames = self._lnames, self._rnames
        inner_dicts: Dict[int, Dict[str, Any]] = {}
        outer_dicts: Dict[int, Dict[str, Any]] = {}
        out = []
        for i, j in candidates:
            odict = outer_dicts.get(i)
            if odict is None:
                odict = dict(zip(lnames, (col[i] for col in ocols)))
                outer_dicts[i] = odict
            idict = inner_dicts.get(j)
            if idict is None:
                idict = dict(zip(rnames, (col[j] for col in icols)))
                inner_dicts[j] = idict
            if expr.evaluate({**odict, **idict}):
                out.append((i, j))
        return out


class NestedLoopJoin(_JoinBase):
    """Block nested-loop join: ``B(outer) + B(outer)·B(inner)`` reads.

    The I/O model is the paper's rescan-per-outer-block formula; the
    *evaluation* is hash-accelerated when the condition contains
    vectorizable equi-conjuncts, which provably preserves the full
    nested-loop output (pairs pruned by the hash buckets are exactly
    those where an equi-conjunct is false or NULL, making the whole
    conjunction falsy).  Output order stays outer-major.
    """

    name = "nested-loop-join"
    __slots__ = ("condition", "_accel_pairs", "_residual", "_residual_fn", "_pair_fn")

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        condition: Optional[Expression],
    ):
        super().__init__(left, right)
        self.condition = condition
        self._accel_pairs: List[Tuple[int, int]] = []
        self._residual: Optional[Expression] = None
        self._residual_fn = None
        self._pair_fn = None
        if condition is None:
            return
        self._pair_fn = compile_pair(condition, self._lnames, self._rnames)
        pairs, residual = self._split_equi(condition)
        if pairs:
            residual_fn = (
                compile_pair(residual, self._lnames, self._rnames)
                if residual is not None
                else None
            )
            # Accelerate only when the residual is fully compiled (or
            # absent) so row-engine error behaviour can never diverge.
            if residual is None or residual_fn is not None:
                self._accel_pairs = pairs
                self._residual = residual
                self._residual_fn = residual_fn

    def _split_equi(self, condition):
        from repro.executor.batch import resolve_merged_column

        pairs: List[Tuple[int, int]] = []
        residual_parts: List[Expression] = []
        for conjunct in P.conjuncts(condition):
            if P.is_join_predicate(conjunct):
                left_ref = resolve_merged_column(
                    conjunct.left.name, self._lnames, self._rnames
                )
                right_ref = resolve_merged_column(
                    conjunct.right.name, self._lnames, self._rnames
                )
                if (
                    left_ref is not None
                    and right_ref is not None
                    and left_ref[0] != right_ref[0]
                ):
                    if left_ref[0] == 0:
                        pairs.append((left_ref[1], right_ref[1]))
                    else:
                        pairs.append((right_ref[1], left_ref[1]))
                    continue
            residual_parts.append(conjunct)
        return pairs, P.conjunction(residual_parts)

    def _compute(self, ctx: ExecutionContext):
        left_prep = _prepare(self.left, ctx)
        right_prep = _prepare(self.right, ctx)
        outer_blocks = _blocks(left_prep)
        inner_blocks = _blocks(right_prep)
        ctx.io.read_blocks(outer_blocks)
        ctx.io.read_blocks(outer_blocks * inner_blocks)
        icols, i_n = _finish_rows(right_prep, ctx)
        ocols, o_n = _finish_rows(left_prep, ctx)

        outer_pos: List[int] = []
        inner_pos: List[int] = []
        if self.condition is None:
            inner_range = list(range(i_n))
            for i in range(o_n):
                outer_pos.extend([i] * i_n)
                inner_pos.extend(inner_range)
        elif self._accel_pairs:
            self._probe_buckets(ocols, o_n, icols, i_n, outer_pos, inner_pos)
        else:
            self._full_loop(ocols, o_n, icols, i_n, outer_pos, inner_pos)
        return (
            _gather(self._mapping, ocols, icols, outer_pos, inner_pos),
            len(outer_pos),
        )

    def _probe_buckets(self, ocols, o_n, icols, i_n, outer_pos, inner_pos):
        ikey_cols = [icols[j] for _, j in self._accel_pairs]
        okey_cols = [ocols[i] for i, _ in self._accel_pairs]
        buckets: Dict[Tuple[Any, ...], List[int]] = {}
        for j in range(i_n):
            key = tuple(col[j] for col in ikey_cols)
            if any(value is None for value in key):
                continue
            buckets.setdefault(key, []).append(j)
        residual_fn = self._residual_fn
        if residual_fn is None:
            for i in range(o_n):
                key = tuple(col[i] for col in okey_cols)
                if any(value is None for value in key):
                    continue
                matches = buckets.get(key)
                if matches:
                    outer_pos.extend([i] * len(matches))
                    inner_pos.extend(matches)
            return
        inner_rows = list(zip(*icols)) if i_n else []
        for i in range(o_n):
            key = tuple(col[i] for col in okey_cols)
            if any(value is None for value in key):
                continue
            matches = buckets.get(key)
            if not matches:
                continue
            outer_row = tuple(col[i] for col in ocols)
            for j in matches:
                if residual_fn(outer_row, inner_rows[j]):
                    outer_pos.append(i)
                    inner_pos.append(j)

    def _full_loop(self, ocols, o_n, icols, i_n, outer_pos, inner_pos):
        pair_fn = self._pair_fn
        if pair_fn is not None:
            inner_rows = list(zip(*icols)) if i_n else []
            for i in range(o_n):
                outer_row = tuple(col[i] for col in ocols)
                for j, inner_row in enumerate(inner_rows):
                    if pair_fn(outer_row, inner_row):
                        outer_pos.append(i)
                        inner_pos.append(j)
            return
        candidates = [(i, j) for i in range(o_n) for j in range(i_n)]
        for i, j in self._pair_truthy_rowwise(
            self.condition, ocols, icols, candidates
        ):
            outer_pos.append(i)
            inner_pos.append(j)

    @property
    def label(self) -> str:
        if self.condition is None:
            return "NestedLoopJoin[cross]"
        mode = "hash-accelerated" if self._accel_pairs else "full-scan"
        return f"NestedLoopJoin[{L._pretty(self.condition)}] ({mode})"


class HashJoin(_JoinBase):
    """In-memory hash join with build-side reuse across executions.

    NULL keys bucket and match (replicating the row engine's
    ``hash_join``); the build side (the inner/right input) can be
    served from the engine's :class:`BuildSideCache`, in which case the
    recorded I/O of the original build is replayed so accounting stays
    identical while the subtree's wall-clock cost disappears.
    """

    name = "hash-join"
    __slots__ = (
        "equi_pairs",
        "residual",
        "_okeys",
        "_ikeys",
        "_residual_fn",
        "cache_token",
        "_base_relations",
    )

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        equi_pairs: Sequence[Tuple[str, str]],
        residual: Optional[Expression] = None,
        cache_token=None,
        base_relations: Sequence[str] = (),
    ):
        if not equi_pairs:
            raise ExecutionError("hash join requires at least one equi-join pair")
        super().__init__(left, right)
        self.equi_pairs = tuple(equi_pairs)
        self.residual = residual
        outer_names = list(self._lnames)
        inner_names = list(self._rnames)
        self._okeys = [
            outer_names.index(left.schema.attribute(a).name)
            for a, _ in equi_pairs
        ]
        self._ikeys = [
            inner_names.index(right.schema.attribute(b).name)
            for _, b in equi_pairs
        ]
        self._residual_fn = (
            compile_pair(residual, self._lnames, self._rnames)
            if residual is not None
            else None
        )
        self.cache_token = cache_token
        self._base_relations = tuple(base_relations)

    # ------------------------------------------------------------- validity
    def _validity(self, ctx: ExecutionContext):
        database = ctx.database
        if database is None:
            return None
        parts = []
        for name in self._base_relations:
            try:
                table = database.table(name)
            except ExecutionError:
                return None
            parts.append((name, database.version(name), table.cardinality))
        return tuple(parts)

    def _compute(self, ctx: ExecutionContext):
        left_prep = _prepare(self.left, ctx)
        cache = ctx.cache if self.cache_token is not None else None
        validity = self._validity(ctx) if cache is not None else None
        entry = None
        if cache is not None and validity is not None:
            entry = cache.lookup(self.cache_token, validity)
        if entry is not None:
            # Replay the recorded build I/O: totals stay identical, the
            # build-side subtree simply never re-executes.
            if entry.reads:
                ctx.io.read_blocks(entry.reads)
            if entry.writes:
                ctx.io.write_blocks(entry.writes)
            icols, i_n, buckets = entry.columns, entry.cardinality, entry.buckets
        else:
            before = ctx.io.snapshot()
            right_prep = _prepare(self.right, ctx)
            icols, i_n = _finish_scan(right_prep, ctx)
            ikey_cols = [icols[k] for k in self._ikeys]
            buckets: Dict[Tuple[Any, ...], List[int]] = {}
            for j in range(i_n):
                buckets.setdefault(
                    tuple(col[j] for col in ikey_cols), []
                ).append(j)
            if cache is not None and validity is not None:
                delta = ctx.io.since(before)
                cache.store(
                    self.cache_token,
                    validity,
                    icols,
                    i_n,
                    buckets,
                    delta.reads,
                    delta.writes,
                    self._base_relations,
                )
        ocols, o_n = _finish_scan(left_prep, ctx)

        okey_cols = [ocols[k] for k in self._okeys]
        outer_pos: List[int] = []
        inner_pos: List[int] = []
        residual_fn = self._residual_fn
        if self.residual is None:
            for i in range(o_n):
                matches = buckets.get(tuple(col[i] for col in okey_cols))
                if matches:
                    outer_pos.extend([i] * len(matches))
                    inner_pos.extend(matches)
        elif residual_fn is not None:
            inner_rows = list(zip(*icols)) if i_n else []
            for i in range(o_n):
                matches = buckets.get(tuple(col[i] for col in okey_cols))
                if not matches:
                    continue
                outer_row = tuple(col[i] for col in ocols)
                for j in matches:
                    if residual_fn(outer_row, inner_rows[j]):
                        outer_pos.append(i)
                        inner_pos.append(j)
        else:
            candidates = []
            for i in range(o_n):
                matches = buckets.get(tuple(col[i] for col in okey_cols))
                if matches:
                    candidates.extend((i, j) for j in matches)
            for i, j in self._pair_truthy_rowwise(
                self.residual, ocols, icols, candidates
            ):
                outer_pos.append(i)
                inner_pos.append(j)
        return (
            _gather(self._mapping, ocols, icols, outer_pos, inner_pos),
            len(outer_pos),
        )

    @property
    def label(self) -> str:
        keys = ", ".join(f"{a}={b}" for a, b in self.equi_pairs)
        cached = " (build-cacheable)" if self.cache_token is not None else ""
        if self.residual is not None:
            return f"HashJoin[{keys}; {L._pretty(self.residual)}]{cached}"
        return f"HashJoin[{keys}]{cached}"


class MergeJoin(_JoinBase):
    """Sort-merge join: external-sort I/O accounting, NULL keys drop."""

    name = "merge-join"
    __slots__ = ("equi_pairs", "residual", "_okeys", "_ikeys", "_residual_fn")

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        equi_pairs: Sequence[Tuple[str, str]],
        residual: Optional[Expression] = None,
    ):
        if not equi_pairs:
            raise ExecutionError(
                "sort-merge join requires at least one equi-join pair"
            )
        super().__init__(left, right)
        self.equi_pairs = tuple(equi_pairs)
        self.residual = residual
        outer_names = list(self._lnames)
        inner_names = list(self._rnames)
        self._okeys = [
            outer_names.index(left.schema.attribute(a).name)
            for a, _ in equi_pairs
        ]
        self._ikeys = [
            inner_names.index(right.schema.attribute(b).name)
            for _, b in equi_pairs
        ]
        self._residual_fn = (
            compile_pair(residual, self._lnames, self._rnames)
            if residual is not None
            else None
        )

    @staticmethod
    def _charge_sort(prep: _Prepared, ctx: ExecutionContext) -> None:
        blocks = _blocks(prep)
        io = _charge_io(prep, ctx)
        io.read_blocks(blocks)
        if blocks > 1:
            io.read_blocks(int(blocks * math.ceil(math.log2(blocks))))

    def _compute(self, ctx: ExecutionContext):
        left_prep = _prepare(self.left, ctx)
        right_prep = _prepare(self.right, ctx)
        self._charge_sort(left_prep, ctx)
        self._charge_sort(right_prep, ctx)
        ocols, o_n = _finish_rows(left_prep, ctx)
        icols, i_n = _finish_rows(right_prep, ctx)

        okey_cols = [ocols[k] for k in self._okeys]
        ikey_cols = [icols[k] for k in self._ikeys]

        def okey(i):
            return tuple(col[i] for col in okey_cols)

        def ikey(j):
            return tuple(col[j] for col in ikey_cols)

        left_order = sorted(
            (
                i
                for i in range(o_n)
                if all(col[i] is not None for col in okey_cols)
            ),
            key=okey,
        )
        right_order = sorted(
            (
                j
                for j in range(i_n)
                if all(col[j] is not None for col in ikey_cols)
            ),
            key=ikey,
        )

        candidates: List[Tuple[int, int]] = []
        i = j = 0
        while i < len(left_order) and j < len(right_order):
            left_key = okey(left_order[i])
            right_key = ikey(right_order[j])
            if left_key < right_key:
                i += 1
            elif left_key > right_key:
                j += 1
            else:
                run_start = j
                while (
                    j < len(right_order) and ikey(right_order[j]) == left_key
                ):
                    j += 1
                run_end = j
                while i < len(left_order) and okey(left_order[i]) == left_key:
                    for index in range(run_start, run_end):
                        candidates.append((left_order[i], right_order[index]))
                    i += 1

        outer_pos: List[int] = []
        inner_pos: List[int] = []
        residual_fn = self._residual_fn
        if self.residual is None:
            for pair in candidates:
                outer_pos.append(pair[0])
                inner_pos.append(pair[1])
        elif residual_fn is not None:
            inner_rows: Dict[int, Tuple[Any, ...]] = {}
            outer_rows: Dict[int, Tuple[Any, ...]] = {}
            for i, j in candidates:
                outer_row = outer_rows.get(i)
                if outer_row is None:
                    outer_row = tuple(col[i] for col in ocols)
                    outer_rows[i] = outer_row
                inner_row = inner_rows.get(j)
                if inner_row is None:
                    inner_row = tuple(col[j] for col in icols)
                    inner_rows[j] = inner_row
                if residual_fn(outer_row, inner_row):
                    outer_pos.append(i)
                    inner_pos.append(j)
        else:
            for i, j in self._pair_truthy_rowwise(
                self.residual, ocols, icols, candidates
            ):
                outer_pos.append(i)
                inner_pos.append(j)
        return (
            _gather(self._mapping, ocols, icols, outer_pos, inner_pos),
            len(outer_pos),
        )

    @property
    def label(self) -> str:
        keys = ", ".join(f"{a}={b}" for a, b in self.equi_pairs)
        return f"MergeJoin[{keys}]"


class IndexNestedLoopJoin(_JoinBase):
    """Probe a hash index on the stored inner relation (paper §3.2).

    Delegates to :func:`repro.executor.indexes.index_nested_loop_join`
    so index build/probe I/O and fault draws stay byte-identical; the
    outer input is adapted to a table when it is not already a scan.
    """

    name = "index-nested-loop-join"
    __slots__ = ("equi_pair", "leftover")

    def __init__(
        self,
        left: PhysicalOperator,
        right: Scan,
        equi_pair: Tuple[str, str],
        leftover: Optional[Expression] = None,
    ):
        super().__init__(left, right)
        self.equi_pair = equi_pair
        self.leftover = leftover

    def _compute(self, ctx: ExecutionContext):
        from repro.executor.indexes import index_nested_loop_join

        if ctx.indexes is None:
            raise ExecutionError(
                "index-nested-loop join needs an IndexManager in the context"
            )
        left_prep = _prepare(self.left, ctx)
        inner_table = self.right.require_table()
        index = ctx.indexes.ensure(
            self.right.relation_name, inner_table, self.equi_pair[1]
        )
        if isinstance(left_prep.op, Scan):
            outer_table = left_prep.op.require_table()
        else:
            outer_table = Table(
                self.left.schema, self.left.blocking_factor, io=ctx.io
            )
            names = self.left.schema.attribute_names
            outer_table._rows = [
                dict(zip(names, values)) for values in zip(*left_prep.columns)
            ]
        result = index_nested_loop_join(
            outer_table, index, self.equi_pair, self.leftover
        )
        names = self.schema.attribute_names
        rows = result._rows
        return [[row[name] for row in rows] for name in names], len(rows)

    @property
    def label(self) -> str:
        outer_key, inner_key = self.equi_pair
        return (
            f"IndexNestedLoopJoin[{outer_key}={inner_key}] "
            f"(index on {self.right.relation_name})"
        )


# -------------------------------------------------- aggregation, sort, limit
class HashAggregate(PhysicalOperator):
    """γ: hash aggregation, one pass, group order = first occurrence."""

    name = "aggregate"
    __slots__ = ("group_by", "specs", "_key_indices", "_targets")

    def __init__(
        self,
        child: PhysicalOperator,
        group_by: Sequence[str],
        specs,
        output_schema,
    ):
        super().__init__(output_schema, child.blocking_factor, (child,))
        keys = [child.schema.attribute(k).name for k in group_by]
        self.group_by = tuple(keys)
        self.specs = tuple(specs)
        names = list(child.schema.attribute_names)
        self._key_indices = [names.index(k) for k in keys]
        # Output attribute -> result-dict key, replicating Table._normalize
        # over ``{**group keys, **aliases}`` (exact name, then short name).
        available = list(keys) + [spec.alias for spec in self.specs]
        available_set = set(available)
        targets = []
        for attribute in output_schema:
            if attribute.name in available_set:
                targets.append(attribute.name)
            elif attribute.short_name in available_set:
                targets.append(attribute.short_name)
            else:
                raise StorageError(
                    f"row missing attribute {attribute.name!r}: "
                    f"{sorted(available_set)}"
                )
        self._targets = targets

    def _compute(self, ctx: ExecutionContext):
        columns, length = _finish_scan(_prepare(self.children[0], ctx), ctx)
        columns_by_name = dict(zip(self.children[0].schema.attribute_names, columns))
        groups: Dict[Tuple[Any, ...], List[int]] = {}
        if self._key_indices:
            key_cols = [columns[i] for i in self._key_indices]
            for position in range(length):
                groups.setdefault(
                    tuple(col[position] for col in key_cols), []
                ).append(position)
        elif length:
            groups[()] = list(range(length))
        else:
            groups[()] = []  # global aggregate over an empty input

        results = []
        for group_key, positions in groups.items():
            result = dict(zip(self.group_by, group_key))
            for spec in self.specs:
                result[spec.alias] = _evaluate_aggregate(
                    spec, positions, columns_by_name
                )
            results.append(result)
        out = [
            [result[target] for result in results] for target in self._targets
        ]
        return out, len(results)

    @property
    def label(self) -> str:
        funcs = ", ".join(s.signature for s in self.specs)
        if self.group_by:
            return f"HashAggregate[{', '.join(self.group_by)}; {funcs}]"
        return f"HashAggregate[{funcs}]"


def _evaluate_aggregate(spec, positions, columns_by_name):
    """Exact columnar replica of the row engine's ``_evaluate_aggregate``.

    Column resolution is deliberately lazy so an empty group never
    touches the aggregated attribute — matching the row engine, which
    only indexes ``r[spec.attribute]`` on rows that exist.
    """
    if spec.function is L.AggregateFunction.COUNT:
        if spec.attribute is None:
            return len(positions)
        if not positions:
            return 0
        col = columns_by_name[spec.attribute]
        return sum(1 for p in positions if col[p] is not None)
    if not positions:
        return None
    col = columns_by_name[spec.attribute]
    values = [col[p] for p in positions if col[p] is not None]
    if not values:
        return None
    if spec.function is L.AggregateFunction.SUM:
        return float(sum(values))
    if spec.function is L.AggregateFunction.AVG:
        return float(sum(values)) / len(values)
    if spec.function is L.AggregateFunction.MIN:
        return min(values)
    if spec.function is L.AggregateFunction.MAX:
        return max(values)
    raise ExecutionError(f"unsupported aggregate {spec.function}")


class SortOperator(PhysicalOperator):
    """τ: external-sort I/O accounting, stable index sort, NULLS FIRST."""

    name = "sort"
    __slots__ = ("keys", "_resolved")

    def __init__(self, child: PhysicalOperator, keys: Sequence[Tuple[str, bool]]):
        super().__init__(child.schema, child.blocking_factor, (child,))
        names = list(child.schema.attribute_names)
        resolved = [
            (child.schema.attribute(name).name, bool(ascending))
            for name, ascending in keys
        ]
        self.keys = tuple(resolved)
        self._resolved = [
            (names.index(name), ascending) for name, ascending in resolved
        ]

    def _compute(self, ctx: ExecutionContext):
        prep = _prepare(self.children[0], ctx)
        blocks = _blocks(prep)
        io = _charge_io(prep, ctx)
        io.read_blocks(blocks)
        if blocks > 1:
            io.read_blocks(int(blocks * math.ceil(math.log2(blocks))))
        columns, length = _finish_rows(prep, ctx)
        order = list(range(length))
        for index, ascending in reversed(self._resolved):
            col = columns[index]
            order.sort(
                key=lambda i, c=col: (True, c[i])
                if c[i] is not None
                else (False, 0),
                reverse=not ascending,
            )
        return [[col[i] for i in order] for col in columns], length

    @property
    def label(self) -> str:
        rendered = ", ".join(
            f"{name} {'ASC' if ascending else 'DESC'}"
            for name, ascending in self.keys
        )
        return f"Sort[{rendered}]"


class LimitOperator(PhysicalOperator):
    """LIMIT: reads only the blocks holding the first ``count`` rows."""

    name = "limit"
    __slots__ = ("count",)

    def __init__(self, child: PhysicalOperator, count: int):
        super().__init__(child.schema, child.blocking_factor, (child,))
        self.count = count

    def _compute(self, ctx: ExecutionContext):
        prep = _prepare(self.children[0], ctx)
        needed = block_count(
            min(self.count, prep.length), self.blocking_factor
        )
        _charge_io(prep, ctx).read_blocks(needed)
        columns, length = _finish_rows(prep, ctx)
        return [col[: self.count] for col in columns], min(self.count, length)

    @property
    def label(self) -> str:
        return f"Limit[{self.count}]"


# -------------------------------------------------------- build-side cache
class _BuildEntry:
    """One cached hash-join build side plus its recorded build I/O."""

    __slots__ = (
        "validity",
        "columns",
        "cardinality",
        "buckets",
        "reads",
        "writes",
        "base_relations",
    )

    def __init__(
        self, validity, columns, cardinality, buckets, reads, writes, base_relations
    ):
        self.validity = validity
        self.columns = columns
        self.cardinality = cardinality
        self.buckets = buckets
        self.reads = reads
        self.writes = writes
        self.base_relations = base_relations


class BuildSideCache:
    """Hash-join build sides reused across refreshes and repeated serves.

    Keyed on the build subtree's *logical signature* plus its join-key
    attributes; an entry is valid only while every base relation it
    reads still has the same registration version (bumped by
    ``Database.register``/``drop`` — the freshness epoch) and
    cardinality.  Invalidation mirrors ``CostCache``: warehouses call
    :meth:`invalidate` alongside ``IndexManager.invalidate`` whenever a
    relation or view changes.

    Cached entries replay their recorded build I/O on every hit, so
    measured block counts are identical with and without the cache —
    only the wall-clock cost of re-executing the build subtree is
    saved.
    """

    def __init__(self, max_entries: int = 32):
        if max_entries < 1:
            raise ExecutionError(f"max_entries must be >= 1: {max_entries}")
        self._entries: Dict[Any, _BuildEntry] = {}
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0

    def lookup(self, token, validity) -> Optional[_BuildEntry]:
        entry = self._entries.get(token)
        if entry is None:
            self.misses += 1
            return None
        if entry.validity != validity:
            del self._entries[token]
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def store(
        self, token, validity, columns, cardinality, buckets, reads, writes,
        base_relations,
    ) -> None:
        self._entries.pop(token, None)
        while len(self._entries) >= self.max_entries:
            # FIFO eviction: drop the oldest surviving entry.
            self._entries.pop(next(iter(self._entries)))
        self._entries[token] = _BuildEntry(
            validity, columns, cardinality, buckets, reads, writes,
            tuple(base_relations),
        )

    def invalidate(self, name: Optional[str] = None) -> None:
        """Drop entries reading ``name`` (or everything when ``None``)."""
        if name is None:
            self._entries.clear()
            return
        stale = [
            token
            for token, entry in self._entries.items()
            if name in entry.base_relations
        ]
        for token in stale:
            del self._entries[token]

    def stats(self) -> Dict[str, int]:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
        }

    def __len__(self) -> int:
        return len(self._entries)


# ------------------------------------------------------------------ planner
#: Join strategies (mirrored by ``repro.executor.engine``).
NESTED_LOOP = "nested-loop"
HASH = "hash"
INDEX_NESTED_LOOP = "index-nested-loop"
SORT_MERGE = "sort-merge"


def split_join_condition(plan: "L.Join"):
    """Split a join condition into (equi pairs, residual predicate).

    Byte-identical to the row engine's split: a ``column = column``
    conjunct becomes an (outer attribute, inner attribute) pair when
    one side names an attribute of the *logical* left schema.
    """
    equi: List[Tuple[str, str]] = []
    residual_parts: List[Expression] = []
    outer_columns = set(plan.left.schema.attribute_names)
    for conjunct in P.conjuncts(plan.condition):
        if P.is_join_predicate(conjunct):
            left_name = conjunct.left.name  # type: ignore[union-attr]
            right_name = conjunct.right.name  # type: ignore[union-attr]
            if left_name in outer_columns:
                equi.append((left_name, right_name))
                continue
            if right_name in outer_columns:
                equi.append((right_name, left_name))
                continue
        residual_parts.append(conjunct)
    return equi, P.conjunction(residual_parts)


class PhysicalPlanner:
    """Lowers logical plans to physical operator trees — once per execute.

    All plan-constant work happens here: runtime table binding and
    schema checks, attribute resolution, joined blocking factors (the
    old per-call ``_joined_blocking_factor`` hoisted to plan time),
    join-condition splits and predicate kernel compilation.  With
    ``require_tables=False`` (used by ``explain``) relations missing
    from the database lower to unbound scans carrying the logical
    schema.
    """

    def __init__(
        self,
        database=None,
        join_method: str = NESTED_LOOP,
        require_tables: bool = True,
        lint: bool = False,
    ):
        self.database = database
        self.join_method = join_method
        self.require_tables = require_tables
        self.lint = lint

    def lower(self, plan: L.Operator) -> PhysicalOperator:
        if self.lint:
            # Logical verification (rules P001-P007) runs before lowering:
            # a corrupt plan must fail with the P-rule diagnostic, not with
            # whatever construction error the physical operators hit first.
            from repro.lint.plans import verify_plan

            logical = verify_plan(plan, name=plan.schema.name)
            if logical.errors:
                logical.publish()
                logical.raise_on_errors()
        root = self._lower(plan)
        if self.lint:
            # The full pass (including the logical<->physical preservation
            # check P008) runs once at the root, after lowering:
            # error-severity findings abort the execute before any I/O is
            # charged.
            from repro.lint.plans import verify_lowering

            report = verify_lowering(plan, root, name=plan.schema.name)
            report.publish()
            report.raise_on_errors()
        return root

    def _lower(self, plan: L.Operator) -> PhysicalOperator:
        if isinstance(plan, L.Relation):
            return self._lower_relation(plan)
        if isinstance(plan, L.Select):
            return Filter(self._lower(plan.child), plan.predicate)
        if isinstance(plan, L.Project):
            return Projection(
                self._lower(plan.child), plan.attributes, plan.distinct
            )
        if isinstance(plan, L.Join):
            return self._lower_join(plan)
        if isinstance(plan, L.Aggregate):
            return HashAggregate(
                self._lower(plan.child), plan.group_by, plan.aggregates,
                plan.schema,
            )
        if isinstance(plan, L.Sort):
            return SortOperator(self._lower(plan.child), plan.keys)
        if isinstance(plan, L.Limit):
            return LimitOperator(self._lower(plan.child), plan.count)
        raise ExecutionError(f"cannot execute operator {type(plan).__name__}")

    def _lower_relation(self, plan: L.Relation) -> Scan:
        database = self.database
        if database is not None and (
            self.require_tables or plan.name in database
        ):
            table = database.table(plan.name)
            self._check_schema(plan, table)
            return Scan(plan.name, table=table)
        if self.require_tables:
            raise ExecutionError(f"no table named {plan.name!r} is loaded")
        return Scan(plan.name, schema=plan.schema)

    def _lower_join(self, plan: L.Join) -> PhysicalOperator:
        left = self._lower(plan.left)
        right = self._lower(plan.right)
        if self.join_method == NESTED_LOOP:
            return NestedLoopJoin(left, right, plan.condition)
        equi, residual = split_join_condition(plan)
        if not equi:
            return NestedLoopJoin(left, right, plan.condition)
        if self.join_method == SORT_MERGE:
            return MergeJoin(left, right, equi, residual)
        if self.join_method == INDEX_NESTED_LOOP and isinstance(
            plan.right, L.Relation
        ):
            first, rest = equi[0], equi[1:]
            leftover = P.conjunction(
                [residual]
                + [compare(column(a), "=", column(b)) for a, b in rest]
            )
            return IndexNestedLoopJoin(left, right, first, leftover)
        token = (
            "hash-build",
            plan.right.signature,
            tuple(b for _, b in equi),
        )
        base = tuple(sorted(plan.right.base_relations()))
        return HashJoin(
            left, right, equi, residual,
            cache_token=token, base_relations=base,
        )

    @staticmethod
    def _check_schema(plan: L.Relation, table: Table) -> None:
        expected = set(plan.schema.attribute_names)
        actual = set(table.schema.attribute_names)
        if not expected <= actual:
            raise ExecutionError(
                f"table {plan.name!r} is missing attributes "
                f"{sorted(expected - actual)}"
            )


# ------------------------------------------------------------------ helpers
def scan_of(table: Table) -> Scan:
    """Wrap an existing table as a physical scan leaf."""
    return Scan(table.schema.name, table=table)


def execute_operator(
    op: PhysicalOperator,
    io,
    batch_size: int = DEFAULT_BATCH_SIZE,
    database=None,
    indexes=None,
) -> Table:
    """Drive one operator tree to completion and build its result table.

    The deprecated free functions in ``repro.executor.iterators``
    delegate here; no obs recording, no build cache — their historical
    contract is exactly one table in, one table out, identical I/O.
    """
    ctx = ExecutionContext(
        io=io, batch_size=batch_size, database=database, indexes=indexes
    )
    columns, length = materialize(op, ctx)
    return table_from_columns(
        op.schema, op.blocking_factor, columns, length, io
    )


def table_from_columns(schema, blocking_factor, columns, length, io) -> Table:
    """Assemble a result table from columns without re-validation.

    Values flowing through physical operators were validated when their
    source rows were loaded (``DataType.validate`` is idempotent), so
    rebuilding row dicts directly is safe — and is where the vectorized
    engine wins back the row engine's per-row normalization cost.
    """
    out = Table(schema, blocking_factor, io=io)
    names = schema.attribute_names
    out._rows = [dict(zip(names, values)) for values in zip(*columns)]
    return out


def charge_materialize(result: Table) -> Table:
    """Charge the block writes of storing ``result`` persistently."""
    result.io.write_blocks(result.num_blocks)
    return result
