"""Naive reference evaluator — the correctness oracle.

Evaluates a logical plan by the textbook denotational semantics: joins
are cartesian products filtered by their condition, with no physical
optimizations, no I/O accounting, no shared code with the real engine's
operators.  Property-based tests compare the production executor against
this oracle on randomized plans and data.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping

from repro.algebra.operators import (
    Aggregate,
    AggregateFunction,
    Join,
    Limit,
    Operator,
    Project,
    Relation,
    Select,
    Sort,
)
from repro.errors import ExecutionError

Row = Dict[str, Any]


def evaluate(plan: Operator, tables: Mapping[str, List[Row]]) -> List[Row]:
    """Evaluate ``plan`` against raw row lists (qualified column names)."""
    if isinstance(plan, Relation):
        try:
            return [dict(row) for row in tables[plan.name]]
        except KeyError:
            raise ExecutionError(f"no rows provided for {plan.name!r}") from None
    if isinstance(plan, Select):
        rows = evaluate(plan.child, tables)
        return [row for row in rows if plan.predicate.evaluate(row) is True]
    if isinstance(plan, Project):
        rows = evaluate(plan.child, tables)
        return [{name: row[name] for name in plan.attributes} for row in rows]
    if isinstance(plan, Join):
        left = evaluate(plan.left, tables)
        right = evaluate(plan.right, tables)
        out = []
        for left_row in left:
            for right_row in right:
                merged = {**left_row, **right_row}
                if plan.condition is None or plan.condition.evaluate(merged) is True:
                    out.append(merged)
        return out
    if isinstance(plan, Aggregate):
        return _aggregate(plan, evaluate(plan.child, tables))
    if isinstance(plan, Sort):
        rows = evaluate(plan.child, tables)
        for name, ascending in reversed(plan.keys):
            rows.sort(
                key=lambda r, n=name: (r[n] is not None, r[n])
                if r[n] is not None
                else (False, 0),
                reverse=not ascending,
            )
        return rows
    if isinstance(plan, Limit):
        return evaluate(plan.child, tables)[: plan.count]
    raise ExecutionError(f"reference evaluator: unsupported {type(plan).__name__}")


def _aggregate(plan: Aggregate, rows: List[Row]) -> List[Row]:
    groups: Dict[tuple, List[Row]] = {}
    for row in rows:
        key = tuple(row[k] for k in plan.group_by)
        groups.setdefault(key, []).append(row)
    if not groups and not plan.group_by:
        groups[()] = []
    out = []
    for key, members in groups.items():
        result: Row = dict(zip(plan.group_by, key))
        for spec in plan.aggregates:
            if spec.function is AggregateFunction.COUNT:
                if spec.attribute is None:
                    result[spec.alias] = len(members)
                else:
                    result[spec.alias] = sum(
                        1 for m in members if m[spec.attribute] is not None
                    )
                continue
            values = [
                m[spec.attribute]
                for m in members
                if m[spec.attribute] is not None
            ]
            if not values:
                result[spec.alias] = None
            elif spec.function is AggregateFunction.SUM:
                result[spec.alias] = float(sum(values))
            elif spec.function is AggregateFunction.AVG:
                result[spec.alias] = float(sum(values)) / len(values)
            elif spec.function is AggregateFunction.MIN:
                result[spec.alias] = min(values)
            else:
                result[spec.alias] = max(values)
        out.append(result)
    return out
