"""repro.lint — two-layer static analysis for the MVPP pipeline.

Layer 1 (:mod:`repro.lint.semantic`) lints the *artifacts*: workloads,
MVPP graphs, and finished designs, enforcing the invariants the paper's
algorithms assume (Figure-4 push-down, merged common subexpressions,
frequency annotations, cost monotonicity, Figure-9 post-conditions).

Layer 2 (:mod:`repro.lint.code`) lints the *source*: an AST analyzer
enforcing the repo's determinism contract (no set-iteration order
dependence, no unseeded randomness, no wall-clock reads on cost paths,
no mutable defaults), runnable as ``repro lint --self``.

Both layers share one vocabulary (:class:`Diagnostic`, :class:`Severity`,
:class:`LintReport`), one string-keyed rule registry (mirroring the
selection-strategy registry), and the emitters in
:mod:`repro.lint.emitters` (text / JSON / SARIF).  The rule catalog is
documented in ``docs/lint.md``.
"""

from repro.lint.diagnostics import (
    SCOPES,
    Diagnostic,
    LintReport,
    Location,
    Rule,
    Severity,
    all_rules,
    get_rule,
    register_rule,
    rule_ids,
    rules_for,
)
from repro.lint.code import (
    CodeContext,
    Suppressions,
    lint_paths,
    lint_self,
    lint_source,
)
from repro.lint.emitters import (
    LINT_SCHEMA_VERSION,
    render_text,
    report_to_json,
    report_to_sarif,
)
from repro.lint.semantic import (
    SemanticContext,
    lint_adaptive_policy,
    lint_design,
    lint_mvpp,
    lint_workload,
)

__all__ = [
    "CodeContext",
    "Diagnostic",
    "LINT_SCHEMA_VERSION",
    "LintReport",
    "Location",
    "Rule",
    "SCOPES",
    "SemanticContext",
    "Severity",
    "Suppressions",
    "all_rules",
    "get_rule",
    "lint_adaptive_policy",
    "lint_design",
    "lint_mvpp",
    "lint_paths",
    "lint_self",
    "lint_source",
    "lint_workload",
    "register_rule",
    "render_text",
    "report_to_json",
    "report_to_sarif",
    "rule_ids",
    "rules_for",
]
