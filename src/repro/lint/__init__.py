"""repro.lint — static analysis for the MVPP pipeline, in four layers.

Layer 1 (:mod:`repro.lint.semantic`) lints the *artifacts*: workloads,
MVPP graphs, and finished designs, enforcing the invariants the paper's
algorithms assume (Figure-4 push-down, merged common subexpressions,
frequency annotations, cost monotonicity, Figure-9 post-conditions).

Layer 2 (:mod:`repro.lint.code`) lints the *source*: an AST analyzer
enforcing the repo's determinism contract (no set-iteration order
dependence, no unseeded randomness, no wall-clock reads on cost paths,
no mutable defaults), runnable as ``repro lint --self``.

Layer 3 (:mod:`repro.lint.plans`) verifies *query plans*: schema/type
inference over :mod:`repro.algebra` logical trees and lowered physical
trees (rules P001-P008), wired into :class:`~repro.executor.physical.
PhysicalPlanner` lowering behind ``DesignConfig.lint``.

Layer 4 (:mod:`repro.lint.concurrency` / :mod:`repro.lint.effects`)
analyzes the package *interprocedurally*: shared-state safety of
functions submitted to :mod:`repro.parallel` executors (X101-X106) and
purity of everything reachable from the cost models (E201-E203).

All layers share one vocabulary (:class:`Diagnostic`, :class:`Severity`,
:class:`LintReport`), one string-keyed rule registry (mirroring the
selection-strategy registry), the emitters in :mod:`repro.lint.emitters`
(text / JSON / SARIF / GitHub annotations), and the incremental engine
in :mod:`repro.lint.incremental` (content-hash caching, ``--diff``,
baselines).  The rule catalog is documented in ``docs/lint.md``.
"""

from repro.lint.diagnostics import (
    SCOPES,
    Diagnostic,
    LintReport,
    Location,
    Rule,
    Severity,
    all_rules,
    fingerprint_of,
    get_rule,
    register_rule,
    rule_ids,
    rules_for,
)
from repro.lint.code import (
    CodeContext,
    Suppressions,
    lint_paths,
    lint_self,
    lint_source,
)
from repro.lint.emitters import (
    LINT_SCHEMA_VERSION,
    diagnostic_fingerprint,
    render_github,
    render_text,
    report_to_json,
    report_to_sarif,
)
from repro.lint.semantic import (
    SemanticContext,
    lint_adaptive_policy,
    lint_design,
    lint_mvpp,
    lint_streaming_policy,
    lint_workload,
)
from repro.lint.plans import verify_lowering, verify_plan
from repro.lint.concurrency import PackageContext, lint_concurrency
from repro.lint.effects import lint_effects
from repro.lint.incremental import (
    apply_baseline,
    changed_files,
    lint_package,
    lint_self_incremental,
    load_baseline,
    write_baseline,
)

__all__ = [
    "CodeContext",
    "Diagnostic",
    "LINT_SCHEMA_VERSION",
    "LintReport",
    "Location",
    "PackageContext",
    "Rule",
    "SCOPES",
    "SemanticContext",
    "Severity",
    "Suppressions",
    "all_rules",
    "apply_baseline",
    "changed_files",
    "diagnostic_fingerprint",
    "fingerprint_of",
    "get_rule",
    "lint_adaptive_policy",
    "lint_concurrency",
    "lint_design",
    "lint_effects",
    "lint_mvpp",
    "lint_package",
    "lint_paths",
    "lint_self",
    "lint_self_incremental",
    "lint_source",
    "lint_streaming_policy",
    "lint_workload",
    "load_baseline",
    "register_rule",
    "render_github",
    "render_text",
    "report_to_json",
    "report_to_sarif",
    "rule_ids",
    "rules_for",
    "verify_lowering",
    "verify_plan",
    "write_baseline",
]
