"""Layer 2 — the determinism-enforcing code analyzer (``repro lint --self``).

PR 2 established a contract the example-based tests can only sample:
parallel design runs must be *bit-identical* to serial ones, and any
design run must be bit-identical under a fixed seed.  This analyzer
enforces the contract structurally, over our own source, by flagging the
constructs that break it:

* ``C101`` — iterating a bare ``set``/``frozenset`` expression into
  ordered output (loop, comprehension, ``list()``/``tuple()``/``join``):
  set iteration order is hash-dependent;
* ``C102`` — un-keyed ``sorted``/``min``/``max`` over a syntactic set
  expression: ties and incomparable elements resolve by iteration order;
* ``C103`` — module-level ``random.*`` calls (or importing the drawing
  functions directly): global-state randomness is unseedable per run —
  use a ``random.Random(seed)`` instance;
* ``C104`` — wall-clock reads (``time.time``, ``perf_counter``,
  ``datetime.now``/``today``) on cost/design paths: cost arithmetic must
  be a pure function of statistics (the :mod:`repro.obs` tracing layer
  is exempt by path);
* ``C105`` — mutable default arguments: shared mutable state across
  calls makes results depend on call history.

Findings are suppressed per line with a trailing
``# lint: ignore[C101]`` (or ``# lint: ignore`` for all rules); the
suppression comment documents intent where a construct is genuinely
safe.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import LintError
from repro.lint.diagnostics import (
    Diagnostic,
    LintReport,
    Location,
    Severity,
    fingerprint_of,
    get_rule,
    register_rule,
    rules_for,
)

#: ``random`` module attributes that are safe to touch: constructing a
#: seeded generator, or the class machinery around it.
SAFE_RANDOM_ATTRS = {"Random", "SystemRandom", "seed"}

#: Draw-style names that, imported from ``random`` directly, bypass
#: seeded instances just like ``random.choice(...)`` does.
RANDOM_DRAW_NAMES = {
    "betavariate", "choice", "choices", "expovariate", "gauss",
    "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
    "randbytes", "randint", "random", "randrange", "sample", "shuffle",
    "triangular", "uniform", "vonmisesvariate", "weibullvariate",
}

#: Wall-clock call sites flagged by C104, as (module, attribute) pairs.
WALL_CLOCK_CALLS = {
    ("time", "time"),
    ("time", "perf_counter"),
    ("time", "monotonic"),
    ("time", "process_time"),
    ("time", "time_ns"),
    ("time", "monotonic_ns"),
    ("time", "perf_counter_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
}

#: Path fragments exempt from C104: the tracing layer exists to read the
#: clock, and benchmarks measure wall time by design.
WALL_CLOCK_EXEMPT_PARTS = ("obs", "benchmarks")

#: Builtins that turn an iterable into ordered output (C101 sinks).
ORDERING_SINKS = {"list", "tuple", "enumerate", "zip", "iter", "next"}

#: Methods whose first string-literal argument is an obs metric/event
#: name checked by O001 (registry instruments, journal events, spans,
#: and the `_counter`-style wrappers subsystems define around them).
OBS_NAME_METHODS = {
    "counter", "gauge", "histogram", "span", "journal_event",
    "_counter", "_gauge", "_histogram", "_journal",
}

#: Subsystem prefixes an obs metric/event name may start with.
OBS_NAME_PREFIXES = {
    "adaptive", "bench", "calibration", "cdc", "cost_cache",
    "distributed", "execution", "executor", "generation", "journal",
    "lint", "maintenance", "obs", "parallel", "resilience", "selection",
    "storage", "warehouse",
}

#: Lowercase dot-separated with at least two segments, e.g.
#: ``resilience.refresh.ticks``.
_OBS_NAME = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)+$")

_SUPPRESSION = re.compile(
    r"#\s*lint:\s*ignore(?:\[(?P<ids>[A-Za-z0-9_,\s]+)\])?"
)


@dataclass
class Suppressions:
    """Per-line rule suppressions parsed from ``# lint: ignore`` comments."""

    by_line: Dict[int, Optional[Set[str]]] = field(default_factory=dict)
    # value None means "all rules suppressed on this line"

    @classmethod
    def parse(cls, source: str) -> "Suppressions":
        out = cls()
        for lineno, line in enumerate(source.splitlines(), start=1):
            match = _SUPPRESSION.search(line)
            if match is None:
                continue
            ids = match.group("ids")
            if ids is None:
                out.by_line[lineno] = None
            else:
                out.by_line[lineno] = {
                    part.strip().upper()
                    for part in ids.split(",")
                    if part.strip()
                }
        return out

    def covers(self, line: Optional[int], rule_id: str) -> bool:
        if line is None or line not in self.by_line:
            return False
        ids = self.by_line[line]
        return ids is None or rule_id.upper() in ids


@dataclass
class CodeContext:
    """One analyzed module: its AST, source, and display path."""

    path: str
    tree: ast.Module
    suppressions: Suppressions

    def location(self, node: ast.AST) -> Location:
        return Location(
            file=self.path,
            line=getattr(node, "lineno", None),
            column=getattr(node, "col_offset", None),
        )


def _is_set_expression(node: ast.AST) -> bool:
    """Whether ``node`` is *syntactically* a set (display, comprehension,
    or a ``set()``/``frozenset()`` call).  Name/attribute references are
    not resolved — this is a conservative, no-false-positive check."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def _call_name(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Name):
        return node.func.id
    return None


def _has_keyword(node: ast.Call, name: str) -> bool:
    return any(kw.arg == name for kw in node.keywords)


# ---------------------------------------------------------------------------
# rules
# ---------------------------------------------------------------------------
@register_rule(
    "C101",
    scope="code",
    severity=Severity.ERROR,
    summary="iteration over a bare set feeds ordered output",
    paper="PR 2 determinism contract (bit-identical to serial)",
)
def check_set_iteration(ctx: CodeContext) -> Iterator[Diagnostic]:
    rule = get_rule("C101")
    for node in ast.walk(ctx.tree):
        target: Optional[ast.AST] = None
        if isinstance(node, (ast.For, ast.AsyncFor)):
            target = node.iter
        elif isinstance(node, ast.comprehension):
            target = node.iter
        elif isinstance(node, ast.Call):
            name = _call_name(node)
            if (
                name in ORDERING_SINKS
                and node.args
                and _is_set_expression(node.args[0])
            ):
                target = node.args[0]
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "join"
                and node.args
                and _is_set_expression(node.args[0])
            ):
                target = node.args[0]
        if target is not None and _is_set_expression(target):
            yield rule.diagnostic(
                "iterating a set expression produces hash-dependent order",
                location=ctx.location(target),
                hint="sort it first (sorted(...)) or build a list/tuple",
            )


@register_rule(
    "C102",
    scope="code",
    severity=Severity.ERROR,
    summary="un-keyed sorted/min/max over an unordered collection",
    paper="Figure 9 assumes a deterministic candidate order",
)
def check_unkeyed_ordering(ctx: CodeContext) -> Iterator[Diagnostic]:
    rule = get_rule("C102")
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = _call_name(node)
        if name not in ("sorted", "min", "max"):
            continue
        if not node.args or not _is_set_expression(node.args[0]):
            continue
        if _has_keyword(node, "key"):
            continue
        yield rule.diagnostic(
            f"{name}() over a set without key=; ties and incomparable "
            f"elements resolve by hash order",
            location=ctx.location(node),
            hint="pass key= with a total, deterministic order",
        )


@register_rule(
    "C103",
    scope="code",
    severity=Severity.ERROR,
    summary="unseeded module-level random usage",
    paper="DesignConfig.seed must fully determine randomized strategies",
)
def check_unseeded_random(ctx: CodeContext) -> Iterator[Diagnostic]:
    rule = get_rule("C103")
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ImportFrom) and node.module == "random":
            drawn = sorted(
                alias.name
                for alias in node.names
                if alias.name in RANDOM_DRAW_NAMES
            )
            if drawn:
                yield rule.diagnostic(
                    f"importing {', '.join(drawn)} from random uses the "
                    f"unseeded global generator",
                    location=ctx.location(node),
                    hint="instantiate random.Random(seed) and call its "
                    "methods",
                )
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "random"
            and node.func.attr not in SAFE_RANDOM_ATTRS
        ):
            yield rule.diagnostic(
                f"random.{node.func.attr}() draws from the unseeded global "
                f"generator",
                location=ctx.location(node),
                hint="thread a random.Random(seed) instance through instead",
            )


@register_rule(
    "C104",
    scope="code",
    severity=Severity.ERROR,
    summary="wall-clock read on a cost/design path",
    paper="Section 4.1 costs are functions of statistics, not of time",
)
def check_wall_clock(ctx: CodeContext) -> Iterator[Diagnostic]:
    rule = get_rule("C104")
    parts = Path(ctx.path).parts
    if any(part in WALL_CLOCK_EXEMPT_PARTS for part in parts):
        return
    for node in ast.walk(ctx.tree):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
            continue
        owner = node.func.value
        owner_name: Optional[str] = None
        if isinstance(owner, ast.Name):
            owner_name = owner.id
        elif isinstance(owner, ast.Attribute):
            owner_name = owner.attr  # e.g. datetime.datetime.now
        if owner_name is None:
            continue
        if (owner_name, node.func.attr) in WALL_CLOCK_CALLS:
            yield rule.diagnostic(
                f"{owner_name}.{node.func.attr}() reads the wall clock on a "
                f"design/cost path",
                location=ctx.location(node),
                hint="move timing into repro.obs spans, or inject the value",
            )


@register_rule(
    "C105",
    scope="code",
    severity=Severity.ERROR,
    summary="mutable default argument",
    paper="shared mutable state makes results depend on call history",
)
def check_mutable_defaults(ctx: CodeContext) -> Iterator[Diagnostic]:
    rule = get_rule("C105")
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            mutable = isinstance(
                default, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                          ast.DictComp, ast.SetComp)
            ) or (
                isinstance(default, ast.Call)
                and _call_name(default) in ("list", "dict", "set", "bytearray")
            )
            if mutable:
                yield rule.diagnostic(
                    f"function {node.name!r} has a mutable default argument",
                    location=ctx.location(default),
                    hint="default to None and create the value inside the "
                    "function",
                )


@register_rule(
    "O001",
    scope="code",
    severity=Severity.ERROR,
    summary="obs metric/event name breaks the naming contract",
    paper="docs/observability.md metric and event-name catalog",
)
def check_obs_names(ctx: CodeContext) -> Iterator[Diagnostic]:
    """Metric/span/journal names must be lowercase dot-separated with a
    known subsystem prefix, so instrumented series can't silently
    fragment into near-duplicates (``Executor.QueryIO`` vs
    ``executor.query_io``)."""
    rule = get_rule("O001")
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call) or not node.args:
            continue
        if isinstance(node.func, ast.Attribute):
            method = node.func.attr
        elif isinstance(node.func, ast.Name):
            method = node.func.id
        else:
            continue
        if method not in OBS_NAME_METHODS:
            continue
        first = node.args[0]
        if not (isinstance(first, ast.Constant) and isinstance(first.value, str)):
            continue
        name = first.value
        if not _OBS_NAME.match(name):
            yield rule.diagnostic(
                f"obs name {name!r} is not lowercase dot-separated "
                f"(<subsystem>.<metric>)",
                location=ctx.location(first),
                hint="use lowercase segments joined by dots, e.g. "
                "'executor.query_io'",
            )
            continue
        prefix = name.split(".", 1)[0]
        if prefix not in OBS_NAME_PREFIXES:
            yield rule.diagnostic(
                f"obs name {name!r} has unknown subsystem prefix "
                f"{prefix!r}",
                location=ctx.location(first),
                hint=f"use a registered prefix ({', '.join(sorted(OBS_NAME_PREFIXES))}) "
                "or add the new subsystem to OBS_NAME_PREFIXES",
            )


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------
def fingerprint_diagnostics(
    diagnostics: Sequence[Diagnostic], source_lines: Sequence[str]
) -> List[Diagnostic]:
    """Stamp stable fingerprints onto source-located diagnostics.

    The fingerprint hashes the rule id, the path, the
    whitespace-normalized *text* of the flagged line, and an occurrence
    index for identical lines — never the line number — so a finding
    keeps its identity when unrelated edits move it (the property SARIF
    ``partialFingerprints`` and the baseline file rely on).
    """
    counts: Dict[Tuple[str, str, str], int] = {}
    out: List[Diagnostic] = []
    for diagnostic in diagnostics:
        location = diagnostic.location
        line_text = ""
        if location.line is not None and 1 <= location.line <= len(source_lines):
            line_text = " ".join(source_lines[location.line - 1].split())
        key = (diagnostic.rule, location.file or "", line_text)
        index = counts.get(key, 0)
        counts[key] = index + 1
        out.append(
            replace(
                diagnostic,
                fingerprint=fingerprint_of(*key, str(index)),
            )
        )
    return out


def lint_source(source: str, path: str = "<string>") -> LintReport:
    """Run every code-scope rule over one module's source text."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        raise LintError(f"cannot parse {path}: {error}") from error
    ctx = CodeContext(
        path=path, tree=tree, suppressions=Suppressions.parse(source)
    )
    report = LintReport(target=path)
    findings: List[Diagnostic] = []
    for rule in rules_for("code"):
        for diagnostic in rule.check(ctx):
            if ctx.suppressions.covers(diagnostic.location.line, diagnostic.rule):
                report.suppressed += 1
            else:
                findings.append(diagnostic)
    report.diagnostics = fingerprint_diagnostics(
        findings, source.splitlines()
    )
    return report


def iter_python_files(root: Path) -> List[Path]:
    """Every ``*.py`` under ``root`` (or ``root`` itself), sorted."""
    if root.is_file():
        return [root]
    return sorted(root.rglob("*.py"))


def lint_paths(paths: Sequence[Path], base: Optional[Path] = None) -> LintReport:
    """Run the code analyzer over files/directories; paths are made
    relative to ``base`` (when given) for stable diagnostic locations."""
    report = LintReport(target=", ".join(str(p) for p in paths))
    for root in paths:
        for file_path in iter_python_files(Path(root)):
            display = file_path
            if base is not None:
                try:
                    display = file_path.relative_to(base)
                except ValueError:
                    display = file_path
            file_report = lint_source(
                file_path.read_text(encoding="utf-8"), path=str(display)
            )
            report.merge(file_report)
    report.diagnostics = report.sorted()
    return report


def lint_self() -> LintReport:
    """Lint the installed ``repro`` package sources (``--self``).

    Since lint v2 this runs all three source analyzers — the per-file
    code rules plus the package-wide concurrency (X1xx) and effect
    (E2xx) passes — by delegating to the incremental engine (uncached
    here; the CLI threads cache/diff options through directly).
    """
    from repro.lint.incremental import lint_self_incremental

    return lint_self_incremental()
