"""Concurrency/shared-state analyzer — rules X101-X106.

:mod:`repro.parallel` promises that parallel design runs are
bit-identical to serial ones.  That promise only holds if the callables
submitted to executors are *effectively pure*: a function that mutates a
module global or a captured instance produces backend-dependent results
(threads interleave, processes silently mutate pickled copies).  This
analyzer makes the contract checkable: it builds a package-wide module
index, finds every ``executor.map(fn, ...)`` submission site, resolves
``fn`` through a name-based interprocedural call graph, and flags shared
mutation anywhere in the reachable code.

Rules:

* ``X101`` — a parallel-submitted function (or anything it calls)
  mutates a module-level global;
* ``X102`` — a parallel-submitted function mutates captured instance or
  closure state (``self.x = ...``, mutating calls on ``self``-rooted
  attribute chains, ``nonlocal`` rebinding);
* ``X103`` — cache write (``CostCache`` / ``BuildSideCache`` /
  ``IndexManager``: ``store`` / ``invalidate`` / ``ensure`` / ``clear``)
  outside the known invalidation-site modules;
* ``X104`` — nondeterministically seeded RNG: ``random.Random()`` with
  no arguments, or an argument-less ``.seed()`` call;
* ``X105`` — ``time.sleep`` outside obs/benchmarks (schedulers run on
  the logical tick clock, never the wall clock);
* ``X106`` — raw ``threading`` / ``multiprocessing`` /
  ``concurrent.futures`` primitives outside :mod:`repro.parallel` and
  :mod:`repro.obs` (all other code must go through the executor API).

The analysis is conservative by construction: names it cannot resolve
are skipped, so every finding points at code that *definitely* matches
the pattern.  Findings in deliberately-shared structures (the
``CostCache`` GIL-sharing contract) are suppressed in place with
justifying ``# lint: ignore[...]`` comments.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import LintError
from repro.lint.code import Suppressions
from repro.lint.diagnostics import (
    Diagnostic,
    LintReport,
    Location,
    Severity,
    fingerprint_of,
    get_rule,
    register_rule,
    rules_for,
)

#: Methods that mutate their receiver in place.
MUTATING_METHODS = {
    "append", "extend", "add", "update", "insert", "remove", "discard",
    "pop", "popitem", "clear", "setdefault", "sort", "reverse",
}

#: Cache-owner attribute names whose write methods X103 guards.
CACHE_ATTRS = {"cost_cache", "build_cache", "indexes"}

#: Cache write methods (reads like ``lookup``/``get`` are always fine).
CACHE_WRITE_METHODS = {"store", "invalidate", "ensure", "clear"}

#: Module path suffixes allowed to write caches: the owners themselves
#: plus the documented invalidation sites (docs/lint.md lists them).
CACHE_SITE_SUFFIXES = (
    "repro/mvpp/cost.py",           # CostCache owner
    "repro/executor/physical.py",   # BuildSideCache owner
    "repro/executor/indexes.py",    # IndexManager owner
    "repro/executor/engine.py",     # engine wires its own caches
    "repro/warehouse/warehouse.py", # sync_statistics / load / update sites
    "repro/resilience/scheduler.py",  # refresh commit invalidation
    "repro/mvpp/generation.py",     # design-run cache ownership
    "repro/cdc/streaming.py",       # streaming delta commit invalidation
)

#: Raw concurrency primitives X106 bans outside repro.parallel/repro.obs.
RAW_PRIMITIVES = {
    "Thread", "Lock", "RLock", "Semaphore", "BoundedSemaphore", "Event",
    "Condition", "Barrier", "Timer", "Process", "Pool",
    "ThreadPoolExecutor", "ProcessPoolExecutor",
}

#: Modules whose own internals are exempt from submission analysis and
#: X106 (the executor layer IS the sanctioned primitive user) — and the
#: obs layer, whose thread-local tracing state is synchronization, not
#: shared business state.
PRIMITIVE_EXEMPT_SUFFIXES = ("repro/parallel", "repro/obs")

#: Path fragments exempt from X105 (same contract as C104's exemption).
SLEEP_EXEMPT_PARTS = ("obs", "benchmarks")


def _attr_chain(node: ast.AST) -> Optional[List[str]]:
    """``self.cache.store`` -> ["self", "cache", "store"]; None when the
    chain contains anything but names/attributes."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return None


@dataclass
class FunctionInfo:
    """One function or method in the package index."""

    name: str  # "func" or "Class.method"
    module: "ModuleInfo"
    node: ast.AST  # FunctionDef / AsyncFunctionDef / Lambda
    class_name: Optional[str] = None

    @property
    def qualname(self) -> str:
        return f"{self.module.dotted}:{self.name}"

    @property
    def is_method(self) -> bool:
        return self.class_name is not None


@dataclass
class ModuleInfo:
    """One parsed module: AST plus the name-resolution indexes."""

    path: str  # display path, e.g. "repro/mvpp/cost.py"
    dotted: str  # "repro.mvpp.cost"
    tree: ast.Module
    source_lines: List[str]
    suppressions: Suppressions
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, Set[str]] = field(default_factory=dict)
    module_globals: Set[str] = field(default_factory=set)
    imports: Dict[str, str] = field(default_factory=dict)

    def location(self, node: ast.AST) -> Location:
        return Location(
            file=self.path,
            line=getattr(node, "lineno", None),
            column=getattr(node, "col_offset", None),
        )


def _index_module(
    path: str, dotted: str, source: str
) -> ModuleInfo:
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        raise LintError(f"cannot parse {path}: {error}") from error
    info = ModuleInfo(
        path=path,
        dotted=dotted,
        tree=tree,
        source_lines=source.splitlines(),
        suppressions=Suppressions.parse(source),
    )
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.functions[node.name] = FunctionInfo(node.name, info, node)
        elif isinstance(node, ast.ClassDef):
            methods = set()
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    methods.add(item.name)
                    key = f"{node.name}.{item.name}"
                    info.functions[key] = FunctionInfo(
                        key, info, item, class_name=node.name
                    )
            info.classes[node.name] = methods
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Name):
                    info.module_globals.add(target.id)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                info.imports[alias.asname or alias.name.split(".")[0]] = (
                    alias.name
                )
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.level == 0:
                for alias in node.names:
                    info.imports[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )
    return info


@dataclass
class PackageContext:
    """The package-wide index the concurrency/effect rules analyze."""

    modules: Dict[str, ModuleInfo] = field(default_factory=dict)  # by dotted

    @classmethod
    def build(cls, files: Sequence[Tuple[str, str, str]]) -> "PackageContext":
        """``files`` is (display_path, dotted_module, source) triples."""
        ctx = cls()
        for path, dotted, source in files:
            ctx.modules[dotted] = _index_module(path, dotted, source)
        return ctx

    @classmethod
    def from_package(cls, package_root: Path, base: Path) -> "PackageContext":
        files = []
        for file_path in sorted(package_root.rglob("*.py")):
            display = file_path.relative_to(base)
            dotted = ".".join(display.with_suffix("").parts)
            if dotted.endswith(".__init__"):
                dotted = dotted[: -len(".__init__")]
            files.append(
                (str(display), dotted, file_path.read_text(encoding="utf-8"))
            )
        return cls.build(files)

    # ---------------------------------------------------------- resolution
    def resolve_function(
        self, module: ModuleInfo, name: str
    ) -> Optional[FunctionInfo]:
        """A bare name to a function: local first, then via imports."""
        if name in module.functions:
            return module.functions[name]
        imported = module.imports.get(name)
        if imported and "." in imported:
            target_module, _, attr = imported.rpartition(".")
            info = self.modules.get(target_module)
            if info is not None:
                return info.functions.get(attr)
        return None

    def resolve_method(
        self, module: ModuleInfo, method: str
    ) -> Optional[FunctionInfo]:
        """``obj.method`` for a non-self receiver: resolve through the
        classes visible in ``module`` (defined or imported).  Only an
        *unambiguous* match resolves — two visible classes sharing the
        method name yield None."""
        candidates: List[FunctionInfo] = []
        for class_name, methods in module.classes.items():
            if method in methods:
                candidates.append(module.functions[f"{class_name}.{method}"])
        for local, dotted in module.imports.items():
            target_module, _, attr = dotted.rpartition(".")
            info = self.modules.get(target_module)
            if info is not None and attr in info.classes:
                if method in info.classes[attr]:
                    candidates.append(info.functions[f"{attr}.{method}"])
        if len(candidates) == 1:
            return candidates[0]
        return None

    def reachable(self, start: FunctionInfo) -> List[FunctionInfo]:
        """BFS over the name-resolved call graph from ``start``."""
        seen: Set[str] = {start.qualname}
        queue = [start]
        order = [start]
        while queue:
            current = queue.pop(0)
            module = current.module
            for node in ast.walk(current.node):
                if not isinstance(node, ast.Call):
                    continue
                target: Optional[FunctionInfo] = None
                if isinstance(node.func, ast.Name):
                    target = self.resolve_function(module, node.func.id)
                elif isinstance(node.func, ast.Attribute) and isinstance(
                    node.func.value, ast.Name
                ):
                    receiver = node.func.value.id
                    if receiver == "self" and current.class_name:
                        key = f"{current.class_name}.{node.func.attr}"
                        target = module.functions.get(key)
                if target is not None and target.qualname not in seen:
                    seen.add(target.qualname)
                    queue.append(target)
                    order.append(target)
        return order

    # ---------------------------------------------------------- submissions
    def submissions(self) -> List[Tuple[ModuleInfo, ast.Call, FunctionInfo]]:
        """Every ``executor.map(fn, ...)`` site with a resolved ``fn``.

        Detection is by receiver name: a ``.map()`` call on a name
        containing ``executor`` is a submission.  The executor layer's
        own internal ``pool.map`` plumbing is exempt.
        """
        out = []
        for module in self.modules.values():
            if module.path.startswith("repro/parallel"):
                continue
            for node in ast.walk(module.tree):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "map"
                    and isinstance(node.func.value, ast.Name)
                    and "executor" in node.func.value.id.lower()
                    and node.args
                ):
                    continue
                fn = node.args[0]
                target: Optional[FunctionInfo] = None
                if isinstance(fn, ast.Name):
                    target = self.resolve_function(module, fn.id)
                elif isinstance(fn, ast.Attribute) and isinstance(
                    fn.value, ast.Name
                ):
                    if fn.value.id == "self":
                        enclosing = self._enclosing_class(module, node)
                        if enclosing:
                            target = module.functions.get(
                                f"{enclosing}.{fn.attr}"
                            )
                    else:
                        target = self.resolve_method(module, fn.attr)
                elif isinstance(fn, ast.Lambda):
                    target = FunctionInfo("<lambda>", module, fn)
                if target is not None:
                    out.append((module, node, target))
        return out

    @staticmethod
    def _enclosing_class(module: ModuleInfo, node: ast.AST) -> Optional[str]:
        for top in module.tree.body:
            if isinstance(top, ast.ClassDef):
                for descendant in ast.walk(top):
                    if descendant is node:
                        return top.name
        return None


# ---------------------------------------------------------------------------
# mutation detection inside one function
# ---------------------------------------------------------------------------
def _local_names(fn_node: ast.AST) -> Set[str]:
    """Parameters and locally-bound names (which shadow module globals)."""
    out: Set[str] = set()
    args = getattr(fn_node, "args", None)
    if args is not None:
        for arg in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        ):
            out.add(arg.arg)
        if args.vararg:
            out.add(args.vararg.arg)
        if args.kwarg:
            out.add(args.kwarg.arg)
    declared_global: Set[str] = set()
    for node in ast.walk(fn_node):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            out.add(node.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            for target in ast.walk(node.target):
                if isinstance(target, ast.Name):
                    out.add(target.id)
    return out - declared_global


def _global_mutations(
    fn: FunctionInfo,
) -> Iterator[Tuple[ast.AST, str, str]]:
    """(node, global name, kind) for each module-global mutation in ``fn``."""
    module_globals = fn.module.module_globals
    locals_ = _local_names(fn.node)
    declared_global: Set[str] = set()
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
    for node in ast.walk(fn.node):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Name) and target.id in declared_global:
                    yield node, target.id, "rebinds"
                elif isinstance(target, (ast.Subscript, ast.Attribute)):
                    chain = _attr_chain(target)
                    base = None
                    if chain:
                        base = chain[0]
                    elif isinstance(target, ast.Subscript) and isinstance(
                        target.value, ast.Name
                    ):
                        base = target.value.id
                    if (
                        base
                        and base in module_globals
                        and base not in locals_
                    ):
                        yield node, base, "writes into"
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in MUTATING_METHODS
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in module_globals
            and node.func.value.id not in locals_
        ):
            yield node, node.func.value.id, f".{node.func.attr}() mutates"


def _instance_mutations(fn: FunctionInfo) -> Iterator[Tuple[ast.AST, str]]:
    """(node, description) for captured-state mutations in ``fn``."""
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Nonlocal):
            yield node, f"rebinds closure variable(s) {', '.join(node.names)}"
        if not fn.is_method and fn.name != "<lambda>":
            continue
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                chain = _attr_chain(
                    target.value if isinstance(target, ast.Subscript) else target
                )
                if chain and chain[0] == "self" and len(chain) > 1:
                    if isinstance(target, ast.Subscript):
                        yield node, f"writes into self.{'.'.join(chain[1:])}"
                    else:
                        yield node, f"assigns self.{'.'.join(chain[1:])}"
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in MUTATING_METHODS
        ):
            chain = _attr_chain(node.func.value)
            if chain and chain[0] == "self":
                yield (
                    node,
                    f".{node.func.attr}() mutates "
                    f"self.{'.'.join(chain[1:])}",
                )


# ---------------------------------------------------------------------------
# rules
# ---------------------------------------------------------------------------
@register_rule(
    "X101",
    scope="concurrency",
    severity=Severity.ERROR,
    summary="parallel-submitted code mutates a module global",
    paper="PR 2 determinism contract: parallel == serial, bit-identical",
)
def check_global_mutation(ctx: PackageContext) -> Iterator[Diagnostic]:
    rule = get_rule("X101")
    for module, site, target in ctx.submissions():
        for fn in ctx.reachable(target):
            for node, name, kind in _global_mutations(fn):
                yield rule.diagnostic(
                    f"{fn.qualname} {kind} module global {name!r} while "
                    f"submitted to an executor at {module.path}:"
                    f"{site.lineno}",
                    location=fn.module.location(node),
                    hint="pass state in through the payload and return "
                    "results instead of mutating shared state",
                )


@register_rule(
    "X102",
    scope="concurrency",
    severity=Severity.ERROR,
    summary="parallel-submitted code mutates captured instance/closure state",
    paper="process executors mutate pickled copies; threads interleave",
)
def check_captured_mutation(ctx: PackageContext) -> Iterator[Diagnostic]:
    rule = get_rule("X102")
    for module, site, target in ctx.submissions():
        for fn in ctx.reachable(target):
            for node, description in _instance_mutations(fn):
                yield rule.diagnostic(
                    f"{fn.qualname} {description} while submitted to an "
                    f"executor at {module.path}:{site.lineno}",
                    location=fn.module.location(node),
                    hint="return the value and apply it on the submitting "
                    "side, or document the GIL-atomicity contract with a "
                    "suppression",
                )


@register_rule(
    "X103",
    scope="concurrency",
    severity=Severity.ERROR,
    summary="cache write outside the known invalidation sites",
    paper="stale CostCache/BuildSideCache entries silently corrupt costs",
)
def check_cache_writes(ctx: PackageContext) -> Iterator[Diagnostic]:
    rule = get_rule("X103")
    for module in ctx.modules.values():
        if module.path.endswith(CACHE_SITE_SUFFIXES):
            continue
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in CACHE_WRITE_METHODS
            ):
                continue
            chain = _attr_chain(node.func.value)
            if not chain or chain[-1] not in CACHE_ATTRS:
                continue
            yield rule.diagnostic(
                f"{'.'.join(chain)}.{node.func.attr}() writes a shared "
                f"cache outside the registered invalidation sites",
                location=module.location(node),
                hint="route the write through the cache owner "
                "(warehouse/scheduler/engine) or register the module in "
                "CACHE_SITE_SUFFIXES with a review",
            )


@register_rule(
    "X104",
    scope="concurrency",
    severity=Severity.ERROR,
    summary="RNG constructed or re-seeded without an explicit seed",
    paper="DesignConfig.seed must fully determine randomized behavior",
)
def check_unseeded_rng(ctx: PackageContext) -> Iterator[Diagnostic]:
    rule = get_rule("X104")
    for module in ctx.modules.values():
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or node.args or node.keywords:
                continue
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "Random"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "random"
            ):
                yield rule.diagnostic(
                    "random.Random() with no arguments seeds from the OS — "
                    "runs become unreproducible",
                    location=module.location(node),
                    hint="thread the config seed: random.Random(seed)",
                )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "seed"
            ):
                yield rule.diagnostic(
                    "argument-less .seed() re-seeds from the OS",
                    location=module.location(node),
                    hint="pass the config seed explicitly",
                )


@register_rule(
    "X105",
    scope="concurrency",
    severity=Severity.ERROR,
    summary="wall-clock sleep on scheduler/adaptive code",
    paper="RefreshScheduler runs on the logical tick clock (PR 4)",
)
def check_wall_sleep(ctx: PackageContext) -> Iterator[Diagnostic]:
    rule = get_rule("X105")
    for module in ctx.modules.values():
        if any(part in SLEEP_EXEMPT_PARTS for part in Path(module.path).parts):
            continue
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "sleep"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in ("time", "asyncio")
            ):
                yield rule.diagnostic(
                    f"{node.func.value.id}.sleep() blocks on the wall "
                    f"clock; schedulers advance logical ticks",
                    location=module.location(node),
                    hint="advance the tick clock instead of sleeping",
                )


@register_rule(
    "X106",
    scope="concurrency",
    severity=Severity.ERROR,
    summary="raw threading/multiprocessing primitive outside repro.parallel",
    paper="all fan-out goes through the executor API (PR 2)",
)
def check_raw_primitives(ctx: PackageContext) -> Iterator[Diagnostic]:
    rule = get_rule("X106")
    for module in ctx.modules.values():
        if module.path.startswith(PRIMITIVE_EXEMPT_SUFFIXES):
            continue
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name: Optional[str] = None
            if (
                isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id
                in ("threading", "multiprocessing", "futures", "concurrent")
            ):
                name = node.func.attr
            elif isinstance(node.func, ast.Name):
                imported = module.imports.get(node.func.id, "")
                if imported.startswith(
                    ("threading.", "multiprocessing.", "concurrent.futures.")
                ):
                    name = node.func.id
            if name in RAW_PRIMITIVES:
                yield rule.diagnostic(
                    f"raw concurrency primitive {name} constructed outside "
                    f"repro.parallel",
                    location=module.location(node),
                    hint="use resolve_executor()/Executor.map so backends "
                    "stay swappable and deterministic",
                )


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------
def _attach_fingerprints(
    diagnostics: List[Diagnostic], ctx: PackageContext
) -> List[Diagnostic]:
    lines_by_path = {
        module.path: module.source_lines for module in ctx.modules.values()
    }
    counts: Dict[Tuple[str, str, str], int] = {}
    out = []
    for diagnostic in diagnostics:
        location = diagnostic.location
        context = ""
        if (
            location.file in lines_by_path
            and location.line is not None
            and 1 <= location.line <= len(lines_by_path[location.file])
        ):
            context = " ".join(
                lines_by_path[location.file][location.line - 1].split()
            )
        key = (diagnostic.rule, location.file or "", context)
        index = counts.get(key, 0)
        counts[key] = index + 1
        out.append(
            replace(
                diagnostic,
                fingerprint=fingerprint_of(
                    diagnostic.rule, location.file or "", context, str(index)
                ),
            )
        )
    return out


def lint_package_scope(ctx: PackageContext, scope: str) -> LintReport:
    """Run every rule of a package-level scope over a built context."""
    report = LintReport(target=f"{scope} analysis over {len(ctx.modules)} modules")
    raw: List[Diagnostic] = []
    for rule in rules_for(scope):
        for diagnostic in rule.check(ctx):
            module = next(
                (
                    m
                    for m in ctx.modules.values()
                    if m.path == diagnostic.location.file
                ),
                None,
            )
            if module is not None and module.suppressions.covers(
                diagnostic.location.line, diagnostic.rule
            ):
                report.suppressed += 1
            else:
                raw.append(diagnostic)
    report.diagnostics = _attach_fingerprints(raw, ctx)
    return report


def lint_concurrency(ctx: PackageContext) -> LintReport:
    """Run the X1xx rules over a package context."""
    return lint_package_scope(ctx, "concurrency")
