"""Shared diagnostic types and the string-keyed lint-rule registry.

The lint subsystem has two analyzer layers (semantic MVPP/workload
linting in :mod:`repro.lint.semantic`, the determinism-enforcing code
analyzer in :mod:`repro.lint.code`) but one vocabulary: every finding is
a :class:`Diagnostic` carrying a rule id, a :class:`Severity`, a
:class:`Location` (a graph vertex or a source line), a message, and an
optional fix hint.  Rules register themselves under their id exactly
like selection strategies register under their name
(:func:`repro.mvpp.strategies.register_strategy`), so applications can
list, look up, or override rules by string key.

Severity gates exit codes: a :class:`LintReport` with any
``Severity.ERROR`` diagnostic makes ``repro lint`` exit nonzero;
warnings and notes are informational.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import LintError


def fingerprint_of(*parts: str) -> str:
    """A stable 16-hex-digit fingerprint over the given identity parts.

    Fingerprints deliberately exclude line numbers: a finding keeps its
    identity when unrelated edits move it, which is what lets SARIF
    ``partialFingerprints`` and the baseline file survive refactors.
    """
    digest = hashlib.sha256("\x1f".join(parts).encode("utf-8"))
    return digest.hexdigest()[:16]


class Severity(enum.IntEnum):
    """Diagnostic severity; ordering allows ``severity >= Severity.ERROR``."""

    NOTE = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        return self.name.lower()

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls[text.upper()]
        except KeyError:
            raise LintError(
                f"unknown severity {text!r}; expected one of "
                f"{', '.join(s.label for s in cls)}"
            ) from None


@dataclass(frozen=True)
class Location:
    """Where a diagnostic points.

    Semantic diagnostics locate a vertex in an MVPP (``mvpp`` and
    ``vertex``); code diagnostics locate a source line (``file``,
    ``line``, ``column``).  Either side may be empty — a workload-level
    finding has no location at all.
    """

    file: Optional[str] = None
    line: Optional[int] = None
    column: Optional[int] = None
    mvpp: Optional[str] = None
    vertex: Optional[str] = None

    def render(self) -> str:
        if self.file is not None:
            line = f":{self.line}" if self.line is not None else ""
            column = f":{self.column}" if self.column is not None else ""
            return f"{self.file}{line}{column}"
        if self.mvpp is not None or self.vertex is not None:
            mvpp = self.mvpp or "?"
            return f"{mvpp}::{self.vertex}" if self.vertex else mvpp
        return "<workload>"


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding."""

    rule: str
    severity: Severity
    message: str
    location: Location = field(default_factory=Location)
    hint: str = ""
    #: Stable identity across line moves — sha256 over the rule id, the
    #: normalized path, and the finding's source context (not its line
    #: number).  Empty when the producing analyzer predates fingerprints.
    fingerprint: str = ""

    def render(self) -> str:
        text = (
            f"{self.location.render()}: {self.severity.label}"
            f" [{self.rule}] {self.message}"
        )
        if self.hint:
            text += f"  (hint: {self.hint})"
        return text


# ---------------------------------------------------------------------------
# the rule registry — mirrors the strategy registry in mvpp/strategies.py
# ---------------------------------------------------------------------------
#: Analyzer layers a rule can belong to.  Semantic scopes (including
#: ``adaptive``, which inspects an AdaptivePolicy) receive a
#: :class:`repro.lint.semantic.SemanticContext`; ``code`` rules receive a
#: :class:`repro.lint.code.CodeContext`; ``plan`` rules receive a
#: :class:`repro.lint.plans.PlanContext`; ``concurrency`` and ``effect``
#: rules receive a :class:`repro.lint.concurrency.PackageContext`.
SCOPES = (
    "workload", "mvpp", "design", "adaptive", "streaming", "code",
    "plan", "concurrency", "effect",
)

RuleCheck = Callable[..., Iterable[Diagnostic]]


@dataclass(frozen=True)
class Rule:
    """A registered lint rule: identity, default severity, and its check."""

    rule_id: str
    scope: str
    severity: Severity
    summary: str
    check: RuleCheck
    paper: str = ""  # paper/reference anchor shown in the rule catalog

    def diagnostic(
        self,
        message: str,
        location: Optional[Location] = None,
        hint: str = "",
        severity: Optional[Severity] = None,
    ) -> Diagnostic:
        """A diagnostic pre-filled with this rule's id and severity."""
        return Diagnostic(
            rule=self.rule_id,
            severity=severity or self.severity,
            message=message,
            location=location or Location(),
            hint=hint,
        )


_REGISTRY: Dict[str, Rule] = {}


def register_rule(
    rule_id: str,
    scope: str,
    severity: Severity,
    summary: str,
    paper: str = "",
) -> Callable[[RuleCheck], RuleCheck]:
    """Register a lint rule under ``rule_id`` (decorator).

    Re-registering an id overrides it (last registration wins), matching
    the strategy registry's contract, so applications can swap in
    stricter or looser variants of a shipped rule.
    """
    if scope not in SCOPES:
        raise LintError(f"unknown rule scope {scope!r}; expected one of {SCOPES}")

    def decorator(fn: RuleCheck) -> RuleCheck:
        _REGISTRY[rule_id] = Rule(
            rule_id=rule_id,
            scope=scope,
            severity=severity,
            summary=summary,
            check=fn,
            paper=paper,
        )
        return fn

    return decorator


def get_rule(rule_id: str) -> Rule:
    """Look up a registered rule; raises with the known ids."""
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise LintError(
            f"unknown lint rule {rule_id!r}; registered: {', '.join(rule_ids())}"
        ) from None


def rule_ids() -> Tuple[str, ...]:
    """Registered rule ids, in registration order."""
    return tuple(_REGISTRY)


def rules_for(scope: str) -> List[Rule]:
    """Every registered rule belonging to ``scope``, in registration order."""
    if scope not in SCOPES:
        raise LintError(f"unknown rule scope {scope!r}; expected one of {SCOPES}")
    return [rule for rule in _REGISTRY.values() if rule.scope == scope]


def all_rules() -> List[Rule]:
    return list(_REGISTRY.values())


# ---------------------------------------------------------------------------
# reports
# ---------------------------------------------------------------------------
@dataclass
class LintReport:
    """The outcome of one lint run: diagnostics plus what was analyzed."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    target: str = ""  # human-readable description of what was linted
    suppressed: int = 0  # findings silenced by per-line suppressions
    baselined: int = 0  # findings matched (and hidden) by a baseline file

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def merge(self, other: "LintReport") -> None:
        self.diagnostics.extend(other.diagnostics)
        self.suppressed += other.suppressed
        self.baselined += other.baselined

    def by_severity(self, severity: Severity) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is severity]

    @property
    def errors(self) -> List[Diagnostic]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> List[Diagnostic]:
        return self.by_severity(Severity.WARNING)

    @property
    def has_errors(self) -> bool:
        return any(d.severity >= Severity.ERROR for d in self.diagnostics)

    @property
    def exit_code(self) -> int:
        """Process exit code: 1 on any error-severity finding, else 0."""
        return 1 if self.has_errors else 0

    def counts(self) -> Dict[str, int]:
        """``{severity label: count}`` over all diagnostics."""
        out = {severity.label: 0 for severity in Severity}
        for diagnostic in self.diagnostics:
            out[diagnostic.severity.label] += 1
        return out

    def sorted(self) -> List[Diagnostic]:
        """Diagnostics ordered severity-descending, then by location/rule."""
        return sorted(
            self.diagnostics,
            key=lambda d: (
                -int(d.severity),
                d.location.file or "",
                d.location.line or 0,
                d.location.mvpp or "",
                d.location.vertex or "",
                d.rule,
            ),
        )

    def raise_on_errors(self) -> None:
        """Raise :class:`LintError` summarizing error-severity findings."""
        errors = self.errors
        if errors:
            rendered = "; ".join(d.render() for d in errors[:5])
            more = f" (+{len(errors) - 5} more)" if len(errors) > 5 else ""
            raise LintError(
                f"lint found {len(errors)} error(s) in {self.target or 'target'}: "
                f"{rendered}{more}"
            )

    def publish(self) -> None:
        """Export per-rule/severity counters to the :mod:`repro.obs` registry."""
        from repro import obs

        registry = obs.metrics()
        for diagnostic in self.diagnostics:
            registry.counter(
                "lint.diagnostics",
                rule=diagnostic.rule,
                severity=diagnostic.severity.label,
            ).inc()
        if self.suppressed:
            registry.counter("lint.suppressed").inc(self.suppressed)
        if self.baselined:
            registry.counter("lint.baselined").inc(self.baselined)
