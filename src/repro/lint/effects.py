"""Effect/purity analyzer — rules E201-E203.

Figure-9 weight selection assumes ``C(v)`` is a *pure function* of the
statistics catalog and the materialized set: the ``CostCache`` memoizes
on exactly that assumption, and the calibration layer compares estimates
against measurements made much later.  A cost function that mutates the
catalog, performs I/O, or edits its arguments in place breaks both
silently.  This analyzer walks every function reachable from the two
cost-model entry modules (``repro/mvpp/cost.py`` and
``repro/distributed/comm_cost.py``) through the same name-resolved call
graph the concurrency analyzer builds, and flags effects:

* ``E201`` — catalog/statistics mutation: calls to registry mutators
  (``register`` / ``set_relation`` / ``set_cardinality`` / ...) or
  attribute stores on non-``self`` receivers;
* ``E202`` — I/O: ``open`` / ``print`` / ``input``, ``Path`` write
  methods, ``os`` / ``subprocess`` / ``sys.stdout`` calls.  The
  :mod:`repro.obs` metrics side-channel (``publish`` exporting counter
  deltas) is the one sanctioned effect and is exempt by receiver;
* ``E203`` (warning) — in-place mutation of a non-``self`` argument:
  callers observe the edit, so memoized results stop being functions of
  their inputs.

Self-mutation (``self._data[key] = ...``) is deliberately allowed:
memoization inside the cost objects is the mechanism, not the bug.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from repro.lint.concurrency import (
    FunctionInfo,
    PackageContext,
    _attr_chain,
    lint_package_scope,
    MUTATING_METHODS,
)
from repro.lint.diagnostics import (
    Diagnostic,
    LintReport,
    Severity,
    get_rule,
    register_rule,
)

#: Modules whose functions/methods seed the reachability analysis.
COST_ENTRY_SUFFIXES = ("repro/mvpp/cost.py", "repro/distributed/comm_cost.py")

#: Method names that mutate a catalog/statistics registry.
CATALOG_MUTATORS = {
    "register", "register_relation", "unregister", "set_relation",
    "set_cardinality", "set_update_frequency", "set_query_frequency",
    "sync_statistics", "drop", "install_design",
}

#: Receiver roots exempt from E201/E202: the obs export side-channel.
OBS_RECEIVERS = {"obs", "registry"}

#: Builtins that perform I/O.
IO_BUILTINS = {"open", "print", "input"}

#: Method names that read or write the filesystem on any receiver.
IO_METHODS = {
    "write_text", "write_bytes", "read_text", "read_bytes", "unlink",
    "mkdir", "rmdir", "touch",
}

#: Module roots whose calls are I/O by definition.
IO_MODULES = {"os", "subprocess", "shutil", "socket"}


def _cost_entry_functions(ctx: PackageContext) -> List[FunctionInfo]:
    out: List[FunctionInfo] = []
    for module in ctx.modules.values():
        if module.path.endswith(COST_ENTRY_SUFFIXES):
            out.extend(module.functions.values())
    return out


def _reachable_cost_functions(ctx: PackageContext) -> List[FunctionInfo]:
    seen: Set[str] = set()
    out: List[FunctionInfo] = []
    for entry in _cost_entry_functions(ctx):
        for fn in ctx.reachable(entry):
            if fn.qualname not in seen:
                seen.add(fn.qualname)
                out.append(fn)
    return out


@register_rule(
    "E201",
    scope="effect",
    severity=Severity.ERROR,
    summary="cost-model code mutates catalog/statistics state",
    paper="Section 4.1: costs are functions of statistics — not editors",
)
def check_catalog_mutation(ctx: PackageContext) -> Iterator[Diagnostic]:
    rule = get_rule("E201")
    for fn in _reachable_cost_functions(ctx):
        for node in ast.walk(fn.node):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in CATALOG_MUTATORS
            ):
                chain = _attr_chain(node.func.value)
                if chain and chain[0] in OBS_RECEIVERS:
                    continue
                receiver = ".".join(chain) if chain else "<expr>"
                yield rule.diagnostic(
                    f"{fn.qualname} calls {receiver}.{node.func.attr}() — "
                    f"a catalog/statistics mutation on a cost path",
                    location=fn.module.location(node),
                    hint="cost functions must read statistics, never "
                    "write them; move the write to the warehouse layer",
                )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if not isinstance(target, ast.Attribute):
                        continue
                    chain = _attr_chain(target)
                    if not chain or chain[0] in ("self", "cls"):
                        continue
                    if chain[0] in OBS_RECEIVERS:
                        continue
                    yield rule.diagnostic(
                        f"{fn.qualname} assigns "
                        f"{'.'.join(chain)} — external state mutation "
                        f"on a cost path",
                        location=fn.module.location(node),
                        hint="return the value instead of writing "
                        "another object's attribute",
                    )


@register_rule(
    "E202",
    scope="effect",
    severity=Severity.ERROR,
    summary="cost-model code performs I/O",
    paper="CostCache soundness: same inputs, same cost, no side effects",
)
def check_cost_io(ctx: PackageContext) -> Iterator[Diagnostic]:
    rule = get_rule("E202")
    for fn in _reachable_cost_functions(ctx):
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            if (
                isinstance(node.func, ast.Name)
                and node.func.id in IO_BUILTINS
            ):
                yield rule.diagnostic(
                    f"{fn.qualname} calls {node.func.id}() on a cost path",
                    location=fn.module.location(node),
                    hint="cost functions are pure; report through "
                    "repro.obs or return the value",
                )
            elif isinstance(node.func, ast.Attribute):
                chain = _attr_chain(node.func.value)
                if chain and chain[0] in OBS_RECEIVERS:
                    continue
                if node.func.attr in IO_METHODS or (
                    chain and chain[0] in IO_MODULES
                ):
                    receiver = ".".join(chain) if chain else "<expr>"
                    yield rule.diagnostic(
                        f"{fn.qualname} calls {receiver}."
                        f"{node.func.attr}() — I/O on a cost path",
                        location=fn.module.location(node),
                        hint="cost functions are pure; lift the I/O to "
                        "the caller",
                    )


@register_rule(
    "E203",
    scope="effect",
    severity=Severity.WARNING,
    summary="cost-model code mutates a non-self argument in place",
    paper="memoized results must be functions of their inputs",
)
def check_argument_mutation(ctx: PackageContext) -> Iterator[Diagnostic]:
    rule = get_rule("E203")
    for fn in _reachable_cost_functions(ctx):
        args = getattr(fn.node, "args", None)
        if args is None:
            continue
        parameters: Set[str] = {
            arg.arg
            for arg in (
                list(args.posonlyargs)
                + list(args.args)
                + list(args.kwonlyargs)
            )
            if arg.arg not in ("self", "cls")
        }
        if not parameters:
            continue
        # Names rebound locally no longer alias the caller's object.
        rebound: Set[str] = set()
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        rebound.add(target.id)
        aliased = parameters - rebound
        for node in ast.walk(fn.node):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)
                        and target.value.id in aliased
                    ):
                        yield rule.diagnostic(
                            f"{fn.qualname} writes into argument "
                            f"{target.value.id!r} — the caller observes "
                            f"the edit",
                            location=fn.module.location(node),
                            hint="copy the argument or return the "
                            "updated value",
                        )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in MUTATING_METHODS
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in aliased
            ):
                yield rule.diagnostic(
                    f"{fn.qualname} calls {node.func.value.id}."
                    f"{node.func.attr}() — in-place mutation of an "
                    f"argument",
                    location=fn.module.location(node),
                    hint="copy the argument or return the updated value",
                )


def lint_effects(ctx: PackageContext) -> LintReport:
    """Run the E2xx rules over a package context."""
    return lint_package_scope(ctx, "effect")
