"""Rendering lint reports: text, JSON, SARIF 2.1.0, GitHub annotations.

SARIF (Static Analysis Results Interchange Format) is what code-hosting
CI surfaces ingest; the emitter maps :class:`Severity` onto SARIF levels
(``error`` / ``warning`` / ``note``), semantic vertex locations onto
logical locations, and file locations onto physical ones.  The rule
catalog travels in ``tool.driver.rules`` so viewers can show summaries
and paper references next to each finding, and every result carries a
``partialFingerprints`` entry (line-number-free content hash) so SARIF
consumers track a finding across unrelated edits instead of re-opening
it each push.  ``--format github`` emits workflow commands
(``::error file=...``) that annotate pull-request diffs directly.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.lint.diagnostics import (
    Diagnostic,
    LintReport,
    Severity,
    all_rules,
    fingerprint_of,
)

#: Bumped when the JSON report shape changes (mirrors the obs profile
#: document's ``schema`` field).
LINT_SCHEMA_VERSION = 1

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_SARIF_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.NOTE: "note",
}

#: The ``partialFingerprints`` key; the ``/v1`` suffix versions the
#: hashing scheme per the SARIF spec's recommendation.
FINGERPRINT_KEY = "reproLintFingerprint/v1"


def diagnostic_fingerprint(diagnostic: Diagnostic) -> str:
    """The diagnostic's stable identity.

    Analyzers stamp :attr:`Diagnostic.fingerprint` from their own source
    context; for diagnostics that predate fingerprints (or semantic
    findings located on graph vertices) fall back to a hash of the rule,
    the path/graph coordinates, and the message — still line-number-free.
    """
    if diagnostic.fingerprint:
        return diagnostic.fingerprint
    location = diagnostic.location
    return fingerprint_of(
        diagnostic.rule,
        location.file or location.mvpp or "",
        location.vertex or "",
        diagnostic.message,
    )


def render_text(report: LintReport) -> str:
    """One line per finding plus a trailing summary line."""
    lines = [diagnostic.render() for diagnostic in report.sorted()]
    counts = report.counts()
    summary = (
        f"{counts['error']} error(s), {counts['warning']} warning(s), "
        f"{counts['note']} note(s)"
    )
    if report.suppressed:
        summary += f", {report.suppressed} suppressed"
    if report.baselined:
        summary += f", {report.baselined} baselined"
    if report.target:
        summary += f" — {report.target}"
    lines.append(summary)
    return "\n".join(lines)


def _diagnostic_to_dict(diagnostic: Diagnostic) -> Dict[str, Any]:
    location = diagnostic.location
    return {
        "rule": diagnostic.rule,
        "severity": diagnostic.severity.label,
        "message": diagnostic.message,
        "hint": diagnostic.hint,
        "fingerprint": diagnostic_fingerprint(diagnostic),
        "location": {
            "file": location.file,
            "line": location.line,
            "column": location.column,
            "mvpp": location.mvpp,
            "vertex": location.vertex,
        },
    }


def report_to_json(report: LintReport) -> Dict[str, Any]:
    """The JSON document printed by ``repro lint --format json``."""
    return {
        "schema": LINT_SCHEMA_VERSION,
        "target": report.target,
        "summary": {
            **report.counts(),
            "suppressed": report.suppressed,
            "baselined": report.baselined,
        },
        "diagnostics": [
            _diagnostic_to_dict(diagnostic) for diagnostic in report.sorted()
        ],
    }


def render_github(report: LintReport) -> str:
    """GitHub Actions workflow commands, one annotation per finding.

    ``::error file=...,line=...,col=...::message`` lines surface inline
    on pull-request diffs without any SARIF upload step.  Findings with
    no file location (semantic vertex findings) annotate the run itself.
    """
    levels = {
        Severity.ERROR: "error",
        Severity.WARNING: "warning",
        Severity.NOTE: "notice",
    }
    lines = []
    for diagnostic in report.sorted():
        location = diagnostic.location
        properties = []
        if location.file is not None:
            properties.append(f"file={location.file}")
            if location.line is not None:
                properties.append(f"line={location.line}")
            if location.column is not None:
                properties.append(f"col={location.column + 1}")
        properties.append(f"title={diagnostic.rule}")
        message = diagnostic.message
        if diagnostic.hint:
            message += f" (hint: {diagnostic.hint})"
        if location.mvpp is not None or location.vertex is not None:
            message = f"{location.render()}: {message}"
        # Workflow commands terminate on newlines; escape per the spec.
        message = (
            message.replace("%", "%25")
            .replace("\r", "%0D")
            .replace("\n", "%0A")
        )
        command = levels[diagnostic.severity]
        lines.append(f"::{command} {','.join(properties)}::{message}")
    counts = report.counts()
    lines.append(
        f"::notice title=repro-lint::{counts['error']} error(s), "
        f"{counts['warning']} warning(s), {counts['note']} note(s)"
    )
    return "\n".join(lines)


def _sarif_location(diagnostic: Diagnostic) -> Dict[str, Any]:
    location = diagnostic.location
    out: Dict[str, Any] = {}
    if location.file is not None:
        region: Dict[str, Any] = {}
        if location.line is not None:
            region["startLine"] = location.line
        if location.column is not None:
            # SARIF columns are 1-based; ast col_offset is 0-based.
            region["startColumn"] = location.column + 1
        physical: Dict[str, Any] = {
            "artifactLocation": {"uri": location.file.replace("\\", "/")}
        }
        if region:
            physical["region"] = region
        out["physicalLocation"] = physical
    if location.mvpp is not None or location.vertex is not None:
        name = location.vertex or location.mvpp or ""
        out["logicalLocations"] = [
            {
                "name": name,
                "fullyQualifiedName": diagnostic.location.render(),
                "kind": "member",
            }
        ]
    return out


def report_to_sarif(
    report: LintReport, tool_name: str = "repro-lint", version: str = ""
) -> Dict[str, Any]:
    """The report as a single-run SARIF 2.1.0 log."""
    if not version:
        from repro import __version__ as version  # noqa: F811

    rules: List[Dict[str, Any]] = []
    for rule in all_rules():
        entry: Dict[str, Any] = {
            "id": rule.rule_id,
            "shortDescription": {"text": rule.summary},
            "defaultConfiguration": {"level": _SARIF_LEVELS[rule.severity]},
        }
        if rule.paper:
            entry["fullDescription"] = {"text": rule.paper}
        rules.append(entry)
    rule_index = {entry["id"]: i for i, entry in enumerate(rules)}

    results = []
    for diagnostic in report.sorted():
        message = diagnostic.message
        if diagnostic.hint:
            message += f" (hint: {diagnostic.hint})"
        result: Dict[str, Any] = {
            "ruleId": diagnostic.rule,
            "level": _SARIF_LEVELS[diagnostic.severity],
            "message": {"text": message},
            "partialFingerprints": {
                FINGERPRINT_KEY: diagnostic_fingerprint(diagnostic)
            },
        }
        if diagnostic.rule in rule_index:
            result["ruleIndex"] = rule_index[diagnostic.rule]
        location = _sarif_location(diagnostic)
        if location:
            result["locations"] = [location]
        results.append(result)

    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool_name,
                        "version": version,
                        "informationUri": (
                            "https://github.com/repro/repro/blob/main/docs/lint.md"
                        ),
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
