"""Rendering lint reports: human text, machine JSON, and SARIF 2.1.0.

SARIF (Static Analysis Results Interchange Format) is what code-hosting
CI surfaces ingest; the emitter maps :class:`Severity` onto SARIF levels
(``error`` / ``warning`` / ``note``), semantic vertex locations onto
logical locations, and file locations onto physical ones.  The rule
catalog travels in ``tool.driver.rules`` so viewers can show summaries
and paper references next to each finding.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.lint.diagnostics import Diagnostic, LintReport, Severity, all_rules

#: Bumped when the JSON report shape changes (mirrors the obs profile
#: document's ``schema`` field).
LINT_SCHEMA_VERSION = 1

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_SARIF_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.NOTE: "note",
}


def render_text(report: LintReport) -> str:
    """One line per finding plus a trailing summary line."""
    lines = [diagnostic.render() for diagnostic in report.sorted()]
    counts = report.counts()
    summary = (
        f"{counts['error']} error(s), {counts['warning']} warning(s), "
        f"{counts['note']} note(s)"
    )
    if report.suppressed:
        summary += f", {report.suppressed} suppressed"
    if report.target:
        summary += f" — {report.target}"
    lines.append(summary)
    return "\n".join(lines)


def _diagnostic_to_dict(diagnostic: Diagnostic) -> Dict[str, Any]:
    location = diagnostic.location
    return {
        "rule": diagnostic.rule,
        "severity": diagnostic.severity.label,
        "message": diagnostic.message,
        "hint": diagnostic.hint,
        "location": {
            "file": location.file,
            "line": location.line,
            "column": location.column,
            "mvpp": location.mvpp,
            "vertex": location.vertex,
        },
    }


def report_to_json(report: LintReport) -> Dict[str, Any]:
    """The JSON document printed by ``repro lint --format json``."""
    return {
        "schema": LINT_SCHEMA_VERSION,
        "target": report.target,
        "summary": {**report.counts(), "suppressed": report.suppressed},
        "diagnostics": [
            _diagnostic_to_dict(diagnostic) for diagnostic in report.sorted()
        ],
    }


def _sarif_location(diagnostic: Diagnostic) -> Dict[str, Any]:
    location = diagnostic.location
    out: Dict[str, Any] = {}
    if location.file is not None:
        region: Dict[str, Any] = {}
        if location.line is not None:
            region["startLine"] = location.line
        if location.column is not None:
            # SARIF columns are 1-based; ast col_offset is 0-based.
            region["startColumn"] = location.column + 1
        physical: Dict[str, Any] = {
            "artifactLocation": {"uri": location.file.replace("\\", "/")}
        }
        if region:
            physical["region"] = region
        out["physicalLocation"] = physical
    if location.mvpp is not None or location.vertex is not None:
        name = location.vertex or location.mvpp or ""
        out["logicalLocations"] = [
            {
                "name": name,
                "fullyQualifiedName": diagnostic.location.render(),
                "kind": "member",
            }
        ]
    return out


def report_to_sarif(
    report: LintReport, tool_name: str = "repro-lint", version: str = ""
) -> Dict[str, Any]:
    """The report as a single-run SARIF 2.1.0 log."""
    if not version:
        from repro import __version__ as version  # noqa: F811

    rules: List[Dict[str, Any]] = []
    for rule in all_rules():
        entry: Dict[str, Any] = {
            "id": rule.rule_id,
            "shortDescription": {"text": rule.summary},
            "defaultConfiguration": {"level": _SARIF_LEVELS[rule.severity]},
        }
        if rule.paper:
            entry["fullDescription"] = {"text": rule.paper}
        rules.append(entry)
    rule_index = {entry["id"]: i for i, entry in enumerate(rules)}

    results = []
    for diagnostic in report.sorted():
        message = diagnostic.message
        if diagnostic.hint:
            message += f" (hint: {diagnostic.hint})"
        result: Dict[str, Any] = {
            "ruleId": diagnostic.rule,
            "level": _SARIF_LEVELS[diagnostic.severity],
            "message": {"text": message},
        }
        if diagnostic.rule in rule_index:
            result["ruleIndex"] = rule_index[diagnostic.rule]
        location = _sarif_location(diagnostic)
        if location:
            result["locations"] = [location]
        results.append(result)

    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool_name,
                        "version": version,
                        "informationUri": (
                            "https://github.com/repro/repro/blob/main/docs/lint.md"
                        ),
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
