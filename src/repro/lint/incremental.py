"""Incremental lint engine: content-hash caching, --diff, baselines.

``repro lint --self`` gates every CI run, so it must not re-pay the
full-package analysis cost when nothing changed.  This module makes the
run incremental along three independent axes:

* **Per-file result cache** — each file's code-scope report is keyed by
  ``sha256(engine fingerprint + file bytes)`` and stored as JSON under a
  cache directory (``.repro-lint-cache/`` by convention).  The engine
  fingerprint covers the registered rule set and the package version, so
  rule changes invalidate every entry at once.  Hits and misses are
  published as ``lint.cache.hits`` / ``lint.cache.misses`` counters.
* **Package-level cache** — the interprocedural concurrency/effect
  analysis is whole-package by nature, so it caches one entry keyed on
  the digest of *all* file hashes: any edit re-runs it, no edit skips it.
* **--diff restriction** — ``repro lint --self --diff <rev>`` restricts
  the per-file stage to files changed since ``rev`` (via ``git diff
  --name-only``); the package stage always covers everything, keeping
  interprocedural findings sound.

A **baseline** file (``lint-baseline.json``) suppresses known findings
by stable fingerprint so new code can be gated strictly while old debt
is paid down incrementally: matched findings are hidden (counted in
``LintReport.baselined``), unmatched baseline entries are reported back
as *expired* so the file never rots silently.
"""

from __future__ import annotations

import hashlib
import json
import subprocess
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.code import iter_python_files, lint_source
from repro.lint.concurrency import PackageContext, lint_concurrency
from repro.lint.diagnostics import (
    Diagnostic,
    LintReport,
    Location,
    Severity,
    fingerprint_of,
    rule_ids,
)
from repro.lint.effects import lint_effects
from repro.lint.emitters import diagnostic_fingerprint

#: Bumped when the cache entry shape changes.
CACHE_SCHEMA_VERSION = 1

#: Baseline file schema.
BASELINE_SCHEMA_VERSION = 1

#: Conventional cache directory name (gitignored; CI restores it).
DEFAULT_CACHE_DIR = ".repro-lint-cache"


def engine_fingerprint() -> str:
    """Identity of the analyzer configuration.

    Covers the registered rule ids and the package version: adding,
    removing, or reordering rules invalidates every cached entry.
    """
    from repro import __version__

    return fingerprint_of("lint-engine", __version__, *sorted(rule_ids()))


def file_key(source: str) -> str:
    """Cache key for one file's per-file report."""
    digest = hashlib.sha256()
    digest.update(engine_fingerprint().encode("utf-8"))
    digest.update(source.encode("utf-8"))
    return digest.hexdigest()


# ---------------------------------------------------------------------------
# (de)serialization
# ---------------------------------------------------------------------------
def diagnostic_to_dict(diagnostic: Diagnostic) -> Dict[str, object]:
    location = diagnostic.location
    return {
        "rule": diagnostic.rule,
        "severity": diagnostic.severity.label,
        "message": diagnostic.message,
        "hint": diagnostic.hint,
        "fingerprint": diagnostic.fingerprint,
        "location": {
            "file": location.file,
            "line": location.line,
            "column": location.column,
            "mvpp": location.mvpp,
            "vertex": location.vertex,
        },
    }


def diagnostic_from_dict(payload: Dict[str, object]) -> Diagnostic:
    location = payload.get("location") or {}
    return Diagnostic(
        rule=str(payload["rule"]),
        severity=Severity.parse(str(payload["severity"])),
        message=str(payload["message"]),
        location=Location(
            file=location.get("file"),
            line=location.get("line"),
            column=location.get("column"),
            mvpp=location.get("mvpp"),
            vertex=location.get("vertex"),
        ),
        hint=str(payload.get("hint", "")),
        fingerprint=str(payload.get("fingerprint", "")),
    )


def _report_to_entry(report: LintReport) -> Dict[str, object]:
    return {
        "schema": CACHE_SCHEMA_VERSION,
        "target": report.target,
        "suppressed": report.suppressed,
        "diagnostics": [diagnostic_to_dict(d) for d in report.diagnostics],
    }


def _report_from_entry(payload: Dict[str, object]) -> Optional[LintReport]:
    if payload.get("schema") != CACHE_SCHEMA_VERSION:
        return None
    report = LintReport(target=str(payload.get("target", "")))
    report.suppressed = int(payload.get("suppressed", 0))
    report.diagnostics = [
        diagnostic_from_dict(d) for d in payload.get("diagnostics", [])
    ]
    return report


class ResultCache:
    """JSON files under a directory, one per content hash."""

    def __init__(self, directory: Path):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def lookup(self, key: str) -> Optional[LintReport]:
        path = self.directory / f"{key}.json"
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            self.misses += 1
            return None
        report = _report_from_entry(payload)
        if report is None:
            self.misses += 1
            return None
        self.hits += 1
        return report

    def store(self, key: str, report: LintReport) -> None:
        path = self.directory / f"{key}.json"
        path.write_text(
            json.dumps(_report_to_entry(report), sort_keys=True),
            encoding="utf-8",
        )

    def publish(self) -> None:
        from repro import obs

        registry = obs.metrics()
        if self.hits:
            registry.counter("lint.cache.hits").inc(self.hits)
        if self.misses:
            registry.counter("lint.cache.misses").inc(self.misses)


# ---------------------------------------------------------------------------
# --diff support
# ---------------------------------------------------------------------------
def changed_files(
    rev: str, base: Path, repo_root: Optional[Path] = None
) -> Set[str]:
    """Display paths (relative to ``base``) changed since ``rev``.

    Runs ``git diff --name-only`` in ``repo_root`` (default: cwd).
    Unknown revisions raise ``ValueError`` so a typo cannot silently
    lint nothing.
    """
    command = ["git", "diff", "--name-only", rev, "--", "*.py"]
    completed = subprocess.run(
        command,
        cwd=str(repo_root) if repo_root else None,
        capture_output=True,
        text=True,
    )
    if completed.returncode != 0:
        raise ValueError(
            f"git diff against {rev!r} failed: {completed.stderr.strip()}"
        )
    root = Path(repo_root) if repo_root else Path.cwd()
    base = Path(base).resolve()
    out: Set[str] = set()
    for line in completed.stdout.splitlines():
        candidate = (root / line.strip()).resolve()
        try:
            out.add(str(candidate.relative_to(base)))
        except ValueError:
            continue  # changed file outside the linted tree
    return out


# ---------------------------------------------------------------------------
# baseline
# ---------------------------------------------------------------------------
def load_baseline(path: Path) -> List[Dict[str, str]]:
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError:
        return []
    except ValueError as error:
        raise ValueError(f"baseline {path} is not valid JSON: {error}")
    if payload.get("schema") != BASELINE_SCHEMA_VERSION:
        raise ValueError(
            f"baseline {path} has schema {payload.get('schema')!r}; "
            f"expected {BASELINE_SCHEMA_VERSION}"
        )
    return list(payload.get("entries", []))


def apply_baseline(
    report: LintReport, entries: Iterable[Dict[str, str]]
) -> List[Dict[str, str]]:
    """Hide baselined findings in place; return the *expired* entries.

    A baseline entry matches at most one finding per fingerprint.
    Matched findings move into ``report.baselined``; entries whose
    fingerprint no longer occurs are returned so callers can prompt a
    baseline refresh.
    """
    wanted: Dict[str, Dict[str, str]] = {
        str(entry.get("fingerprint", "")): dict(entry)
        for entry in entries
        if entry.get("fingerprint")
    }
    if not wanted:
        return []
    kept: List[Diagnostic] = []
    matched: Set[str] = set()
    for diagnostic in report.diagnostics:
        fingerprint = diagnostic_fingerprint(diagnostic)
        if fingerprint in wanted and fingerprint not in matched:
            matched.add(fingerprint)
            report.baselined += 1
        else:
            kept.append(diagnostic)
    report.diagnostics = kept
    return [wanted[fp] for fp in sorted(set(wanted) - matched)]


def write_baseline(report: LintReport, path: Path) -> int:
    """Write the report's current findings as the new baseline."""
    entries = sorted(
        (
            {
                "fingerprint": diagnostic_fingerprint(d),
                "rule": d.rule,
                "path": d.location.file or d.location.mvpp or "",
            }
            for d in report.diagnostics
        ),
        key=lambda entry: (entry["path"], entry["rule"], entry["fingerprint"]),
    )
    payload = {"schema": BASELINE_SCHEMA_VERSION, "entries": entries}
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return len(entries)


# ---------------------------------------------------------------------------
# the incremental run
# ---------------------------------------------------------------------------
def _lint_one(payload: Tuple[str, str]) -> LintReport:
    display, source = payload
    return lint_source(source, path=display)


def lint_package(
    package_root: Path,
    base: Optional[Path] = None,
    cache_dir: Optional[Path] = None,
    changed: Optional[Set[str]] = None,
    jobs: int = 1,
) -> LintReport:
    """Run all three analyzer layers over a package tree.

    Per-file code rules honor the result cache and the ``changed``
    restriction; the package-level concurrency/effect rules always see
    every file (interprocedural soundness) but cache on the whole-tree
    digest.  ``jobs > 1`` fans uncached files out over the thread
    executor.
    """
    package_root = Path(package_root)
    base = Path(base) if base is not None else package_root.parent
    files: List[Tuple[str, str, str]] = []  # (display, dotted, source)
    for file_path in iter_python_files(package_root):
        try:
            display = str(file_path.relative_to(base))
        except ValueError:
            display = str(file_path)
        dotted = ".".join(Path(display).with_suffix("").parts)
        if dotted.endswith(".__init__"):
            dotted = dotted[: -len(".__init__")]
        files.append((display, dotted, file_path.read_text(encoding="utf-8")))

    report = LintReport(target=f"{package_root} ({len(files)} files)")
    cache = ResultCache(cache_dir) if cache_dir is not None else None

    # ---------------------------------------------------- per-file stage
    pending: List[Tuple[str, str]] = []
    for display, _dotted, source in files:
        if changed is not None and display not in changed:
            continue
        if cache is not None:
            cached = cache.lookup(file_key(source))
            if cached is not None:
                report.merge(cached)
                continue
        pending.append((display, source))

    if pending:
        if jobs > 1:
            # The process backend, not threads: per-file linting is
            # parse+walk CPU work the GIL would serialize anyway (and
            # CPython 3.11's compile() is not reliable off the main
            # thread — "AST constructor recursion depth mismatch").
            from repro.parallel import resolve_executor

            executor = resolve_executor("process", workers=jobs)
            results = executor.map(_lint_one, pending)
        else:
            results = [_lint_one(payload) for payload in pending]
        for (_display, source), file_report in zip(pending, results):
            if cache is not None:
                cache.store(file_key(source), file_report)
            report.merge(file_report)

    # ----------------------------------------------------- package stage
    tree_digest = fingerprint_of(
        "package", engine_fingerprint(),
        *(file_key(source) for _d, _m, source in files),
    )
    package_report: Optional[LintReport] = None
    if cache is not None:
        package_report = cache.lookup(f"package-{tree_digest}")
    if package_report is None:
        ctx = PackageContext.build(files)
        package_report = LintReport()
        package_report.merge(lint_concurrency(ctx))
        package_report.merge(lint_effects(ctx))
        if cache is not None:
            cache.store(f"package-{tree_digest}", package_report)
    report.merge(package_report)

    from repro import obs

    obs.metrics().counter("lint.files_analyzed").inc(len(pending))
    if cache is not None:
        cache.publish()
    report.diagnostics = report.sorted()
    return report


def lint_self_incremental(
    cache_dir: Optional[Path] = None,
    changed: Optional[Set[str]] = None,
    jobs: int = 1,
) -> LintReport:
    """``repro lint --self``: all three analyzers over the installed
    ``repro`` package, optionally cached/restricted."""
    import repro

    package_root = Path(repro.__file__).resolve().parent
    return lint_package(
        package_root,
        base=package_root.parent,
        cache_dir=cache_dir,
        changed=changed,
        jobs=jobs,
    )
