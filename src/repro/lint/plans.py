"""Plan verifier — schema/type inference over logical and physical plans.

The algebra constructors validate plans at build time, but plans do not
stay where they were built: rotation rewrites splice subtrees, view
rewriting substitutes materialized scans, adaptive redesign migrates
plans across catalog versions, and tests corrupt trees on purpose.  The
verifier re-derives every node's output schema *bottom-up and
independently of the schema the node declares*, so any drift between
what a plan says it produces and what its children can actually feed it
becomes a diagnostic instead of a wrong answer at execution time.

Rules:

* ``P001`` — projection references a column its child cannot supply;
* ``P002`` — duplicate output columns (projection attributes or
  aggregate aliases collide);
* ``P003`` — comparison/join-key type mismatch (via
  :func:`repro.catalog.datatypes.common_type`);
* ``P004`` — predicate or sort key references unknown columns;
* ``P005`` — aggregate input-type error (SUM/AVG need numerics, MIN/MAX
  need orderable inputs) or unknown aggregate/group-by attribute;
* ``P006`` — DISTINCT/limit/presentation invariants (zero limits,
  non-orderable sort keys, sort order destroyed by a parent);
* ``P007`` — a node's declared schema disagrees with the schema
  inferred from its children (the corruption detector);
* ``P008`` — lowering broke schema preservation: the physical root does
  not produce the logical root's schema, or the physical leaf set does
  not cover the logical base relations.

Anti-cascade contract: when a rule fires at a node, inference *adopts
the node's declared schema* before continuing upward, so one corruption
yields one diagnostic, not an error at every ancestor.  The hypothesis
suite in ``tests/lint/test_plan_properties.py`` pins this down.

Run automatically at :class:`repro.executor.physical.PhysicalPlanner`
lowering time when linting is enabled (``DesignConfig.lint``), and
unconditionally by ``explain`` so plan diagnostics travel with the
rendered tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.algebra import operators as L
from repro.algebra.expressions import (
    ColumnRef,
    Comparison,
    Expression,
    Literal,
)
from repro.catalog.datatypes import DataType, common_type
from repro.catalog.schema import Attribute, RelationSchema
from repro.errors import TypeMismatchError
from repro.lint.diagnostics import (
    Diagnostic,
    LintReport,
    Location,
    Severity,
    fingerprint_of,
    get_rule,
    register_rule,
    rules_for,
)


@dataclass
class PlanContext:
    """One verified plan: the tree plus the findings inference produced.

    Rule checks registered under the ``plan`` scope read from
    ``findings`` — inference runs once per plan, not once per rule.
    """

    plan: L.Operator
    name: str = "plan"
    physical: Optional[object] = None  # PhysicalOperator, untyped to avoid import
    findings: List[Diagnostic] = field(default_factory=list)

    def location(self, node: L.Operator) -> Location:
        return Location(mvpp=self.name, vertex=node.label)

    def emit(
        self,
        rule_id: str,
        message: str,
        node: Optional[L.Operator] = None,
        hint: str = "",
        severity: Optional[Severity] = None,
        vertex: str = "",
    ) -> None:
        location = (
            self.location(node)
            if node is not None
            else Location(mvpp=self.name, vertex=vertex or None)
        )
        diagnostic = get_rule(rule_id).diagnostic(
            message, location=location, hint=hint, severity=severity
        )
        self.findings.append(
            Diagnostic(
                rule=diagnostic.rule,
                severity=diagnostic.severity,
                message=diagnostic.message,
                location=diagnostic.location,
                hint=diagnostic.hint,
                fingerprint=fingerprint_of(
                    rule_id, self.name, location.vertex or "", message
                ),
            )
        )

    def errors_at(self, before: int) -> bool:
        """Whether an error-severity finding was added since ``before``."""
        return any(
            d.severity >= Severity.ERROR for d in self.findings[before:]
        )


# ---------------------------------------------------------------------------
# schema inference
# ---------------------------------------------------------------------------
def _column_type(
    schema: RelationSchema, name: str
) -> Optional[DataType]:
    """The type of ``name`` in ``schema``, resolving short names; None if
    the column is unknown or ambiguous."""
    try:
        return schema.attribute(name).datatype
    except Exception:
        return None


def _expression_type(
    expr: Expression, schema: RelationSchema
) -> Optional[DataType]:
    if isinstance(expr, Literal):
        return expr.datatype
    if isinstance(expr, ColumnRef):
        return _column_type(schema, expr.name)
    return None  # booleans have no scalar type we compare against


def _check_predicate(
    ctx: PlanContext,
    node: L.Operator,
    predicate: Expression,
    schema: RelationSchema,
    role: str,
) -> None:
    """P003/P004 over one predicate against the inferred input schema."""
    unknown = sorted(
        name
        for name in predicate.columns()
        if _column_type(schema, name) is None
    )
    if unknown:
        ctx.emit(
            "P004",
            f"{role} references unknown column(s) {unknown} — input "
            f"provides {list(schema.attribute_names)}",
            node=node,
            hint="the referenced attribute was projected away or renamed "
            "below this node",
        )
    stack: List[Expression] = [predicate]
    while stack:
        expr = stack.pop()
        if isinstance(expr, Comparison):
            left = _expression_type(expr.left, schema)
            right = _expression_type(expr.right, schema)
            if left is not None and right is not None:
                try:
                    common_type(left, right)
                except TypeMismatchError:
                    ctx.emit(
                        "P003",
                        f"{role} compares incompatible types "
                        f"{left.value} {expr.op} {right.value} "
                        f"({expr.signature})",
                        node=node,
                        hint="join keys and comparison operands must share "
                        "a common type",
                    )
        stack.extend(expr.children)


def _schemas_agree(declared: RelationSchema, inferred: RelationSchema) -> bool:
    """Positional name+type agreement (relation names are presentation)."""
    if declared.arity != inferred.arity:
        return False
    return all(
        d.name == i.name and d.datatype is i.datatype
        for d, i in zip(declared.attributes, inferred.attributes)
    )


def _render_schema(schema: RelationSchema) -> str:
    return ", ".join(f"{a.name}:{a.datatype.value}" for a in schema.attributes)


_ORDER_DESTROYING = (L.Join, L.Aggregate)


def _infer(
    ctx: PlanContext, node: L.Operator, parent: Optional[L.Operator]
) -> RelationSchema:
    """Infer ``node``'s output schema from its children, emitting findings.

    Returns the schema *adopted* for the parent: the independently
    inferred one normally, the declared one after an error at this node
    (the anti-cascade contract in the module docstring).
    """
    before = len(ctx.findings)

    if isinstance(node, L.Relation):
        # Leaves are ground truth: their declared schema is the input.
        return node.schema

    if isinstance(node, L.Select):
        child = _infer(ctx, node.child, node)
        _check_predicate(ctx, node, node.predicate, child, "selection predicate")
        inferred: Optional[RelationSchema] = child

    elif isinstance(node, L.Project):
        child = _infer(ctx, node.child, node)
        resolved: List[Attribute] = []
        seen: Dict[str, int] = {}
        for name in node.attributes:
            try:
                attribute = child.attribute(name)
            except Exception:
                ctx.emit(
                    "P001",
                    f"projection references unknown column {name!r} — "
                    f"child provides {list(child.attribute_names)}",
                    node=node,
                    hint="the column was dropped or renamed below this "
                    "projection",
                )
                continue
            seen[attribute.name] = seen.get(attribute.name, 0) + 1
            resolved.append(attribute)
        duplicates = sorted(n for n, count in seen.items() if count > 1)
        if duplicates:
            ctx.emit(
                "P002",
                f"projection outputs duplicate column(s) {duplicates}",
                node=node,
                hint="alias one of the copies or project it once",
            )
        inferred = None
        if not ctx.errors_at(before):
            inferred = RelationSchema(node.schema.name, resolved)

    elif isinstance(node, L.Join):
        left = _infer(ctx, node.left, node)
        right = _infer(ctx, node.right, node)
        inferred = left.join(right)
        if node.condition is not None:
            _check_predicate(
                ctx, node, node.condition, inferred, "join condition"
            )

    elif isinstance(node, L.Sort):
        child = _infer(ctx, node.child, node)
        for name, _ascending in node.keys:
            datatype = _column_type(child, name)
            if datatype is None:
                ctx.emit(
                    "P004",
                    f"sort key {name!r} is not a column of the input — "
                    f"input provides {list(child.attribute_names)}",
                    node=node,
                )
            elif not datatype.is_orderable:
                ctx.emit(
                    "P006",
                    f"sort key {name!r} has non-orderable type "
                    f"{datatype.value}",
                    node=node,
                    hint="ORDER BY needs a totally ordered type",
                )
        if parent is not None and isinstance(parent, _ORDER_DESTROYING):
            ctx.emit(
                "P006",
                f"sort order is destroyed by the enclosing "
                f"{type(parent).__name__.lower()} — the ORDER BY has no "
                f"effect",
                node=node,
                hint="move the Sort above the order-destroying operator",
                severity=Severity.WARNING,
            )
        inferred = child

    elif isinstance(node, L.Limit):
        child = _infer(ctx, node.child, node)
        if node.count < 0:
            ctx.emit(
                "P006",
                f"LIMIT count is negative ({node.count})",
                node=node,
            )
        elif node.count == 0:
            ctx.emit(
                "P006",
                "LIMIT 0 makes this subtree produce no rows",
                node=node,
                hint="drop the subtree or raise the limit",
                severity=Severity.WARNING,
            )
        inferred = child

    elif isinstance(node, L.Aggregate):
        child = _infer(ctx, node.child, node)
        out: List[Attribute] = []
        seen = {}
        for name in node.group_by:
            try:
                attribute = child.attribute(name)
            except Exception:
                ctx.emit(
                    "P005",
                    f"group-by key {name!r} is not a column of the input — "
                    f"input provides {list(child.attribute_names)}",
                    node=node,
                )
                continue
            seen[attribute.name] = seen.get(attribute.name, 0) + 1
            out.append(attribute)
        for spec in node.aggregates:
            input_type: Optional[DataType] = None
            if spec.attribute is not None:
                input_type = _column_type(child, spec.attribute)
                if input_type is None:
                    ctx.emit(
                        "P005",
                        f"aggregate {spec.signature} reads unknown column "
                        f"{spec.attribute!r}",
                        node=node,
                    )
                    continue
                function = spec.function
                if function in (L.AggregateFunction.SUM, L.AggregateFunction.AVG):
                    if not input_type.is_numeric:
                        ctx.emit(
                            "P005",
                            f"{function.value}({spec.attribute}) needs a "
                            f"numeric input, got {input_type.value}",
                            node=node,
                            hint="SUM/AVG are defined over numeric columns "
                            "only",
                        )
                        continue
                elif function in (L.AggregateFunction.MIN, L.AggregateFunction.MAX):
                    if not input_type.is_orderable:
                        ctx.emit(
                            "P005",
                            f"{function.value}({spec.attribute}) needs an "
                            f"orderable input, got {input_type.value}",
                            node=node,
                        )
                        continue
            seen[spec.alias] = seen.get(spec.alias, 0) + 1
            out.append(Attribute(spec.alias, spec.output_type(input_type)))
        duplicates = sorted(n for n, count in seen.items() if count > 1)
        if duplicates:
            ctx.emit(
                "P002",
                f"aggregate outputs duplicate column(s) {duplicates}",
                node=node,
                hint="give colliding aggregates distinct aliases",
            )
        inferred = None
        if not ctx.errors_at(before):
            inferred = RelationSchema(node.schema.name, out)

    else:  # unknown operator kind: trust its declaration
        for child_node in node.children:
            _infer(ctx, child_node, node)
        inferred = None

    if ctx.errors_at(before) or inferred is None:
        # Anti-cascade: an already-reported problem must not re-fire at
        # every ancestor, so the parent sees what the node promised.
        return node.schema

    if not _schemas_agree(node.schema, inferred):
        ctx.emit(
            "P007",
            f"declared schema [{_render_schema(node.schema)}] disagrees "
            f"with the schema inferred from its children "
            f"[{_render_schema(inferred)}]",
            node=node,
            hint="the tree was rewritten without rebuilding this node",
        )
        return node.schema
    return inferred


def _verify_lowering(ctx: PlanContext) -> None:
    """P008: the physical tree must preserve the logical root schema and
    cover every logical base relation with a scan."""
    physical = ctx.physical
    if physical is None:
        return
    logical_schema = ctx.plan.schema
    physical_schema = physical.schema  # type: ignore[attr-defined]
    if not _schemas_agree(logical_schema, physical_schema):
        ctx.emit(
            "P008",
            f"lowering changed the root schema: logical "
            f"[{_render_schema(logical_schema)}] vs physical "
            f"[{_render_schema(physical_schema)}]",
            vertex=getattr(physical, "label", type(physical).__name__),
        )
    logical_leaves = set(ctx.plan.base_relations())
    physical_leaves = {
        op.relation_name
        for op in physical.walk()  # type: ignore[attr-defined]
        if hasattr(op, "relation_name")
    }
    missing = sorted(logical_leaves - physical_leaves)
    if missing:
        ctx.emit(
            "P008",
            f"lowering lost base relation(s) {missing}: logical leaves "
            f"{sorted(logical_leaves)}, physical scans "
            f"{sorted(physical_leaves)}",
            vertex=getattr(physical, "label", type(physical).__name__),
        )


# ---------------------------------------------------------------------------
# rules — checks read the findings the single inference pass produced
# ---------------------------------------------------------------------------
def _findings_for(ctx: PlanContext, rule_id: str) -> Iterator[Diagnostic]:
    for diagnostic in ctx.findings:
        if diagnostic.rule == rule_id:
            yield diagnostic


def _plan_rule(rule_id: str, severity: Severity, summary: str, paper: str):
    @register_rule(rule_id, scope="plan", severity=severity,
                   summary=summary, paper=paper)
    def check(ctx: PlanContext, _rule_id: str = rule_id) -> Iterator[Diagnostic]:
        return _findings_for(ctx, _rule_id)

    return check


_plan_rule(
    "P001", Severity.ERROR,
    "projection references a column its child cannot supply",
    "Section 3.1: rewritten plans must stay well-formed",
)
_plan_rule(
    "P002", Severity.ERROR,
    "duplicate output columns in a projection or aggregate",
    "RelationSchema forbids duplicate attributes",
)
_plan_rule(
    "P003", Severity.ERROR,
    "comparison or join key over incompatible types",
    "join merges (Figure 4) assume type-compatible keys",
)
_plan_rule(
    "P004", Severity.ERROR,
    "predicate or sort key references unknown columns",
    "Section 3.1: rewritten plans must stay well-formed",
)
_plan_rule(
    "P005", Severity.ERROR,
    "aggregate input-type error or unknown aggregate attribute",
    "aggregation extension: SUM/AVG numeric, MIN/MAX orderable",
)
_plan_rule(
    "P006", Severity.ERROR,
    "DISTINCT/limit/presentation invariant violation",
    "presentation operators must be observable in the output",
)
_plan_rule(
    "P007", Severity.ERROR,
    "declared schema disagrees with the inferred schema",
    "corruption detector for surgically rewritten trees",
)
_plan_rule(
    "P008", Severity.ERROR,
    "lowering broke logical-to-physical schema preservation",
    "PR 7 contract: lowering preserves schema and base relations",
)


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------
def verify_plan(plan: L.Operator, name: str = "plan") -> LintReport:
    """Run schema/type inference over one logical plan."""
    ctx = PlanContext(plan=plan, name=name)
    _infer(ctx, plan, None)
    report = LintReport(target=f"plan {name}")
    for rule in rules_for("plan"):
        report.extend(rule.check(ctx))
    return report


def verify_lowering(
    logical: L.Operator, physical: object, name: str = "plan"
) -> LintReport:
    """Verify a logical plan *and* its lowered physical tree (P008)."""
    ctx = PlanContext(plan=logical, name=name, physical=physical)
    _infer(ctx, logical, None)
    _verify_lowering(ctx)
    report = LintReport(target=f"plan {name}")
    for rule in rules_for("plan"):
        report.extend(rule.check(ctx))
    return report
