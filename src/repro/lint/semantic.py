"""Layer 1 — semantic lints over workloads, MVPP graphs, and designs.

These rules enforce the invariants the paper's algorithms assume:

* Figure 4 (steps 5/6) requires select *disjunctions* and projection
  *unions* pushed to the base relations after merging — ``M001``/``M002``
  flag graphs where a merge left per-query selections or full-width
  leaves behind;
* Section 3.1's common-subexpression merge means no two vertices may
  compute the same relation — ``M003``;
* Figure 9's greedy selection assumes every candidate is reachable from
  a query root (``M004``), carries frequency annotations (``M005``), and
  sees non-negative, monotone ``Ca``/``Cm`` along the DAG
  (``M006``/``M007``);
* a finished design should contain no view with non-positive weight
  ``w(v)`` (``D001``) and no view shadowed by materialized destinations
  (``D002``, the paper's step 9);
* the statistics catalog backing it all must cover the queried relations
  and carry no stale leftovers (``W003``).

Every rule is registered in :mod:`repro.lint.diagnostics`' registry and
receives a :class:`SemanticContext`; entry points
(:func:`lint_workload`, :func:`lint_mvpp`, :func:`lint_design`) assemble
the context and run the rules of the matching scopes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Set

from repro.algebra.operators import (
    Aggregate,
    Join,
    Operator,
    Project,
    Select,
    Sort,
)
from repro.errors import LintError
from repro.lint.diagnostics import (
    Diagnostic,
    LintReport,
    Location,
    Rule,
    Severity,
    get_rule,
    register_rule,
    rules_for,
)
from repro.mvpp.cost import MVPPCostCalculator, PER_PERIOD
from repro.mvpp.graph import MVPP, Vertex, VertexKind
from repro.workload.spec import Workload

#: Relation-name prefix the warehouse uses when registering statistics
#: for materialized views; those entries are derived, not stale.
VIEW_STATS_PREFIX = "mv_"


@dataclass
class SemanticContext:
    """Everything a semantic rule may inspect.

    ``workload`` rules need only the workload; ``mvpp`` rules need the
    graph; ``design`` rules additionally need the chosen vertices and a
    calculator for weights; ``adaptive`` rules inspect the
    :class:`~repro.adaptive.policy.AdaptivePolicy` in ``policy``.  Entry
    points fill in what they have.
    """

    workload: Optional[Workload] = None
    mvpp: Optional[MVPP] = None
    materialized: Optional[Sequence[Vertex]] = None
    calculator: Optional[MVPPCostCalculator] = None
    policy: Optional[Any] = None  # AdaptivePolicy (lazy import)
    streaming: Optional[Any] = None  # StreamingPolicy (lazy import)

    def location(self, vertex: Optional[Vertex] = None) -> Location:
        return Location(
            mvpp=self.mvpp.name if self.mvpp is not None else None,
            vertex=vertex.name if vertex is not None else None,
        )


def _vertex_references(vertex: Vertex) -> Set[str]:
    """Column names the vertex's *root* operator mentions directly."""
    operator = vertex.operator
    if isinstance(operator, Select):
        return set(operator.predicate.columns())
    if isinstance(operator, Project):
        return set(operator.attributes)
    if isinstance(operator, Join):
        if operator.condition is None:
            return set()
        return set(operator.condition.columns())
    if isinstance(operator, Aggregate):
        out = set(operator.group_by)
        out |= {s.attribute for s in operator.aggregates if s.attribute}
        return out
    if isinstance(operator, Sort):
        return {name for name, _ in operator.keys}
    return set()


# ---------------------------------------------------------------------------
# workload rules
# ---------------------------------------------------------------------------
@register_rule(
    "W001",
    scope="workload",
    severity=Severity.WARNING,
    summary="query with missing or zero access frequency fq",
    paper="Section 4.1 (C_queryprocessing = Σ fq·C)",
)
def check_query_frequencies(ctx: SemanticContext) -> Iterator[Diagnostic]:
    rule = get_rule("W001")
    assert ctx.workload is not None
    for spec in ctx.workload.queries:
        if spec.frequency <= 0:
            yield rule.diagnostic(
                f"query {spec.name!r} has fq={spec.frequency:g}; it cannot "
                f"influence view selection",
                hint="set a positive access frequency or drop the query",
            )


@register_rule(
    "W002",
    scope="workload",
    severity=Severity.WARNING,
    summary="explicit update frequency fu that is zero or negative",
    paper="Section 4.1 (C_maintenance = Σ fu·Cm)",
)
def check_update_frequencies(ctx: SemanticContext) -> Iterator[Diagnostic]:
    rule = get_rule("W002")
    assert ctx.workload is not None
    for relation, frequency in sorted(ctx.workload.update_frequencies.items()):
        if frequency <= 0:
            yield rule.diagnostic(
                f"relation {relation!r} has fu={frequency:g}; maintenance "
                f"of views over it is costed as free",
                hint="use a positive fu, or omit it to get the paper's "
                "once-per-period default",
            )


@register_rule(
    "W003",
    scope="workload",
    severity=Severity.ERROR,
    summary="stale or missing catalog statistics",
    paper="Table 1 (per-relation cardinality/selectivity statistics)",
)
def check_statistics(ctx: SemanticContext) -> Iterator[Diagnostic]:
    rule = get_rule("W003")
    assert ctx.workload is not None
    workload = ctx.workload
    for relation in workload.catalog.relation_names:
        if not workload.statistics.has_relation(relation):
            yield rule.diagnostic(
                f"relation {relation!r} has no registered statistics; its "
                f"plans cannot be costed",
                hint=f"statistics.set_relation({relation!r}, cardinality)",
            )
    for relation in workload.statistics.relation_names:
        if relation in workload.catalog:
            continue
        if relation.startswith(VIEW_STATS_PREFIX):
            continue  # derived view statistics registered by the warehouse
        yield rule.diagnostic(
            f"statistics registered for unknown relation {relation!r} "
            f"(stale leftover from a previous schema?)",
            severity=Severity.WARNING,
            hint="drop the entry or register the relation in the catalog",
        )


@register_rule(
    "W004",
    scope="workload",
    severity=Severity.NOTE,
    summary="two queries with identical SQL text",
    paper="Section 3.1 (shared subexpressions should merge, not repeat)",
)
def check_duplicate_queries(ctx: SemanticContext) -> Iterator[Diagnostic]:
    rule = get_rule("W004")
    assert ctx.workload is not None
    seen: Dict[str, str] = {}
    for spec in ctx.workload.queries:
        normalized = " ".join(spec.sql.split()).lower()
        if normalized in seen:
            yield rule.diagnostic(
                f"queries {seen[normalized]!r} and {spec.name!r} have "
                f"identical SQL; their frequencies could be combined",
                hint="register one query with the summed fq",
            )
        else:
            seen[normalized] = spec.name


# ---------------------------------------------------------------------------
# MVPP graph rules
# ---------------------------------------------------------------------------
@register_rule(
    "M001",
    scope="mvpp",
    severity=Severity.WARNING,
    summary="per-query selections on a base relation not merged into one "
    "disjunctive stem",
    paper="Figure 4, steps 5/6 (push the disjunction of select conditions "
    "down to the base relations)",
)
def check_select_pushdown(ctx: SemanticContext) -> Iterator[Diagnostic]:
    rule = get_rule("M001")
    assert ctx.mvpp is not None
    mvpp = ctx.mvpp
    for leaf in mvpp.leaves:
        parents = mvpp.parents_of(leaf)
        selects = [p for p in parents if isinstance(p.operator, Select)]
        others = [
            p
            for p in parents
            if not isinstance(p.operator, Select)
            and p.kind is not VertexKind.QUERY
        ]
        if len(selects) >= 2:
            yield rule.diagnostic(
                f"base relation {leaf.name!r} feeds {len(selects)} distinct "
                f"selections ({', '.join(sorted(p.name for p in selects))}); "
                f"the Figure-4 merge should have pushed one disjunction",
                location=ctx.location(leaf),
                hint="re-run generation with push_down=True, or merge the "
                "selections into a single σ(c1 ∨ c2) stem",
            )
        elif selects and others:
            yield rule.diagnostic(
                f"base relation {leaf.name!r} is read both through a "
                f"selection ({selects[0].name}) and raw "
                f"({', '.join(sorted(p.name for p in others))}); a merged "
                f"stem would collapse to the unfiltered read",
                location=ctx.location(leaf),
                hint="the disjunction with an unfiltered sharer is TRUE; "
                "drop the per-query selection from the shared path",
            )


@register_rule(
    "M002",
    scope="mvpp",
    severity=Severity.WARNING,
    summary="base relation flows full-width into a join though some "
    "attributes are never used",
    paper="Figure 4, steps 5/6 (push the union of referenced attributes "
    "down to the base relations)",
)
def check_project_pushdown(ctx: SemanticContext) -> Iterator[Diagnostic]:
    rule = get_rule("M002")
    assert ctx.mvpp is not None
    mvpp = ctx.mvpp
    for leaf in mvpp.leaves:
        joins_above = [
            p for p in mvpp.parents_of(leaf) if isinstance(p.operator, Join)
        ]
        if not joins_above:
            continue  # a σ/π stem (or a query root) guards this leaf
        used: Set[str] = set()
        for ancestor_id in leaf.parents | mvpp.ancestors(leaf):
            ancestor = mvpp.vertex(ancestor_id)
            if ancestor.kind is VertexKind.QUERY:
                # whatever survives to a query result is used by definition
                used |= set(ancestor.operator.schema.attribute_names)
            else:
                used |= _vertex_references(ancestor)
        unused = set(leaf.operator.schema.attribute_names) - used
        if unused:
            yield rule.diagnostic(
                f"base relation {leaf.name!r} joins at full width but "
                f"{', '.join(sorted(unused))} are never referenced above it",
                location=ctx.location(leaf),
                hint="push a projection of the union of referenced "
                "attributes (plus join attributes) onto the leaf",
            )


@register_rule(
    "M003",
    scope="mvpp",
    severity=Severity.ERROR,
    summary="two vertices compute the same relation (missed merge)",
    paper="Section 3.1 (merge u, v when S(u)=S(v) and R(u)=R(v))",
)
def check_duplicate_subtrees(ctx: SemanticContext) -> Iterator[Diagnostic]:
    rule = get_rule("M003")
    assert ctx.mvpp is not None
    by_signature: Dict[str, Vertex] = {}
    for vertex in ctx.mvpp:
        if vertex.kind is VertexKind.QUERY:
            continue
        first = by_signature.get(vertex.signature)
        if first is None:
            by_signature[vertex.signature] = vertex
        else:
            yield rule.diagnostic(
                f"vertices {first.name!r} and {vertex.name!r} share the "
                f"operator signature {vertex.signature!r}; the common "
                f"subexpression was not merged",
                location=ctx.location(vertex),
                hint="intern both plans through MVPP.add_query so equal "
                "subtrees share one vertex",
            )


@register_rule(
    "M004",
    scope="mvpp",
    severity=Severity.WARNING,
    summary="vertex unreachable from any query root",
    paper="Section 3.1 (every vertex serves some query in R)",
)
def check_reachability(ctx: SemanticContext) -> Iterator[Diagnostic]:
    rule = get_rule("M004")
    assert ctx.mvpp is not None
    mvpp = ctx.mvpp
    for vertex in mvpp:
        if vertex.kind is VertexKind.QUERY:
            continue
        if not mvpp.queries_using(vertex):
            yield rule.diagnostic(
                f"vertex {vertex.name!r} is reachable from no query root; "
                f"it is dead weight in the DAG",
                location=ctx.location(vertex),
                hint="drop the vertex, or re-add the query that used it",
            )


@register_rule(
    "M005",
    scope="mvpp",
    severity=Severity.WARNING,
    summary="missing or zero fq/fu annotation on a root/leaf vertex",
    paper="Section 3.1 (M = (V, A, R, Ca, Cm, fq, fu))",
)
def check_frequency_annotations(ctx: SemanticContext) -> Iterator[Diagnostic]:
    rule = get_rule("M005")
    assert ctx.mvpp is not None
    for root in ctx.mvpp.roots:
        if root.frequency <= 0:
            yield rule.diagnostic(
                f"query root {root.name!r} has fq={root.frequency:g}",
                location=ctx.location(root),
                hint="annotate a positive access frequency",
            )
    for leaf in ctx.mvpp.leaves:
        if leaf.frequency < 0:
            yield rule.diagnostic(
                f"base relation {leaf.name!r} has negative fu="
                f"{leaf.frequency:g}",
                location=ctx.location(leaf),
                severity=Severity.ERROR,
            )
        elif leaf.frequency == 0:
            yield rule.diagnostic(
                f"base relation {leaf.name!r} has fu=0; views over it are "
                f"maintained for free",
                location=ctx.location(leaf),
                hint="set fu, or leave it unset for the once-per-period "
                "default",
            )


@register_rule(
    "M006",
    scope="mvpp",
    severity=Severity.ERROR,
    summary="negative access or maintenance cost annotation",
    paper="Section 4.1 (Ca, Cm are block-access counts)",
)
def check_negative_costs(ctx: SemanticContext) -> Iterator[Diagnostic]:
    rule = get_rule("M006")
    assert ctx.mvpp is not None
    if not ctx.mvpp.is_annotated:
        return
    for vertex in ctx.mvpp:
        if vertex.access_cost < 0 or vertex.maintenance_cost < 0:
            yield rule.diagnostic(
                f"vertex {vertex.name!r} has Ca={vertex.access_cost:g}, "
                f"Cm={vertex.maintenance_cost:g}; costs must be >= 0",
                location=ctx.location(vertex),
                hint="re-annotate the MVPP against a sane cost model",
            )


@register_rule(
    "M007",
    scope="mvpp",
    severity=Severity.ERROR,
    summary="access cost not monotone along the DAG (Ca(v) < Ca(child))",
    paper="Section 4.1 (Ca accumulates bottom-up from the base relations)",
)
def check_cost_monotonicity(ctx: SemanticContext) -> Iterator[Diagnostic]:
    rule = get_rule("M007")
    assert ctx.mvpp is not None
    mvpp = ctx.mvpp
    if not mvpp.is_annotated:
        return
    for vertex in mvpp:
        if vertex.kind is not VertexKind.OPERATION:
            continue
        for child in mvpp.children_of(vertex):
            if vertex.access_cost < child.access_cost:
                yield rule.diagnostic(
                    f"vertex {vertex.name!r} has Ca={vertex.access_cost:g} "
                    f"below its input {child.name!r} "
                    f"(Ca={child.access_cost:g}); greedy savings would go "
                    f"negative",
                    location=ctx.location(vertex),
                    hint="Ca(v) must be local_cost(v) + Σ Ca(children); "
                    "re-annotate the graph",
                )
        if vertex.maintenance_cost < vertex.access_cost:
            yield rule.diagnostic(
                f"vertex {vertex.name!r} has Cm={vertex.maintenance_cost:g} "
                f"< Ca={vertex.access_cost:g}; recompute maintenance cannot "
                f"cost less than computing the relation",
                location=ctx.location(vertex),
            )


# ---------------------------------------------------------------------------
# design rules
# ---------------------------------------------------------------------------
@register_rule(
    "D001",
    scope="design",
    severity=Severity.WARNING,
    summary="materialized vertex with non-positive weight w(v)",
    paper="Section 4.3 / Figure 9 (only positive-weight vertices are "
    "selection candidates)",
)
def check_materialized_weights(ctx: SemanticContext) -> Iterator[Diagnostic]:
    rule = get_rule("D001")
    assert ctx.mvpp is not None and ctx.materialized is not None
    calculator = ctx.calculator or MVPPCostCalculator(ctx.mvpp, PER_PERIOD)
    for vertex in ctx.materialized:
        weight = calculator.weight(vertex)
        if weight <= 0:
            yield rule.diagnostic(
                f"materialized vertex {vertex.name!r} has w(v)="
                f"{weight:g}; its maintenance outweighs its query saving",
                location=ctx.location(vertex),
                hint="drop the view or revisit the fq/fu annotations",
            )


@register_rule(
    "D002",
    scope="design",
    severity=Severity.WARNING,
    summary="materialized vertex shadowed by materialized destinations",
    paper="Figure 9, step 9 (remove v if all d ∈ D(v) are materialized)",
)
def check_shadowed_views(ctx: SemanticContext) -> Iterator[Diagnostic]:
    rule = get_rule("D002")
    assert ctx.mvpp is not None and ctx.materialized is not None
    mvpp = ctx.mvpp
    chosen = {vertex.vertex_id for vertex in ctx.materialized}
    for vertex in ctx.materialized:
        parents = mvpp.parents_of(vertex)
        if parents and all(p.vertex_id in chosen for p in parents):
            yield rule.diagnostic(
                f"materialized vertex {vertex.name!r} is never read: every "
                f"destination ({', '.join(p.name for p in parents)}) is "
                f"itself materialized",
                location=ctx.location(vertex),
                hint="drop the shadowed view (the paper's step 9)",
            )


# ---------------------------------------------------------------------------
# adaptive-policy rules
# ---------------------------------------------------------------------------
@register_rule(
    "A001",
    scope="adaptive",
    severity=Severity.WARNING,
    summary="cooldown shorter than the drift estimation window "
    "(guaranteed thrash)",
    paper="beyond the paper: docs/adaptive.md (hysteresis)",
)
def check_cooldown_vs_window(ctx: SemanticContext) -> Iterator[Diagnostic]:
    rule = get_rule("A001")
    assert ctx.policy is not None
    policy = ctx.policy
    if policy.cooldown_ticks < policy.window_ticks:
        yield rule.diagnostic(
            f"cooldown_ticks={policy.cooldown_ticks:g} is shorter than the "
            f"drift window ({policy.window_ticks:g} ticks = "
            f"{policy.window_periods:g} periods); the estimate that "
            f"triggered one redesign can trigger the next before it leaves "
            f"the window, so an alternating workload redesigns every "
            f"evaluation",
            hint="raise cooldown_ticks to at least window_periods * "
            "period_ticks",
        )


@register_rule(
    "A002",
    scope="adaptive",
    severity=Severity.WARNING,
    summary="zero min_benefit_margin accepts break-even migrations",
    paper="beyond the paper: docs/adaptive.md (benefit gate)",
)
def check_benefit_margin(ctx: SemanticContext) -> Iterator[Diagnostic]:
    rule = get_rule("A002")
    assert ctx.policy is not None
    policy = ctx.policy
    if policy.min_benefit_margin == 0:
        yield rule.diagnostic(
            "min_benefit_margin=0 accepts any migration whose net benefit "
            "is merely non-negative; estimation noise around break-even "
            "flips the view set back and forth for free on paper while "
            "paying real build cost",
            hint="set a positive margin (a fraction of the workload's "
            "per-period total cost is a good start)",
        )


# ---------------------------------------------------------------------------
# streaming-policy rules
# ---------------------------------------------------------------------------
@register_rule(
    "S001",
    scope="streaming",
    severity=Severity.WARNING,
    summary="staleness bound not covered by change-log retention",
    paper="beyond the paper: docs/streaming.md (bounded staleness)",
)
def check_lag_vs_retention(ctx: SemanticContext) -> Iterator[Diagnostic]:
    rule = get_rule("S001")
    assert ctx.streaming is not None
    policy = ctx.streaming
    if not policy.covers_lag_bound:
        yield rule.diagnostic(
            f"max_lag_records={policy.max_lag_records} exceeds the "
            f"change-log retention ({policy.retention} records per "
            f"relation); a view can drift past the ring's history while "
            f"still inside its staleness bound, forcing a batch recompute "
            f"exactly when the bound promised an incremental catch-up",
            hint="raise retention to at least max_lag_records, or tighten "
            "the lag bound",
        )


@register_rule(
    "S002",
    scope="streaming",
    severity=Severity.WARNING,
    summary="streaming view with no incrementally maintainable edge",
    paper="beyond the paper: docs/streaming.md (delta propagation rules)",
)
def check_streamable_edges(ctx: SemanticContext) -> Iterator[Diagnostic]:
    rule = get_rule("S002")
    assert ctx.streaming is not None
    if not ctx.materialized:
        return
    from repro.cdc.propagation import MODE_DELTA, PropagationGraph
    from repro.warehouse.view import MaterializedView

    views = [
        MaterializedView(name=vertex.name, plan=vertex.operator)
        for vertex in ctx.materialized
    ]
    graph = PropagationGraph(views)
    for view in views:
        edges = [
            graph.rule(view.name, relation)
            for relation in sorted(view.base_relations)
        ]
        if edges and all(
            edge is not None and edge.mode != MODE_DELTA for edge in edges
        ):
            reasons = sorted(
                {edge.reason for edge in edges if edge.reason}, key=str
            )
            yield rule.diagnostic(
                f"view {view.name!r} falls back to a full recompute for "
                f"every base-relation delta "
                f"({', '.join(reasons) or 'no delta rule applies'}); "
                f"streaming maintenance degrades it to batch refresh on "
                f"each drain",
                hint="materialize a delta-friendly ancestor instead, or "
                "exclude the view from the streaming tier",
            )


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------
def _run_rules(
    scopes: Sequence[str], ctx: SemanticContext, target: str
) -> LintReport:
    report = LintReport(target=target)
    for scope in scopes:
        for rule in rules_for(scope):
            report.extend(rule.check(ctx))
    report.diagnostics = report.sorted()
    return report


def lint_workload(workload: Workload) -> LintReport:
    """Run the workload-scope rules over one design problem."""
    ctx = SemanticContext(workload=workload)
    return _run_rules(("workload",), ctx, target=f"workload {workload.name!r}")


def lint_mvpp(mvpp: MVPP, workload: Optional[Workload] = None) -> LintReport:
    """Run the MVPP-scope rules over one (annotated or raw) graph."""
    ctx = SemanticContext(workload=workload, mvpp=mvpp)
    return _run_rules(("mvpp",), ctx, target=f"MVPP {mvpp.name!r}")


def lint_design(
    mvpp: MVPP,
    materialized: Sequence[Vertex],
    calculator: Optional[MVPPCostCalculator] = None,
    workload: Optional[Workload] = None,
    policy: Optional[Any] = None,
    streaming: Optional[Any] = None,
) -> LintReport:
    """Run the MVPP- and design-scope rules over a finished design.

    With ``policy`` (an :class:`~repro.adaptive.policy.AdaptivePolicy`,
    e.g. ``DesignConfig.adaptive``), the adaptive-scope rules run too;
    with ``streaming`` (a :class:`~repro.cdc.policy.StreamingPolicy`,
    e.g. ``DesignConfig.streaming``), the streaming-scope rules do.
    """
    ctx = SemanticContext(
        workload=workload,
        mvpp=mvpp,
        materialized=list(materialized),
        calculator=calculator,
        policy=policy,
        streaming=streaming,
    )
    scopes: List[str] = ["mvpp", "design"]
    if policy is not None:
        scopes.append("adaptive")
    if streaming is not None:
        scopes.append("streaming")
    return _run_rules(scopes, ctx, target=f"design on MVPP {mvpp.name!r}")


def lint_adaptive_policy(policy: Any) -> LintReport:
    """Run the adaptive-scope rules over one AdaptivePolicy."""
    from repro.adaptive.policy import AdaptivePolicy

    if not isinstance(policy, AdaptivePolicy):
        raise LintError(f"not an AdaptivePolicy: {policy!r}")
    ctx = SemanticContext(policy=policy)
    return _run_rules(("adaptive",), ctx, target="adaptive policy")


def lint_streaming_policy(policy: Any) -> LintReport:
    """Run the streaming-scope rules over one StreamingPolicy.

    Without a design in hand only the policy-shape rules (S001) can
    fire; run :func:`lint_design` with ``streaming=`` to also check the
    chosen views' delta edges (S002).
    """
    from repro.cdc.policy import StreamingPolicy

    if not isinstance(policy, StreamingPolicy):
        raise LintError(f"not a StreamingPolicy: {policy!r}")
    ctx = SemanticContext(streaming=policy)
    return _run_rules(("streaming",), ctx, target="streaming policy")
