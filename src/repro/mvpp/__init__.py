"""The paper's contribution: MVPP construction and materialized view design."""

from repro.mvpp.builder import build_from_plans, build_from_workload
from repro.mvpp.config import (
    DEFAULT_DESIGN_CONFIG,
    CostedResult,
    DesignConfig,
)
from repro.mvpp.cost import (
    PER_BASE,
    PER_PERIOD,
    CostBreakdown,
    CostCache,
    MVPPCostCalculator,
)
from repro.mvpp.exhaustive import (
    MAX_EXHAUSTIVE_CANDIDATES,
    exhaustive_optimal,
    greedy_forward,
)
from repro.mvpp.generation import (
    DesignResult,
    QueryPlanInfo,
    build_mvpp,
    design,
    generate_mvpps,
    prepare_queries,
)
from repro.mvpp.graph import MVPP, Vertex, VertexKind
from repro.mvpp.materialization import (
    MaterializationResult,
    SelectionStep,
    select_views,
)
from repro.mvpp import mqo, serialize, strategies
from repro.mvpp.strategies import (
    StrategyResult,
    get_strategy,
    register_strategy,
    strategy_names,
)
from repro.mvpp.annealing import AnnealingConfig, simulated_annealing
from repro.mvpp.genetic import GeneticConfig, genetic_search
from repro.mvpp.mqo import batch_execution, mqo_as_design
from repro.mvpp.merge import SkeletonPool, merge_skeletons, skeleton_join_conjuncts

__all__ = [
    "AnnealingConfig",
    "CostBreakdown",
    "CostCache",
    "CostedResult",
    "DEFAULT_DESIGN_CONFIG",
    "DesignConfig",
    "GeneticConfig",
    "StrategyResult",
    "batch_execution",
    "genetic_search",
    "mqo",
    "mqo_as_design",
    "serialize",
    "simulated_annealing",
    "DesignResult",
    "MAX_EXHAUSTIVE_CANDIDATES",
    "MVPP",
    "MVPPCostCalculator",
    "MaterializationResult",
    "PER_BASE",
    "PER_PERIOD",
    "QueryPlanInfo",
    "SelectionStep",
    "SkeletonPool",
    "Vertex",
    "VertexKind",
    "build_from_plans",
    "build_from_workload",
    "build_mvpp",
    "design",
    "exhaustive_optimal",
    "generate_mvpps",
    "get_strategy",
    "greedy_forward",
    "merge_skeletons",
    "prepare_queries",
    "register_strategy",
    "select_views",
    "skeleton_join_conjuncts",
    "strategies",
    "strategy_names",
]
