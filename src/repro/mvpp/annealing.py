"""Simulated-annealing view selection — a randomized baseline.

The follow-up literature on the MVPP framework explored randomized and
evolutionary search over the same 2^n design space; this module provides
a seeded simulated-annealing searcher as a third baseline (alongside the
paper's weight-greedy heuristic and the exhaustive optimum) for the
scaling benchmark.

The neighborhood is single-vertex flips; temperature starts at a fraction
of the all-virtual cost and cools geometrically.  Fully deterministic for
a given seed.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence, Tuple

from repro.errors import MVPPError
from repro.mvpp.cost import CostBreakdown, MVPPCostCalculator
from repro.mvpp.graph import MVPP, Vertex


@dataclass(frozen=True)
class AnnealingConfig:
    """Search knobs; defaults suit MVPPs with up to ~50 candidates."""

    seed: int = 0
    initial_temperature_fraction: float = 0.05  # × all-virtual cost
    cooling: float = 0.9
    steps_per_temperature: int = 40
    minimum_temperature_fraction: float = 1e-5

    def __post_init__(self) -> None:
        if not 0.0 < self.cooling < 1.0:
            raise MVPPError(f"cooling must be in (0, 1): {self.cooling}")
        if self.steps_per_temperature < 1:
            raise MVPPError("steps_per_temperature must be >= 1")
        if self.initial_temperature_fraction <= 0:
            raise MVPPError("initial temperature fraction must be positive")

    @classmethod
    def from_design(cls, config) -> "AnnealingConfig":
        """Search knobs derived from a :class:`~repro.mvpp.config.DesignConfig`
        (currently just the shared seed, keeping runs reproducible)."""
        return cls(seed=config.seed)


def simulated_annealing(
    mvpp: MVPP,
    calculator: Optional[MVPPCostCalculator] = None,
    candidates: Optional[Sequence[Vertex]] = None,
    config: AnnealingConfig = AnnealingConfig(),
) -> Tuple[List[Vertex], CostBreakdown]:
    """Search for a low-cost materialization set by annealing.

    Returns the best set visited and its cost breakdown.  Starting from
    the empty set guarantees the result is never worse than all-virtual.
    """
    calculator = calculator or MVPPCostCalculator(mvpp)
    pool = list(candidates) if candidates is not None else mvpp.operations
    if not pool:
        return [], calculator.breakdown(())
    rng = random.Random(config.seed)

    def total(state: FrozenSet[int]) -> float:
        return calculator.breakdown(state).total

    current: FrozenSet[int] = frozenset()
    current_cost = total(current)
    best, best_cost = current, current_cost

    all_virtual = current_cost
    temperature = max(all_virtual * config.initial_temperature_fraction, 1e-9)
    floor = max(all_virtual * config.minimum_temperature_fraction, 1e-12)

    while temperature > floor:
        for _ in range(config.steps_per_temperature):
            flip = rng.choice(pool).vertex_id
            neighbor = (
                current - {flip} if flip in current else current | {flip}
            )
            neighbor_cost = total(neighbor)
            delta = neighbor_cost - current_cost
            if delta <= 0 or rng.random() < math.exp(-delta / temperature):
                current, current_cost = neighbor, neighbor_cost
                if current_cost < best_cost:
                    best, best_cost = current, current_cost
        temperature *= config.cooling

    chosen = [mvpp.vertex(vertex_id) for vertex_id in sorted(best)]
    return chosen, calculator.breakdown(chosen)
