"""Direct MVPP construction from ready-made query plans.

:func:`build_from_plans` interns a set of (already optimized or
hand-built) plans into one MVPP, sharing common subexpressions by
signature — the Figure 2(b) merge, without the Figure-4 reordering.  It is
the entry point used when the caller controls plan shapes (tests, the
Figure-2/3 benchmarks, and the warehouse facade's custom-plan path).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.algebra.operators import Operator
from repro.mvpp.graph import MVPP
from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.workload.spec import Workload


def build_from_plans(
    plans: Sequence[Tuple[str, Operator, float]],
    estimator: CardinalityEstimator,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    update_frequencies: Optional[Dict[str, float]] = None,
    name: str = "mvpp",
    maintenance_write: bool = False,
) -> MVPP:
    """Intern ``(query name, plan, fq)`` triples into an annotated MVPP."""
    mvpp = MVPP(name=name)
    for query_name, plan, frequency in plans:
        mvpp.add_query(query_name, plan, frequency)
    for leaf in mvpp.leaves:
        if update_frequencies and leaf.name in update_frequencies:
            leaf.frequency = update_frequencies[leaf.name]
    mvpp.annotate(estimator, cost_model, maintenance_write=maintenance_write)
    mvpp.assign_names()
    return mvpp


def build_from_workload(
    workload: Workload,
    estimator: Optional[CardinalityEstimator] = None,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    optimize: bool = True,
    name: Optional[str] = None,
) -> MVPP:
    """Parse, (optionally) optimize, and intern a workload's queries.

    Unlike :func:`repro.mvpp.generation.generate_mvpps` this performs no
    join-pattern merging or push-down rewriting: sharing arises only where
    the individually-built plans already coincide.  Useful as the "naive
    merge" baseline against the Figure-4 generator.
    """
    from repro.optimizer.heuristics import optimize_query
    from repro.sql.translator import parse_query

    estimator = estimator or CardinalityEstimator(workload.statistics)
    plans = []
    for spec in workload.queries:
        plan = parse_query(spec.sql, workload.catalog)
        if optimize:
            plan = optimize_query(plan, estimator, cost_model)
        plans.append((spec.name, plan, spec.frequency))
    return build_from_plans(
        plans,
        estimator,
        cost_model,
        update_frequencies=dict(workload.update_frequencies),
        name=name or f"{workload.name}-naive",
    )
