"""The unified design-pipeline configuration and result protocol.

Historically the pipeline grew three divergent entry-point signatures —
``repro.design(workload, estimator, cost_model, rotations, ...)``,
``DataWarehouse.design(rotations, push_down)`` and the CLI's flag set.
:class:`DesignConfig` replaces all of them: one frozen dataclass holding
every design-time knob (selection strategy, candidate count, parallel
workers, cost-cache toggle, seed), accepted by every entry point.  The
old keyword arguments keep working through :func:`coerce_design_config`,
which shims them into a config and emits a :class:`DeprecationWarning`.

:class:`CostedResult` is the common read protocol shared by
:class:`~repro.mvpp.generation.DesignResult` and
:class:`~repro.mvpp.strategies.StrategyResult`: ``query_cost``,
``maintenance_cost``, ``total_cost`` and ``views``, so Table-2 rows and
full pipeline results are interchangeable in reports and tests.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from typing import Any, Dict, Optional, Protocol, Tuple, runtime_checkable

from repro.errors import MVPPError
from repro.mvpp.cost import PER_BASE, PER_PERIOD
from repro.parallel.executor import EXECUTOR_KINDS
from repro.resilience.config import ResilienceConfig

__all__ = [
    "CostedResult",
    "DesignConfig",
    "DEFAULT_DESIGN_CONFIG",
    "coerce_design_config",
]


@dataclass(frozen=True)
class DesignConfig:
    """Every knob of the design pipeline in one immutable value.

    ``strategy`` names a registered selection strategy (see
    :func:`repro.mvpp.strategies.strategy_names`); ``rotations`` caps the
    number of Figure-4 candidate MVPPs (``None`` = one per query);
    ``workers`` / ``executor`` control the parallel fan-out (``workers=1``
    is serial, ``workers=0`` auto-sizes to the CPU count); ``cache``
    toggles the shared :class:`~repro.mvpp.cost.CostCache`; ``seed``
    feeds the randomized strategies (annealing, genetic).

    ``maintenance_trigger=None`` means "the caller's default" — plain
    :func:`repro.mvpp.generation.design` resolves it to ``per-period``
    (the paper's accounting) while :meth:`DataWarehouse.design
    <repro.warehouse.warehouse.DataWarehouse.design>` substitutes the
    warehouse's configured trigger.

    ``lint=True`` runs the semantic linter (:mod:`repro.lint.semantic`)
    over the chosen design before returning: the report is attached as
    ``DesignResult.lint_report``, its counters land in :mod:`repro.obs`,
    and error-severity findings raise :class:`~repro.errors.LintError`.

    ``adaptive`` (an :class:`~repro.adaptive.policy.AdaptivePolicy`, or
    ``None`` for a static design) configures the online controller built
    by :meth:`DataWarehouse.controller
    <repro.warehouse.warehouse.DataWarehouse.controller>`: drift
    detection windows, hysteresis, and the cost-gated migration rule.

    ``streaming`` (a :class:`~repro.cdc.policy.StreamingPolicy`, or
    ``None``) is the default bounded-staleness / load-leveling policy
    :meth:`DataWarehouse.enable_streaming
    <repro.warehouse.warehouse.DataWarehouse.enable_streaming>` applies
    for CDC-driven streaming maintenance.
    """

    strategy: str = "heuristic"
    rotations: Optional[int] = None
    workers: int = 1
    executor: str = "auto"
    cache: bool = True
    seed: int = 0
    maintenance_trigger: Optional[str] = None
    push_down: bool = True
    include_naive: bool = False
    lint: bool = False
    resilience: Optional[ResilienceConfig] = None
    adaptive: Optional[Any] = None
    engine: Optional[str] = None
    streaming: Optional[Any] = None

    def __post_init__(self) -> None:
        if self.resilience is not None and not isinstance(
            self.resilience, ResilienceConfig
        ):
            raise MVPPError(
                f"resilience must be a ResilienceConfig: {self.resilience!r}"
            )
        if self.streaming is not None:
            # Imported lazily: repro.cdc depends on this module's users.
            from repro.cdc.policy import StreamingPolicy

            if not isinstance(self.streaming, StreamingPolicy):
                raise MVPPError(
                    f"streaming must be a StreamingPolicy: {self.streaming!r}"
                )
        if self.adaptive is not None:
            # Imported lazily: repro.adaptive depends on this module.
            from repro.adaptive.policy import AdaptivePolicy

            if not isinstance(self.adaptive, AdaptivePolicy):
                raise MVPPError(
                    f"adaptive must be an AdaptivePolicy: {self.adaptive!r}"
                )
        if not self.strategy or not isinstance(self.strategy, str):
            raise MVPPError(f"strategy must be a non-empty name: {self.strategy!r}")
        if self.rotations is not None and self.rotations < 1:
            raise MVPPError(f"rotations must be >= 1 (or None): {self.rotations}")
        if self.workers < 0:
            raise MVPPError(f"workers must be >= 0: {self.workers}")
        if self.executor not in EXECUTOR_KINDS:
            raise MVPPError(
                f"unknown executor {self.executor!r}; "
                f"expected one of {EXECUTOR_KINDS}"
            )
        if self.maintenance_trigger not in (None, PER_BASE, PER_PERIOD):
            raise MVPPError(
                f"unknown maintenance trigger: {self.maintenance_trigger!r}"
            )
        if self.engine is not None:
            from repro.executor.engine import ENGINES

            if self.engine not in ENGINES:
                raise MVPPError(
                    f"unknown execution engine {self.engine!r}; "
                    f"expected one of {ENGINES}"
                )

    # ------------------------------------------------------------- resolution
    def resolved_trigger(self, default: str = PER_PERIOD) -> str:
        """The maintenance trigger with ``None`` resolved to ``default``."""
        return self.maintenance_trigger or default

    @property
    def parallel(self) -> bool:
        """Whether this config requests any parallel fan-out."""
        return self.workers != 1

    def replace(self, **changes: Any) -> "DesignConfig":
        """A copy with the given fields changed (re-validated)."""
        return replace(self, **changes)


#: The all-defaults config: Figure-9 heuristic, serial, cache on.
DEFAULT_DESIGN_CONFIG = DesignConfig()

#: Legacy keyword arguments accepted (with a DeprecationWarning) by the
#: entry points, mapped to their DesignConfig field.
_LEGACY_KWARGS = {
    "rotations": "rotations",
    "maintenance_trigger": "maintenance_trigger",
    "push_down": "push_down",
    "include_naive": "include_naive",
    "workers": "workers",
}


def coerce_design_config(
    config: Optional[DesignConfig],
    legacy: Dict[str, Any],
    owner: str = "design()",
) -> DesignConfig:
    """Fold legacy keyword arguments into a :class:`DesignConfig`.

    ``legacy`` is the ``**kwargs`` dict an entry point captured.  Known
    legacy keys are shimmed into the config with a
    :class:`DeprecationWarning`; unknown keys raise :class:`TypeError`
    (matching normal keyword-argument behaviour).
    """
    unknown = sorted(set(legacy) - set(_LEGACY_KWARGS))
    if unknown:
        raise TypeError(
            f"{owner} got unexpected keyword argument(s): {', '.join(unknown)}"
        )
    if not legacy:
        return config or DEFAULT_DESIGN_CONFIG
    warnings.warn(
        f"passing {', '.join(sorted(legacy))} to {owner} as keyword "
        f"argument(s) is deprecated; pass a DesignConfig instead "
        f"(e.g. DesignConfig({', '.join(f'{k}=...' for k in sorted(legacy))}))",
        DeprecationWarning,
        stacklevel=3,
    )
    base = config or DEFAULT_DESIGN_CONFIG
    return base.replace(
        **{_LEGACY_KWARGS[key]: value for key, value in legacy.items()}
    )


@runtime_checkable
class CostedResult(Protocol):
    """What any costed design answer exposes, Table-2 row or full design."""

    @property
    def query_cost(self) -> float:
        """Per-period query-processing cost ``Σ fq·C(mv → r)``."""

    @property
    def maintenance_cost(self) -> float:
        """Per-period view-maintenance cost ``Σ fu·Cm``."""

    @property
    def total_cost(self) -> float:
        """``query_cost + maintenance_cost``."""

    @property
    def views(self) -> Tuple[str, ...]:
        """Names of the materialized vertices this result selects."""
