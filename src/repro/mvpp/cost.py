"""Cost functions over an MVPP for a chosen set of materialized vertices.

Implements the paper's Section 4.1 framework::

    C_queryprocessing = Σ_i fq(qi) · C(mv → ri)
    C_maintenance     = Σ_j fu(j)  · C(l  → mv_j)
    C_total           = C_queryprocessing + C_maintenance

``C(mv → r)`` — the cost of answering query ``r`` from the materialized
views — is evaluated by walking ``r``'s plan and *cutting off* every
materialized descendant: accessing a materialized vertex costs a scan of
its stored blocks instead of a recomputation.

Maintenance uses recompute semantics (the paper's assumption): each
materialized view is reconstructed from base relations whenever a base
relation it depends on is updated.  The trigger count is
``Σ_{b ∈ Iv} fu(b)`` by default (the paper's weight formula in
Section 4.3); ``per_period`` counts one refresh per period instead, which
is the accounting used in the paper's worked example and Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Optional, Set, Tuple

from repro.errors import MVPPError
from repro.mvpp.graph import MVPP, Vertex, VertexKind

#: Maintenance trigger accounting modes.
PER_BASE = "per-base"  # Σ_{b∈Iv} fu(b) refreshes (Section 4.3 weight formula)
PER_PERIOD = "per-period"  # max over bases: one refresh per update period

#: Cache key: (subtree signature, materialized-descendant signatures).
CacheKey = Tuple[str, FrozenSet[str]]


class CostCache:
    """Memoized subtree access costs, shared across MVPP candidates.

    The access cost of a vertex is fully determined by (a) the canonical
    signature of its operator subtree and (b) which of that subtree's
    vertices are materialized — given a fixed statistics catalog and
    cost model.  Keying on ``(signature, frozenset(materialized subtree
    signatures))`` therefore lets *different* candidate MVPPs of the same
    design run share cost computations: the Figure-4 rotations produce
    heavily overlapping DAGs, and the Figure-9 / refinement loops
    re-cost the same subtrees under many materialization sets.

    Sharing contract: one cache per (statistics, cost model) pair.  The
    warehouse owns a persistent instance and calls :meth:`invalidate`
    whenever statistics change (``sync_statistics``); standalone
    ``design()`` runs create a fresh cache per run.

    Thread-safety: lookups/stores are plain dict operations (atomic
    under the GIL) so the cache is safe to share across the thread
    executor; the hit/miss counters may undercount slightly under
    contention, which only affects reporting, never costs.  Process
    workers get pickled per-process copies — cross-candidate sharing is
    a serial/thread feature.
    """

    __slots__ = ("_data", "hits", "misses", "invalidations")

    def __init__(self) -> None:
        self._data: Dict[CacheKey, float] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def lookup(self, key: CacheKey) -> Optional[float]:
        value = self._data.get(key)
        if value is None:
            self.misses += 1
        else:
            self.hits += 1
        return value

    def store(self, key: CacheKey, value: float) -> None:
        self._data[key] = value

    def invalidate(self) -> None:
        """Drop every entry (statistics or cost model changed)."""
        self._data.clear()
        self.invalidations += 1

    def __len__(self) -> int:
        return len(self._data)

    @property
    def hit_ratio(self) -> float:
        """Hits over lookups (0.0 before any lookup)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def stats(self) -> Dict[str, float]:
        """A JSON-safe snapshot: hits, misses, ratio, size."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_ratio": self.hit_ratio,
            "size": len(self._data),
            "invalidations": self.invalidations,
        }

    def publish(self, hits_before: int = 0, misses_before: int = 0) -> None:
        """Export counter deltas to the :mod:`repro.obs` registry.

        Increments ``cost_cache.hits`` / ``cost_cache.misses`` by the
        activity since the given baseline and sets the
        ``cost_cache.size`` / ``cost_cache.hit_ratio`` gauges.
        """
        from repro import obs

        registry = obs.metrics()
        registry.counter("cost_cache.hits").inc(max(0, self.hits - hits_before))
        registry.counter("cost_cache.misses").inc(
            max(0, self.misses - misses_before)
        )
        registry.gauge("cost_cache.size").set(len(self._data))
        registry.gauge("cost_cache.hit_ratio").set(self.hit_ratio)
        if obs.enabled():
            obs.journal_event(
                "cost_cache.publish",
                hits=max(0, self.hits - hits_before),
                misses=max(0, self.misses - misses_before),
                size=len(self._data),
            )


@dataclass(frozen=True)
class CostBreakdown:
    """Query-processing, maintenance and total cost of a design."""

    query_processing: float
    maintenance: float

    @property
    def total(self) -> float:
        return self.query_processing + self.maintenance


class MVPPCostCalculator:
    """Evaluates designs (sets of materialized vertices) over one MVPP."""

    def __init__(
        self,
        mvpp: MVPP,
        maintenance_trigger: str = PER_PERIOD,
        cache: Optional[CostCache] = None,
    ):
        mvpp.require_annotation()
        if maintenance_trigger not in (PER_BASE, PER_PERIOD):
            raise MVPPError(
                f"unknown maintenance trigger mode: {maintenance_trigger!r}"
            )
        self.mvpp = mvpp
        self.maintenance_trigger = maintenance_trigger
        self.cache = cache
        # Per-vertex {v} ∪ descendants(v) id sets, built lazily: the
        # shared-cache key needs the materialized ids *within* v's
        # subtree, mapped to their canonical signatures.
        self._closures: Dict[int, FrozenSet[int]] = {}

    # ------------------------------------------------------------------ cost
    def access_cost(self, vertex: Vertex, materialized: FrozenSet[int]) -> float:
        """Cost of producing ``R(v)`` given ``materialized`` vertices.

        If ``vertex`` itself is materialized this is the cost of scanning
        it; otherwise its operation cost plus the (recursive) cost of its
        inputs.  Memoized per call via an explicit cache.
        """
        cache: Dict[int, float] = {}
        return self._access(vertex, materialized, cache)

    def _access(
        self, vertex: Vertex, materialized: FrozenSet[int], cache: Dict[int, float]
    ) -> float:
        cached = cache.get(vertex.vertex_id)
        if cached is not None:
            return cached
        key: Optional[CacheKey] = None
        if self.cache is not None and not vertex.is_leaf:
            key = self._cache_key(vertex, materialized)
            shared = self.cache.lookup(key)
            if shared is not None:
                # Per-call memo owned by access_cost(), not caller state.
                cache[vertex.vertex_id] = shared  # lint: ignore[E203]
                return shared
        if vertex.vertex_id in materialized:
            cost = self._materialized_access_cost(vertex, materialized)
        elif vertex.is_leaf:
            cost = self._leaf_access_cost(vertex)
        else:
            cost = vertex.local_cost + sum(
                self._access(child, materialized, cache)
                for child in self.mvpp.children_of(vertex)
            )
        if key is not None:
            self.cache.store(key, cost)
        # Per-call memo owned by access_cost(), not caller state.
        cache[vertex.vertex_id] = cost  # lint: ignore[E203]
        return cost

    # Overridable costing rules shared with the distributed calculator
    # (repro.distributed.comm_cost): subclasses change *where* data lives,
    # never the traversal, so the two models stay structurally identical.
    def _materialized_access_cost(
        self, vertex: Vertex, materialized: FrozenSet[int]
    ) -> float:
        """Scanning a materialized vertex (stored at the warehouse).

        Without synced statistics the stored size is unknown, so the
        scan is priced as a warehouse-local recomputation — never with a
        transfer term, because the stored copy lives at the warehouse
        regardless of where its lineage does.
        """
        if vertex.stats is not None:
            return float(vertex.stats.blocks)
        return self._local_recompute_cost(vertex, materialized)

    def _leaf_access_cost(self, vertex: Vertex) -> float:
        """Reading a base relation (0 in the centralized model)."""
        return 0.0

    def _local_recompute_cost(
        self, vertex: Vertex, materialized: FrozenSet[int]
    ) -> float:
        """Recompute ``vertex`` entirely at the warehouse (no transfers).

        Materialized descendants with known sizes cut the recursion at a
        stored scan; stats-less ones recurse (their stored size is just
        as unknown from here); base relations cost 0 — this prices the
        local proxy for scanning an unknown-size stored view, so no
        communication term may enter.
        """
        if vertex.is_leaf:
            return 0.0
        total = vertex.local_cost
        for child in self.mvpp.children_of(vertex):
            if child.vertex_id in materialized and child.stats is not None:
                total += float(child.stats.blocks)
            else:
                total += self._local_recompute_cost(child, materialized)
        return total

    def _closure(self, vertex: Vertex) -> FrozenSet[int]:
        """``{v} ∪ S*{v}`` as ids, memoized per calculator."""
        ids = self._closures.get(vertex.vertex_id)
        if ids is None:
            ids = frozenset(self.mvpp.descendants(vertex)) | {vertex.vertex_id}
            self._closures[vertex.vertex_id] = ids
        return ids

    def _cache_key(
        self, vertex: Vertex, materialized: FrozenSet[int]
    ) -> CacheKey:
        """Canonical shared-cache key for ``vertex`` under a design.

        Only materialized vertices *inside* the subtree can influence
        its access cost, so the key narrows the materialized set to the
        subtree closure and canonicalizes ids to operator signatures —
        making the entry valid for any candidate MVPP that contains an
        identical subtree.
        """
        relevant = materialized & self._closure(vertex)
        return (
            vertex.signature,
            frozenset(self.mvpp.vertex(i).signature for i in relevant),
        )

    def query_processing_cost(self, materialized: FrozenSet[int]) -> float:
        """``Σ fq(qi) · C(mv → ri)`` over all query roots."""
        total = 0.0
        for root in self.mvpp.roots:
            total += root.frequency * self.access_cost(root, materialized)
        return total

    def maintenance_cost(self, materialized: FrozenSet[int]) -> float:
        """``Σ fu · Cm(v)`` over materialized vertices (recompute).

        Iterates in vertex-id order so the float sum is independent of
        the set's hash order (bit-identical across runs and backends).
        """
        total = 0.0
        for vertex_id in sorted(materialized):
            vertex = self.mvpp.vertex(vertex_id)
            if vertex.is_leaf:
                continue  # base relations carry no view-maintenance cost
            total += self.refresh_trigger(vertex) * vertex.maintenance_cost
        return total

    def refresh_trigger(self, vertex: Vertex) -> float:
        """How many refreshes per period ``vertex`` incurs if materialized."""
        bases = self.mvpp.base_relations_of(vertex)
        if not bases:
            return 0.0
        if self.maintenance_trigger == PER_BASE:
            return sum(b.frequency for b in bases)
        return max(b.frequency for b in bases)

    def breakdown(self, materialized: Iterable[Vertex]) -> CostBreakdown:
        """Full cost breakdown for a set of vertices to materialize."""
        ids = frozenset(self._as_ids(materialized))
        return CostBreakdown(
            query_processing=self.query_processing_cost(ids),
            maintenance=self.maintenance_cost(ids),
        )

    def total_cost(self, materialized: Iterable[Vertex]) -> float:
        return self.breakdown(materialized).total

    def breakdown_with_frequencies(
        self,
        materialized: Iterable[Vertex],
        query_frequencies: Dict[str, float],
        update_frequencies: Dict[str, float],
    ) -> CostBreakdown:
        """Re-weigh a design under frequencies other than the annotated ones.

        Access costs ``Ca`` and maintenance costs ``Cm`` depend only on
        statistics and the materialized set, never on frequencies, so an
        installed design can be evaluated under a *live* frequency vector
        (e.g. the adaptive controller's estimate) without re-annotating
        the graph: query cost weighs each root by
        ``query_frequencies[name]`` (absent roots cost nothing) and the
        refresh trigger draws base-relation frequencies from
        ``update_frequencies`` (absent relations fall back to the
        annotated ``fu``).  Iteration is name/id ordered so the float
        sums stay bit-identical across runs.
        """
        ids = frozenset(self._as_ids(materialized))
        query = 0.0
        for root in self.mvpp.roots:
            frequency = query_frequencies.get(root.name, 0.0)
            if frequency:
                query += frequency * self.access_cost(root, ids)
        maintenance = 0.0
        for vertex_id in sorted(ids):
            vertex = self.mvpp.vertex(vertex_id)
            if vertex.is_leaf:
                continue
            bases = self.mvpp.base_relations_of(vertex)
            if not bases:
                continue
            frequencies = [
                update_frequencies.get(base.name, base.frequency)
                for base in bases
            ]
            if self.maintenance_trigger == PER_BASE:
                trigger = sum(frequencies)
            else:
                trigger = max(frequencies)
            maintenance += trigger * vertex.maintenance_cost
        return CostBreakdown(query_processing=query, maintenance=maintenance)

    # ---------------------------------------------------------------- weight
    def weight(self, vertex: Vertex) -> float:
        """The paper's ``w(v)``: query saving minus maintenance cost.

        ``w(v) = Σ_{q ∈ Ov} fq(q)·Ca(v)  −  (refresh trigger)·Cm(v)``
        """
        if vertex.is_leaf:
            return 0.0
        saving = sum(
            q.frequency for q in self.mvpp.queries_using(vertex)
        ) * vertex.access_cost
        return saving - self.refresh_trigger(vertex) * vertex.maintenance_cost

    def incremental_saving(
        self, vertex: Vertex, materialized: FrozenSet[int]
    ) -> float:
        """The paper's ``Cs`` (Figure 9, step 5).

        Query-side saving of materializing ``vertex`` given the vertices
        already in ``M``: the access saving ``Ca(v)`` is reduced by the
        savings already captured by materialized descendants of ``v``,
        then the maintenance cost of ``v`` is subtracted.
        """
        if vertex.is_leaf:
            return 0.0
        descendant_ids = self.mvpp.descendants(vertex)
        already_saved = sum(
            self.mvpp.vertex(i).access_cost
            for i in sorted(descendant_ids & materialized)
        )
        effective = vertex.access_cost - already_saved
        saving = sum(
            q.frequency for q in self.mvpp.queries_using(vertex)
        ) * effective
        return saving - self.refresh_trigger(vertex) * vertex.maintenance_cost

    def removal_delta(
        self,
        vertex: Vertex,
        with_ids: FrozenSet[int],
        without_ids: FrozenSet[int],
    ) -> float:
        """Exact ``C_total(without) − C_total(with)`` for dropping ``vertex``.

        Only query roots that read through ``vertex`` can change their
        access cost, and the maintenance sum loses exactly ``vertex``'s
        own term — so the delta is computed by re-costing just those
        roots instead of the whole design (the refinement loop's
        per-candidate full :meth:`breakdown` was O(roots) per probe).
        Roots are visited in vertex-id order for bit-identical sums.
        """
        delta = 0.0
        for root in sorted(
            self.mvpp.queries_using(vertex), key=lambda v: v.vertex_id
        ):
            delta += root.frequency * (
                self.access_cost(root, without_ids)
                - self.access_cost(root, with_ids)
            )
        delta -= self.refresh_trigger(vertex) * vertex.maintenance_cost
        return delta

    # ----------------------------------------------------------------- utils
    def _as_ids(self, vertices: Iterable[Vertex]) -> Set[int]:
        out: Set[int] = set()
        for vertex in vertices:
            if isinstance(vertex, Vertex):
                out.add(vertex.vertex_id)
            elif isinstance(vertex, int):
                out.add(vertex)
            else:
                raise MVPPError(f"not a vertex: {vertex!r}")
        return out
