"""Exhaustive and greedy baselines for the view-selection problem.

The paper notes that the exact problem requires trying ``2^n`` vertex
combinations (Section 4.3).  :func:`exhaustive_optimal` does exactly that
(for small MVPPs) and serves as the optimality yardstick in the scaling
benchmark; :func:`greedy_forward` is the classic add-best-view-until-no-
improvement heuristic used as an additional baseline.
"""

from __future__ import annotations

from itertools import combinations
from typing import TYPE_CHECKING, FrozenSet, List, Optional, Sequence, Tuple

from repro.errors import MVPPError
from repro.mvpp.cost import CostBreakdown, MVPPCostCalculator
from repro.mvpp.graph import MVPP, Vertex

if TYPE_CHECKING:  # pragma: no cover
    from repro.parallel.executor import Executor

#: Hard cap on exhaustive candidates: 2^18 designs is ~260k evaluations.
MAX_EXHAUSTIVE_CANDIDATES = 18


def exhaustive_optimal(
    mvpp: MVPP,
    calculator: Optional[MVPPCostCalculator] = None,
    candidates: Optional[Sequence[Vertex]] = None,
    max_candidates: int = MAX_EXHAUSTIVE_CANDIDATES,
    space_budget: Optional[float] = None,
    executor: Optional["Executor"] = None,
) -> Tuple[List[Vertex], CostBreakdown]:
    """The true optimum over every subset of candidate vertices.

    Candidates default to all operation vertices.  Raises
    :class:`MVPPError` when there are more than ``max_candidates`` of
    them — use :func:`greedy_forward` or the Figure-9 heuristic instead.
    ``space_budget`` (blocks) restricts the search to subsets whose
    stored size fits.

    ``executor`` (a :class:`repro.parallel.Executor`) splits the subset
    enumeration into contiguous chunks evaluated concurrently.  The
    chunks preserve enumeration order and the final argmin keeps the
    serial tie-break (first strictly-cheaper subset wins), so the result
    is bit-identical across backends.
    """
    calculator = calculator or MVPPCostCalculator(mvpp)
    pool = list(candidates) if candidates is not None else mvpp.operations
    if len(pool) > max_candidates:
        raise MVPPError(
            f"{len(pool)} candidates exceed the exhaustive-search cap of "
            f"{max_candidates}; use the heuristic for MVPPs this large"
        )
    baseline = calculator.breakdown(())
    if executor is not None and executor.workers > 1 and pool:
        return _exhaustive_parallel(
            calculator, pool, baseline, space_budget, executor
        )
    best_set: List[Vertex] = []
    best = baseline
    for size in range(1, len(pool) + 1):
        for subset in combinations(pool, size):
            if space_budget is not None and _blocks(subset) > space_budget:
                continue
            breakdown = calculator.breakdown(subset)
            if breakdown.total < best.total:
                best = breakdown
                best_set = list(subset)
    return best_set, best


def _exhaustive_parallel(
    calculator: MVPPCostCalculator,
    pool: List[Vertex],
    baseline: CostBreakdown,
    space_budget: Optional[float],
    executor: "Executor",
) -> Tuple[List[Vertex], CostBreakdown]:
    """Chunked fan-out of the subset sweep (order-preserving argmin)."""
    indexed: List[Tuple[int, ...]] = []
    for size in range(1, len(pool) + 1):
        indexed.extend(combinations(range(len(pool)), size))
    chunk_count = max(1, min(executor.workers * 4, len(indexed)))
    step = (len(indexed) + chunk_count - 1) // chunk_count
    chunks = [indexed[i : i + step] for i in range(0, len(indexed), step)]
    payloads = [(calculator, pool, chunk, space_budget) for chunk in chunks]
    results = executor.map(_chunk_best, payloads)
    best_indices: Optional[Tuple[int, ...]] = None
    best = baseline
    for chunk_best in results:
        if chunk_best is None:
            continue
        indices, breakdown = chunk_best
        if breakdown.total < best.total:
            best = breakdown
            best_indices = indices
    chosen = [pool[i] for i in best_indices] if best_indices else []
    return chosen, best


def _chunk_best(payload):
    """Best subset within one enumeration chunk (module-level: picklable)."""
    calculator, pool, chunk, space_budget = payload
    best: Optional[Tuple[Tuple[int, ...], CostBreakdown]] = None
    for indices in chunk:
        subset = [pool[i] for i in indices]
        if space_budget is not None and _blocks(subset) > space_budget:
            continue
        breakdown = calculator.breakdown(subset)
        if best is None or breakdown.total < best[1].total:
            best = (indices, breakdown)
    return best


def _blocks(vertices: Sequence[Vertex]) -> float:
    return sum(
        float(v.stats.blocks) for v in vertices if v.stats is not None
    )


def greedy_forward(
    mvpp: MVPP,
    calculator: Optional[MVPPCostCalculator] = None,
    candidates: Optional[Sequence[Vertex]] = None,
    space_budget: Optional[float] = None,
) -> Tuple[List[Vertex], CostBreakdown]:
    """Add the single most cost-reducing vertex until nothing improves.

    ``O(n²)`` total-cost evaluations; serves as a strong baseline for the
    Figure-9 heuristic in the scaling benchmark.  ``space_budget``
    (blocks) caps the total size of the chosen views.
    """
    calculator = calculator or MVPPCostCalculator(mvpp)
    pool = list(candidates) if candidates is not None else mvpp.operations
    chosen: List[Vertex] = []
    current = calculator.breakdown(())
    remaining = list(pool)
    used_blocks = 0.0
    while remaining:
        best_vertex: Optional[Vertex] = None
        best_breakdown = current
        for vertex in remaining:
            blocks = float(vertex.stats.blocks) if vertex.stats else 0.0
            if space_budget is not None and used_blocks + blocks > space_budget:
                continue
            breakdown = calculator.breakdown(chosen + [vertex])
            if breakdown.total < best_breakdown.total:
                best_breakdown = breakdown
                best_vertex = vertex
        if best_vertex is None:
            break
        chosen.append(best_vertex)
        remaining.remove(best_vertex)
        used_blocks += float(best_vertex.stats.blocks) if best_vertex.stats else 0.0
        current = best_breakdown
    return chosen, current
