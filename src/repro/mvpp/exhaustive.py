"""Exhaustive and greedy baselines for the view-selection problem.

The paper notes that the exact problem requires trying ``2^n`` vertex
combinations (Section 4.3).  :func:`exhaustive_optimal` does exactly that
(for small MVPPs) and serves as the optimality yardstick in the scaling
benchmark; :func:`greedy_forward` is the classic add-best-view-until-no-
improvement heuristic used as an additional baseline.
"""

from __future__ import annotations

from itertools import combinations
from typing import FrozenSet, List, Optional, Sequence, Tuple

from repro.errors import MVPPError
from repro.mvpp.cost import CostBreakdown, MVPPCostCalculator
from repro.mvpp.graph import MVPP, Vertex

#: Hard cap on exhaustive candidates: 2^18 designs is ~260k evaluations.
MAX_EXHAUSTIVE_CANDIDATES = 18


def exhaustive_optimal(
    mvpp: MVPP,
    calculator: Optional[MVPPCostCalculator] = None,
    candidates: Optional[Sequence[Vertex]] = None,
    max_candidates: int = MAX_EXHAUSTIVE_CANDIDATES,
    space_budget: Optional[float] = None,
) -> Tuple[List[Vertex], CostBreakdown]:
    """The true optimum over every subset of candidate vertices.

    Candidates default to all operation vertices.  Raises
    :class:`MVPPError` when there are more than ``max_candidates`` of
    them — use :func:`greedy_forward` or the Figure-9 heuristic instead.
    ``space_budget`` (blocks) restricts the search to subsets whose
    stored size fits.
    """
    calculator = calculator or MVPPCostCalculator(mvpp)
    pool = list(candidates) if candidates is not None else mvpp.operations
    if len(pool) > max_candidates:
        raise MVPPError(
            f"{len(pool)} candidates exceed the exhaustive-search cap of "
            f"{max_candidates}; use the heuristic for MVPPs this large"
        )
    best_set: List[Vertex] = []
    best = calculator.breakdown(())
    for size in range(1, len(pool) + 1):
        for subset in combinations(pool, size):
            if space_budget is not None and _blocks(subset) > space_budget:
                continue
            breakdown = calculator.breakdown(subset)
            if breakdown.total < best.total:
                best = breakdown
                best_set = list(subset)
    return best_set, best


def _blocks(vertices: Sequence[Vertex]) -> float:
    return sum(
        float(v.stats.blocks) for v in vertices if v.stats is not None
    )


def greedy_forward(
    mvpp: MVPP,
    calculator: Optional[MVPPCostCalculator] = None,
    candidates: Optional[Sequence[Vertex]] = None,
    space_budget: Optional[float] = None,
) -> Tuple[List[Vertex], CostBreakdown]:
    """Add the single most cost-reducing vertex until nothing improves.

    ``O(n²)`` total-cost evaluations; serves as a strong baseline for the
    Figure-9 heuristic in the scaling benchmark.  ``space_budget``
    (blocks) caps the total size of the chosen views.
    """
    calculator = calculator or MVPPCostCalculator(mvpp)
    pool = list(candidates) if candidates is not None else mvpp.operations
    chosen: List[Vertex] = []
    current = calculator.breakdown(())
    remaining = list(pool)
    used_blocks = 0.0
    while remaining:
        best_vertex: Optional[Vertex] = None
        best_breakdown = current
        for vertex in remaining:
            blocks = float(vertex.stats.blocks) if vertex.stats else 0.0
            if space_budget is not None and used_blocks + blocks > space_budget:
                continue
            breakdown = calculator.breakdown(chosen + [vertex])
            if breakdown.total < best_breakdown.total:
                best_breakdown = breakdown
                best_vertex = vertex
        if best_vertex is None:
            break
        chosen.append(best_vertex)
        remaining.remove(best_vertex)
        used_blocks += float(best_vertex.stats.blocks) if best_vertex.stats else 0.0
        current = best_breakdown
    return chosen, current
