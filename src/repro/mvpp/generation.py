"""Generating multiple MVPPs (paper Figure 4) and picking the best design.

Pipeline per the paper:

1. optimize each query individually (step 1);
2. pull selections/projections up, leaving join skeletons (step 2);
3. order plans by ``fq(q) · Ca(optimal plan)`` descending (step 3);
4. merge plans into an MVPP in that order, reusing existing join
   patterns; rotate the list so each plan seeds once — ``k`` queries
   yield ``k`` MVPPs (step 4);
5. push the *disjunction* of the sharing queries' select conditions and
   the *union* of their projection attributes (plus join attributes) down
   to each base relation (steps 5/6), re-applying non-subsumed residual
   conditions above the shared skeletons.

``design()`` runs the whole paper pipeline: generate the MVPP candidates,
run the Figure-9 materialized-view selection on each, and return the
cheapest design.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro import obs
from repro.algebra import predicates as P
from repro.algebra.expressions import Expression
from repro.algebra.operators import (
    Operator,
    Relation,
    project_if,
    select_if,
)
from repro.algebra.rewrite import PulledPlan, pull_up
from repro.algebra.tree import leaves as tree_leaves
from repro.errors import MVPPError
from repro.mvpp.config import (
    DEFAULT_DESIGN_CONFIG,
    DesignConfig,
    coerce_design_config,
)
from repro.mvpp.cost import PER_PERIOD, CostBreakdown, CostCache, MVPPCostCalculator
from repro.mvpp.graph import MVPP, Vertex
from repro.parallel.executor import SerialExecutor, resolve_executor
from repro.mvpp.merge import merge_skeletons, skeleton_join_conjuncts
from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.optimizer.heuristics import optimize_query
from repro.optimizer.plans import AnnotatedPlan
from repro.sql.translator import parse_query
from repro.workload.spec import QuerySpec, Workload


@dataclass
class QueryPlanInfo:
    """A query with its individually-optimal plan, normalized for merging."""

    spec: QuerySpec
    plan: Operator
    pulled: PulledPlan
    access_cost: float  # Ca of the optimal plan

    @property
    def rank(self) -> float:
        """The paper's ordering key ``fq(op) · Ca(op)``."""
        return self.spec.frequency * self.access_cost


def prepare_queries(
    workload: Workload,
    estimator: Optional[CardinalityEstimator] = None,
    cost_model: CostModel = DEFAULT_COST_MODEL,
) -> List[QueryPlanInfo]:
    """Steps 1–2: optimal plan + pulled normal form for every query."""
    estimator = estimator or CardinalityEstimator(workload.statistics)
    infos = []
    with obs.span("generation.prepare", queries=len(workload.queries)):
        for spec in workload.queries:
            with obs.span("generation.optimize", query=spec.name) as span:
                raw = parse_query(spec.sql, workload.catalog)
                plan = optimize_query(raw, estimator, cost_model)
                annotated = AnnotatedPlan(plan, estimator, cost_model)
                span.set(access_cost=annotated.total_cost)
                infos.append(
                    QueryPlanInfo(
                        spec=spec,
                        plan=plan,
                        pulled=pull_up(plan),
                        access_cost=annotated.total_cost,
                    )
                )
    return infos


def build_mvpp(
    ordered_infos: Sequence[QueryPlanInfo],
    workload: Workload,
    estimator: Optional[CardinalityEstimator] = None,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    name: str = "mvpp",
    push_down: bool = True,
    maintenance_write: bool = False,
) -> MVPP:
    """Steps 4–6 for one merge order: merge skeletons, push down, intern.

    ``push_down=False`` yields the paper's *Figure 7* form (selections
    above the shared joins); the default yields the optimized *Figure 8*
    form with leaf-level disjunctive selections and unioned projections.
    """
    estimator = estimator or CardinalityEstimator(workload.statistics)
    with obs.span(
        "generation.merge", mvpp=name, queries=len(ordered_infos)
    ) as span:
        merged = merge_skeletons(
            [(info.spec.name, info.pulled.skeleton) for info in ordered_infos]
        )

        plans: Dict[str, Operator] = {}
        if push_down:
            stems = _leaf_stems(ordered_infos, merged)
            for info in ordered_infos:
                plans[info.spec.name] = _assemble_pushed(info, merged, stems)
        else:
            for info in ordered_infos:
                body = select_if(merged[info.spec.name], info.pulled.selection)
                if info.pulled.aggregate is not None:
                    body = info.pulled.aggregate.with_children((body,))
                plans[info.spec.name] = info.pulled.decorate(
                    project_if(body, info.pulled.projection)
                )

        mvpp = MVPP(name=name)
        for spec in workload.queries:  # stable vertex naming across rotations
            if spec.name in plans:
                mvpp.add_query(spec.name, plans[spec.name], spec.frequency)
        for leaf in mvpp.leaves:
            leaf.frequency = workload.update_frequency(leaf.name)
        mvpp.annotate(estimator, cost_model, maintenance_write=maintenance_write)
        mvpp.assign_names()
        span.set(vertices=len(mvpp))
    return mvpp


def _build_rotation(payload: Tuple[Any, ...]) -> MVPP:
    """Build one rotation's MVPP (module-level so process pools can run it)."""
    order, workload, estimator, cost_model, name, push_down = payload
    return build_mvpp(
        order, workload, estimator, cost_model, name=name, push_down=push_down
    )


def generate_mvpps(
    workload: Workload,
    estimator: Optional[CardinalityEstimator] = None,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    rotations: Optional[int] = None,
    push_down: bool = True,
    config: Optional[DesignConfig] = None,
) -> List[MVPP]:
    """The full Figure-4 algorithm: one MVPP per rotation of the plan list.

    With a ``config``, its ``rotations``/``push_down`` take over (unless
    the explicit keyword arguments were given) and its
    ``workers``/``executor`` fan the per-rotation merges out in
    parallel.  The candidate list is identical for every backend: tasks
    are dispatched and collected in rotation order.
    """
    if config is not None:
        rotations = rotations if rotations is not None else config.rotations
        push_down = push_down and config.push_down
    executor = (
        resolve_executor(config.executor, config.workers)
        if config is not None
        else SerialExecutor()
    )
    estimator = estimator or CardinalityEstimator(workload.statistics)
    with obs.span("generation.mvpps", workload=workload.name) as span:
        infos = prepare_queries(workload, estimator, cost_model)
        infos.sort(key=lambda info: -info.rank)
        k = len(infos)
        if k == 0:
            raise MVPPError("workload has no queries")
        count = k if rotations is None else max(1, min(rotations, k))
        span.set(rotations=count, workers=executor.workers)
        obs.metrics().counter("generation.candidates").inc(count)
        payloads = [
            (
                infos[rotation:] + infos[:rotation],
                workload,
                estimator,
                cost_model,
                f"{workload.name}-mvpp{rotation + 1}",
                push_down,
            )
            for rotation in range(count)
        ]
        mvpps = executor.map(_build_rotation, payloads)
    return mvpps


# ---------------------------------------------------------------------------
# steps 5/6: leaf-level push-down
# ---------------------------------------------------------------------------
def _leaf_conjuncts(
    info: QueryPlanInfo,
) -> Tuple[Dict[str, List[Expression]], List[Expression]]:
    """Split a query's selection conjuncts per leaf; rest are residual-only."""
    per_leaf: Dict[str, List[Expression]] = {}
    residual_only: List[Expression] = []
    leaf_columns = {
        leaf.name: set(leaf.schema.attribute_names)
        for leaf in tree_leaves(info.pulled.skeleton)
    }
    for conjunct in P.conjuncts(info.pulled.selection):
        owner = next(
            (
                name
                for name, columns in leaf_columns.items()
                if conjunct.columns() <= columns
            ),
            None,
        )
        if owner is None:
            residual_only.append(conjunct)
        else:
            per_leaf.setdefault(owner, []).append(conjunct)
    return per_leaf, residual_only


def _needed_from_leaf(info: QueryPlanInfo, leaf: Relation) -> Set[str]:
    """Attributes of ``leaf`` this query needs anywhere above it."""
    needed: Set[str] = set()
    leaf_columns = set(leaf.schema.attribute_names)
    if info.pulled.aggregate is not None:
        needed |= set(info.pulled.aggregate.group_by)
        needed |= {
            s.attribute
            for s in info.pulled.aggregate.aggregates
            if s.attribute is not None
        }
    else:
        needed |= set(info.pulled.projection)
    if info.pulled.selection is not None:
        needed |= info.pulled.selection.columns()
    for predicate in skeleton_join_conjuncts(info.pulled.skeleton):
        needed |= predicate.columns()
    return needed & leaf_columns


def _leaf_stems(
    infos: Sequence[QueryPlanInfo], merged: Dict[str, Operator]
) -> Dict[str, Operator]:
    """Figure 4 steps 5/6: the σ/π stem placed over each base relation.

    Selection: the disjunction over sharing queries of each query's
    conjunction of conditions on that relation (TRUE when any sharing
    query filters nothing).  Projection: the union of attributes any
    sharing query needs, plus join attributes (collected inside
    :func:`_needed_from_leaf`).
    """
    leaf_nodes: Dict[str, Relation] = {}
    for skeleton in merged.values():
        for leaf in tree_leaves(skeleton):
            leaf_nodes[leaf.name] = leaf

    stems: Dict[str, Operator] = {}
    for leaf_name, leaf in leaf_nodes.items():
        terms: List[Optional[Expression]] = []
        union_attrs: Set[str] = set()
        for info in infos:
            if leaf_name not in {l.name for l in tree_leaves(merged[info.spec.name])}:
                continue
            per_leaf, _ = _leaf_conjuncts(info)
            mine = per_leaf.get(leaf_name, [])
            terms.append(P.conjunction(mine) if mine else None)
            union_attrs |= _needed_from_leaf(info, leaf)
        condition = P.disjunction(terms) if terms else None
        stem: Operator = select_if(leaf, condition)
        if union_attrs:
            ordered = [
                a for a in leaf.schema.attribute_names if a in union_attrs
            ]
            stem = project_if(stem, ordered)
        stems[leaf_name] = stem
    return stems


def _assemble_pushed(
    info: QueryPlanInfo, merged: Dict[str, Operator], stems: Dict[str, Operator]
) -> Operator:
    """Rebuild one query over the stemmed leaves and re-apply residuals."""
    skeleton = _replace_leaves(merged[info.spec.name], stems, {})

    per_leaf, residual_only = _leaf_conjuncts(info)
    residuals: List[Expression] = list(residual_only)
    for leaf_name, conjs in per_leaf.items():
        stem = stems[leaf_name]
        pushed = _stem_condition(stem)
        for conjunct in conjs:
            if not P.implies(pushed, conjunct):
                residuals.append(conjunct)

    body = select_if(skeleton, P.conjunction(residuals))
    if info.pulled.aggregate is not None:
        body = info.pulled.aggregate.with_children((body,))
    return info.pulled.decorate(project_if(body, info.pulled.projection))


def _replace_leaves(
    node: Operator, stems: Dict[str, Operator], memo: Dict[str, Operator]
) -> Operator:
    cached = memo.get(node.signature)
    if cached is not None:
        return cached
    if isinstance(node, Relation):
        out = stems.get(node.name, node)
    else:
        out = node.with_children(
            tuple(_replace_leaves(child, stems, memo) for child in node.children)
        )
    memo[node.signature] = out
    return out


def _stem_condition(stem: Operator) -> Optional[Expression]:
    """The selection condition a stem applies (if any)."""
    from repro.algebra.operators import Select

    for node in stem.walk():
        if isinstance(node, Select):
            return node.predicate
    return None


# ---------------------------------------------------------------------------
# end-to-end design
# ---------------------------------------------------------------------------
@dataclass
class DesignResult:
    """Output of the full paper pipeline for one workload.

    Implements the :class:`~repro.mvpp.config.CostedResult` protocol
    (``query_cost`` / ``maintenance_cost`` / ``total_cost`` / ``views``),
    making it interchangeable with Table-2
    :class:`~repro.mvpp.strategies.StrategyResult` rows.
    """

    mvpp: MVPP
    materialized: List[Vertex]
    breakdown: CostBreakdown
    calculator: MVPPCostCalculator
    candidates: List[MVPP]
    config: DesignConfig = field(default_factory=lambda: DEFAULT_DESIGN_CONFIG)
    cache_stats: Optional[Dict[str, float]] = None
    lint_report: Optional[Any] = None  # LintReport when config.lint=True

    @property
    def materialized_names(self) -> Tuple[str, ...]:
        return tuple(v.name for v in self.materialized)

    @property
    def views(self) -> Tuple[str, ...]:
        """Protocol alias for the materialized vertex names."""
        return self.materialized_names

    @property
    def query_cost(self) -> float:
        return self.breakdown.query_processing

    @property
    def maintenance_cost(self) -> float:
        return self.breakdown.maintenance

    @property
    def total_cost(self) -> float:
        return self.breakdown.total


def _evaluate_candidate(payload: Tuple[Any, ...]) -> Tuple[Tuple[str, ...], CostBreakdown]:
    """Select views on one candidate MVPP; returns (names, breakdown).

    Module-level so process pools can run it.  Names (not Vertex
    objects) cross the worker boundary — the parent re-resolves them on
    its own MVPP instances, keeping object identity intact.
    """
    from repro.mvpp import strategies as strategy_registry

    mvpp, trigger, config, cache = payload
    calculator = MVPPCostCalculator(mvpp, trigger, cache=cache)
    strategy = strategy_registry.get_strategy(config.strategy)
    chosen = strategy(mvpp, calculator, config)
    breakdown = calculator.breakdown(chosen)
    return tuple(v.name for v in chosen), breakdown


def design(
    workload: Workload,
    config: Optional[DesignConfig] = None,
    estimator: Optional[CardinalityEstimator] = None,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    cache: Optional[CostCache] = None,
    **legacy: Any,
) -> DesignResult:
    """Generate candidate MVPPs, select views on each, keep the cheapest.

    The unified entry point: every knob lives on ``config`` (a
    :class:`~repro.mvpp.config.DesignConfig`); ``estimator`` /
    ``cost_model`` stay separate because they are live objects, not
    configuration values.  The legacy keyword arguments (``rotations``,
    ``maintenance_trigger``, ``push_down``, ``include_naive``) still
    work but emit a :class:`DeprecationWarning`; for backward
    compatibility an estimator may also be passed as the second
    positional argument.

    ``config.workers > 1`` fans the per-candidate Figure-9 selection
    out on the configured executor; ``config.cache`` shares one
    :class:`~repro.mvpp.cost.CostCache` across candidates (pass
    ``cache`` to reuse a caller-owned instance, e.g. the warehouse's).
    Results are bit-identical across worker counts and backends: tasks
    are collected in candidate order and ties keep the earlier
    candidate, exactly like the serial loop.

    ``config.include_naive`` adds one more candidate beyond the paper's
    Figure-4 rotations: the MVPP obtained by interning each query's
    individually-optimal plan unchanged (no join-pattern merge, no
    disjunctive push-down).  When queries already share identical
    subplans, that naive MVPP keeps selections exact and can beat the
    merged ones, whose disjunctive stems widen shared intermediates —
    see ``benchmarks/bench_ablation_merge.py``.
    """
    from repro.mvpp.builder import build_from_workload

    if config is not None and not isinstance(config, DesignConfig):
        # Legacy shape: design(workload, estimator, ...) positionally.
        if estimator is not None:
            raise TypeError(
                "design() got two estimators; pass a DesignConfig second "
                "and the estimator as a keyword"
            )
        estimator, config = config, None
    config = coerce_design_config(config, legacy, owner="design()")

    estimator = estimator or CardinalityEstimator(workload.statistics)
    trigger = config.resolved_trigger(PER_PERIOD)
    if cache is None and config.cache:
        cache = CostCache()
    elif not config.cache:
        cache = None
    hits_before = cache.hits if cache is not None else 0
    misses_before = cache.misses if cache is not None else 0

    with obs.span(
        "generation.design",
        workload=workload.name,
        strategy=config.strategy,
        workers=config.workers,
    ) as span:
        candidates = generate_mvpps(
            workload, estimator, cost_model, config=config
        )
        if config.include_naive:
            candidates = candidates + [
                build_from_workload(workload, estimator, cost_model)
            ]
        executor = resolve_executor(config.executor, config.workers)
        payloads = [
            (mvpp, trigger, config, cache) for mvpp in candidates
        ]
        evaluations = executor.map(_evaluate_candidate, payloads)

        best: Optional[DesignResult] = None
        for mvpp, (names, breakdown) in zip(candidates, evaluations):
            if best is not None and breakdown.total >= best.total_cost:
                continue
            calculator = MVPPCostCalculator(mvpp, trigger, cache=cache)
            best = DesignResult(
                mvpp=mvpp,
                materialized=[mvpp.vertex_by_name(n) for n in names],
                breakdown=breakdown,
                calculator=calculator,
                candidates=candidates,
                config=config,
            )
        assert best is not None  # generate_mvpps raises on empty workloads
        if config.lint:
            from repro.lint.semantic import lint_design

            report = lint_design(
                best.mvpp,
                best.materialized,
                calculator=best.calculator,
                workload=workload,
                policy=config.adaptive,
                streaming=config.streaming,
            )
            best.lint_report = report
            report.publish()
            span.set(lint_diagnostics=len(report.diagnostics))
            report.raise_on_errors()
        if cache is not None:
            cache.publish(hits_before, misses_before)
            best.cache_stats = cache.stats()
            span.set(
                cache_hits=cache.hits - hits_before,
                cache_misses=cache.misses - misses_before,
                cache_hit_ratio=cache.hit_ratio,
            )
        span.set(
            chosen=best.mvpp.name,
            materialized=list(best.materialized_names),
            total_cost=best.total_cost,
        )
    return best
