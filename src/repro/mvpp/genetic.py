"""Genetic-algorithm view selection.

The direct follow-up to the MVPP paper (Zhang, Yang & Kao) applied
evolutionary search to the same 2^n selection space; this module provides
a compact, fully seeded genetic algorithm over materialization bitmasks:
tournament selection, uniform crossover, bit-flip mutation, and elitism.
It completes the baseline suite (weight-greedy, forward-greedy,
simulated annealing, exhaustive) used by the scaling benchmark.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import MVPPError
from repro.mvpp.cost import CostBreakdown, MVPPCostCalculator
from repro.mvpp.graph import MVPP, Vertex


@dataclass(frozen=True)
class GeneticConfig:
    """Search knobs; defaults suit up to ~60 candidates."""

    seed: int = 0
    population_size: int = 24
    generations: int = 40
    tournament_size: int = 3
    crossover_rate: float = 0.9
    mutation_rate: float = 0.05  # per-bit flip probability
    elitism: int = 2

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise MVPPError("population_size must be >= 2")
        if self.generations < 1:
            raise MVPPError("generations must be >= 1")
        if not 2 <= self.tournament_size <= self.population_size:
            raise MVPPError("tournament_size out of range")
        if not 0.0 <= self.crossover_rate <= 1.0:
            raise MVPPError("crossover_rate must be in [0, 1]")
        if not 0.0 <= self.mutation_rate <= 1.0:
            raise MVPPError("mutation_rate must be in [0, 1]")
        if not 0 <= self.elitism < self.population_size:
            raise MVPPError("elitism must be < population_size")

    @classmethod
    def from_design(cls, config) -> "GeneticConfig":
        """Search knobs derived from a :class:`~repro.mvpp.config.DesignConfig`
        (currently just the shared seed, keeping runs reproducible)."""
        return cls(seed=config.seed)


def genetic_search(
    mvpp: MVPP,
    calculator: Optional[MVPPCostCalculator] = None,
    candidates: Optional[Sequence[Vertex]] = None,
    config: GeneticConfig = GeneticConfig(),
) -> Tuple[List[Vertex], CostBreakdown]:
    """Evolve a low-cost materialization bitmask.

    The all-zero individual is always injected into the initial
    population, so the result never loses to all-virtual.
    """
    calculator = calculator or MVPPCostCalculator(mvpp)
    pool = list(candidates) if candidates is not None else mvpp.operations
    if not pool:
        return [], calculator.breakdown(())
    rng = random.Random(config.seed)
    n = len(pool)

    def fitness(mask: Tuple[bool, ...]) -> float:
        chosen = [pool[i] for i in range(n) if mask[i]]
        return calculator.breakdown(chosen).total

    population: List[Tuple[bool, ...]] = [tuple([False] * n)]
    while len(population) < config.population_size:
        population.append(tuple(rng.random() < 0.25 for _ in range(n)))
    scores = {mask: fitness(mask) for mask in dict.fromkeys(population)}

    def tournament() -> Tuple[bool, ...]:
        contenders = [rng.choice(population) for _ in range(config.tournament_size)]
        return min(contenders, key=lambda m: scores[m])

    best_mask = min(population, key=lambda m: scores[m])
    best_score = scores[best_mask]

    for _ in range(config.generations):
        ranked = sorted(population, key=lambda m: scores[m])
        next_population: List[Tuple[bool, ...]] = ranked[: config.elitism]
        while len(next_population) < config.population_size:
            mother, father = tournament(), tournament()
            if rng.random() < config.crossover_rate:
                child = tuple(
                    mother[i] if rng.random() < 0.5 else father[i]
                    for i in range(n)
                )
            else:
                child = mother
            child = tuple(
                (not bit) if rng.random() < config.mutation_rate else bit
                for bit in child
            )
            next_population.append(child)
        population = next_population
        for mask in population:
            if mask not in scores:
                scores[mask] = fitness(mask)
        generation_best = min(population, key=lambda m: scores[m])
        if scores[generation_best] < best_score:
            best_mask, best_score = generation_best, scores[generation_best]

    chosen = [pool[i] for i in range(n) if best_mask[i]]
    return chosen, calculator.breakdown(chosen)
