"""The Multiple View Processing Plan (MVPP) DAG.

Paper Section 3.1: an MVPP is a labeled DAG ``M = (V, A, R, Ca, Cm, fq,
fu)`` whose leaves are base relations (update frequency ``fu``), whose
roots are warehouse queries (access frequency ``fq``), and whose interior
vertices are relational operations annotated with an access cost ``Ca``
(cost of computing the vertex's relation from base relations) and a
maintenance cost ``Cm`` (cost of refreshing the vertex if materialized).

Vertices are deduplicated by operator signature, so feeding several query
plans that share subexpressions into :meth:`MVPP.add_query` produces the
shared structure automatically — the merge of common subexpressions the
paper describes for Figure 2(b).
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.algebra.operators import Operator, Relation
from repro.catalog.statistics import RelationStatistics
from repro.errors import MVPPError
from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.cost_model import CostModel, DEFAULT_COST_MODEL


class VertexKind(enum.Enum):
    """Role of a vertex in the MVPP DAG."""

    BASE = "base"  # leaf: a member-database relation (paper's □)
    OPERATION = "operation"  # interior: an algebra operation result
    QUERY = "query"  # root: a warehouse query (paper's ●)


@dataclass
class Vertex:
    """One MVPP vertex.

    ``operator`` is the algebra subtree computing this vertex's relation
    ``R(v)``; for BASE vertices it is the :class:`Relation` leaf itself.
    ``children`` are the source vertices ``S(v)`` and ``parents`` the
    destinations ``D(v)``.
    """

    vertex_id: int
    name: str
    kind: VertexKind
    operator: Operator
    children: Tuple[int, ...]
    parents: Set[int] = field(default_factory=set)
    frequency: float = 0.0  # fq for QUERY vertices, fu for BASE vertices
    stats: Optional[RelationStatistics] = None
    local_cost: float = 0.0
    access_cost: float = 0.0  # the paper's Ca(v)
    maintenance_cost: float = 0.0  # the paper's Cm(v)

    @property
    def signature(self) -> str:
        return self.operator.signature

    @property
    def is_leaf(self) -> bool:
        return self.kind is VertexKind.BASE

    @property
    def is_root(self) -> bool:
        return self.kind is VertexKind.QUERY

    def __repr__(self) -> str:
        return f"Vertex({self.name}, {self.kind.value})"


class MVPP:
    """A Multiple View Processing Plan over a set of warehouse queries."""

    def __init__(self, name: str = "mvpp"):
        self.name = name
        self._vertices: Dict[int, Vertex] = {}
        self._by_signature: Dict[str, int] = {}
        self._query_roots: Dict[str, int] = {}  # query name -> QUERY vertex id
        self._next_id = 0
        self._annotated = False
        self._scan_cost_model: Optional[CostModel] = None

    # ----------------------------------------------------------- construction
    def add_query(self, name: str, plan: Operator, frequency: float) -> Vertex:
        """Add a warehouse query's plan, sharing existing subexpressions.

        Every subtree of ``plan`` becomes (or reuses) a vertex; a QUERY
        root vertex named ``name`` is placed above the plan's result.
        """
        if name in self._query_roots:
            raise MVPPError(f"query {name!r} already present in MVPP")
        if frequency < 0:
            raise MVPPError(f"query frequency must be >= 0: {frequency}")
        result_vertex = self._intern(plan)
        root = self._new_vertex(
            name=name,
            kind=VertexKind.QUERY,
            operator=plan,
            children=(result_vertex.vertex_id,),
            register_signature=False,
        )
        root.frequency = frequency
        result_vertex.parents.add(root.vertex_id)
        self._query_roots[name] = root.vertex_id
        self._annotated = False
        return root

    def set_update_frequency(self, relation: str, frequency: float) -> None:
        """Set ``fu`` for a base relation vertex."""
        vertex = self.vertex_by_name(relation)
        if not vertex.is_leaf:
            raise MVPPError(f"{relation!r} is not a base relation vertex")
        vertex.frequency = frequency

    def _intern(self, operator: Operator) -> Vertex:
        """Get-or-create the vertex for ``operator`` (recursively)."""
        existing = self._by_signature.get(operator.signature)
        if existing is not None:
            return self._vertices[existing]
        child_vertices = [self._intern(child) for child in operator.children]
        if isinstance(operator, Relation):
            vertex = self._new_vertex(
                name=operator.name,
                kind=VertexKind.BASE,
                operator=operator,
                children=(),
            )
            vertex.frequency = 1.0  # the paper's default: one update/period
            return vertex
        vertex = self._new_vertex(
            name="",  # operation names are assigned topologically later
            kind=VertexKind.OPERATION,
            operator=operator,
            children=tuple(c.vertex_id for c in child_vertices),
        )
        for child in child_vertices:
            child.parents.add(vertex.vertex_id)
        return vertex

    def _new_vertex(
        self,
        name: str,
        kind: VertexKind,
        operator: Operator,
        children: Tuple[int, ...],
        register_signature: bool = True,
    ) -> Vertex:
        vertex = Vertex(
            vertex_id=self._next_id,
            name=name,
            kind=kind,
            operator=operator,
            children=children,
        )
        self._vertices[vertex.vertex_id] = vertex
        if register_signature:
            self._by_signature[operator.signature] = vertex.vertex_id
        self._next_id += 1
        self._annotated = False
        return vertex

    def assign_names(self, prefix: str = "tmp") -> None:
        """Name operation vertices ``tmp1, tmp2, ...`` in topological order,
        mirroring the paper's figure labels."""
        counter = 1
        for vertex in self.topological_order():
            if vertex.kind is VertexKind.OPERATION:
                vertex.name = f"{prefix}{counter}"
                counter += 1

    # ------------------------------------------------------------- accessors
    def __len__(self) -> int:
        return len(self._vertices)

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._vertices.values())

    def vertex(self, vertex_id: int) -> Vertex:
        try:
            return self._vertices[vertex_id]
        except KeyError:
            raise MVPPError(f"no vertex with id {vertex_id}") from None

    def vertex_by_signature(self, signature: str) -> Optional[Vertex]:
        vertex_id = self._by_signature.get(signature)
        return self._vertices[vertex_id] if vertex_id is not None else None

    def vertex_by_name(self, name: str) -> Vertex:
        for vertex in self._vertices.values():
            if vertex.name == name:
                return vertex
        raise MVPPError(f"no vertex named {name!r}")

    @property
    def leaves(self) -> List[Vertex]:
        """Base-relation vertices (the paper's ``L``)."""
        return [v for v in self._vertices.values() if v.is_leaf]

    @property
    def roots(self) -> List[Vertex]:
        """Query vertices (the paper's ``R``)."""
        return [self._vertices[i] for i in self._query_roots.values()]

    @property
    def operations(self) -> List[Vertex]:
        """Interior operation vertices — the materialization candidates."""
        return [
            v for v in self._vertices.values() if v.kind is VertexKind.OPERATION
        ]

    @property
    def query_names(self) -> Tuple[str, ...]:
        return tuple(self._query_roots)

    def query_root(self, name: str) -> Vertex:
        try:
            return self._vertices[self._query_roots[name]]
        except KeyError:
            raise MVPPError(f"no query named {name!r}") from None

    # ------------------------------------------------------------- traversal
    def children_of(self, vertex: Vertex) -> List[Vertex]:
        """``S(v)``: immediate sources."""
        return [self._vertices[i] for i in vertex.children]

    def parents_of(self, vertex: Vertex) -> List[Vertex]:
        """``D(v)``: immediate destinations."""
        return [self._vertices[i] for i in sorted(vertex.parents)]

    def descendants(self, vertex: Vertex) -> Set[int]:
        """``S*{v}``: every vertex below ``v`` (excluding ``v``)."""
        seen: Set[int] = set()
        stack = list(vertex.children)
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self._vertices[current].children)
        return seen

    def ancestors(self, vertex: Vertex) -> Set[int]:
        """``D*{v}``: every vertex above ``v`` (excluding ``v``)."""
        seen: Set[int] = set()
        stack = list(vertex.parents)
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self._vertices[current].parents)
        return seen

    def queries_using(self, vertex: Vertex) -> List[Vertex]:
        """``Ov = R ∩ D*{v}``: query roots reachable above ``v``."""
        if vertex.is_root:
            return [vertex]
        return [
            self._vertices[i]
            for i in sorted(self.ancestors(vertex))
            if self._vertices[i].is_root
        ]

    def base_relations_of(self, vertex: Vertex) -> List[Vertex]:
        """``Iv = L ∩ S*{v}``: base relations feeding ``v``."""
        if vertex.is_leaf:
            return [vertex]
        return [
            self._vertices[i]
            for i in sorted(self.descendants(vertex))
            if self._vertices[i].is_leaf
        ]

    def topological_order(self) -> List[Vertex]:
        """Vertices ordered children-before-parents (stable by id).

        Kahn's algorithm over a min-heap of ready vertex ids: O(E log V)
        with exactly the order the old sort-the-ready-list-per-iteration
        implementation produced (always emit the smallest ready id).
        """
        in_degree = {i: len(v.children) for i, v in self._vertices.items()}
        ready = [i for i, d in in_degree.items() if d == 0]
        heapq.heapify(ready)
        order: List[Vertex] = []
        while ready:
            current = heapq.heappop(ready)
            order.append(self._vertices[current])
            for parent in self._vertices[current].parents:
                in_degree[parent] -= 1
                if in_degree[parent] == 0:
                    heapq.heappush(ready, parent)
        if len(order) != len(self._vertices):
            raise MVPPError("MVPP contains a cycle")  # unreachable by construction
        return order

    def validate(self) -> None:
        """Check structural invariants; raises :class:`MVPPError` on any
        violation.  Invariants:

        * arcs are symmetric (``v ∈ children(p)`` iff ``p ∈ parents(v)``);
        * leaves are exactly the BASE vertices, roots exactly the QUERY
          vertices, and every query name maps to a live root;
        * the signature index maps back to the right vertices;
        * every OPERATION vertex's operator children match its arc
          children by signature;
        * the graph is acyclic (via :meth:`topological_order`).
        """
        for vertex in self._vertices.values():
            for child_id in vertex.children:
                child = self._vertices.get(child_id)
                if child is None:
                    raise MVPPError(
                        f"{vertex.name}: dangling child id {child_id}"
                    )
                if vertex.vertex_id not in child.parents:
                    raise MVPPError(
                        f"arc {child.name} -> {vertex.name} missing back-link"
                    )
            for parent_id in vertex.parents:
                parent = self._vertices.get(parent_id)
                if parent is None or vertex.vertex_id not in parent.children:
                    raise MVPPError(
                        f"arc {vertex.name} -> parent {parent_id} inconsistent"
                    )
            if vertex.is_leaf and vertex.children:
                raise MVPPError(f"BASE vertex {vertex.name} has children")
            if vertex.is_root and vertex.parents:
                raise MVPPError(f"QUERY vertex {vertex.name} has parents")
            if vertex.kind is VertexKind.OPERATION:
                expected = [c.signature for c in vertex.operator.children]
                actual = [
                    self._vertices[i].signature for i in vertex.children
                ]
                if sorted(expected) != sorted(actual):
                    raise MVPPError(
                        f"{vertex.name}: operator children disagree with arcs"
                    )
        for name, root_id in self._query_roots.items():
            root = self._vertices.get(root_id)
            if root is None or not root.is_root:
                raise MVPPError(f"query {name!r} has no live root vertex")
        for signature, vertex_id in self._by_signature.items():
            vertex = self._vertices.get(vertex_id)
            if vertex is None or vertex.signature != signature:
                raise MVPPError(f"signature index corrupt at {signature!r}")
        self.topological_order()  # raises on cycles

    def structure_signature(self) -> FrozenSet[str]:
        """Canonical identity of the DAG: the set of vertex signatures.

        Two MVPPs with equal structure signatures share every node and
        every sharing opportunity — the criterion under which the paper
        calls Figure 6(a) and 6(b) equivalent.
        """
        return frozenset(
            v.signature
            for v in self._vertices.values()
            if v.kind is not VertexKind.QUERY
        )

    # ------------------------------------------------------------ annotation
    def annotate(
        self,
        estimator: CardinalityEstimator,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        maintenance_write: bool = False,
    ) -> None:
        """Compute stats, local costs, ``Ca`` and ``Cm`` for every vertex.

        ``Ca(v)`` is the cumulative cost of producing ``R(v)`` from base
        relations (leaves cost 0, as in the paper).  ``Cm(v) = Ca(v)``
        under recompute maintenance; with ``maintenance_write=True`` the
        cost of writing the materialized result (its block count) is
        added.
        """
        for vertex in self.topological_order():
            vertex.stats = estimator.estimate(vertex.operator)
            if vertex.kind is VertexKind.QUERY:
                vertex.local_cost = 0.0
                child = self._vertices[vertex.children[0]]
                vertex.access_cost = child.access_cost
                vertex.maintenance_cost = child.maintenance_cost
                continue
            vertex.local_cost = cost_model.local_cost(vertex.operator, estimator)
            vertex.access_cost = vertex.local_cost + sum(
                self._vertices[c].access_cost for c in vertex.children
            )
            if vertex.is_leaf:
                vertex.access_cost = 0.0
                vertex.maintenance_cost = 0.0
            else:
                vertex.maintenance_cost = vertex.access_cost + (
                    vertex.stats.blocks if maintenance_write else 0.0
                )
        self._annotated = True
        self._scan_cost_model = cost_model

    @property
    def is_annotated(self) -> bool:
        return self._annotated

    def require_annotation(self) -> None:
        if not self._annotated:
            raise MVPPError(
                "MVPP is not annotated; call annotate(estimator, cost_model) first"
            )

    # -------------------------------------------------------------- rendering
    def describe(self) -> str:
        """Multi-line summary: one row per vertex in topological order."""
        self_rows = []
        for vertex in self.topological_order():
            freq = ""
            if vertex.is_root:
                freq = f" fq={vertex.frequency:g}"
            elif vertex.is_leaf:
                freq = f" fu={vertex.frequency:g}"
            stats = ""
            if vertex.stats is not None:
                stats = (
                    f" rows={vertex.stats.cardinality}"
                    f" blocks={vertex.stats.blocks}"
                    f" Ca={vertex.access_cost:,.0f}"
                )
            children = ",".join(self._vertices[c].name for c in vertex.children)
            self_rows.append(
                f"{vertex.name:>10} [{vertex.kind.value:9}]{freq}{stats}"
                + (f"  <- {children}" if children else "")
                + f"  {vertex.operator.label}"
            )
        return "\n".join(self_rows)
