"""Selecting the vertices to materialize (paper Figure 9).

Greedy weight-ordered selection with branch pruning:

1. list every operation vertex with positive weight
   ``w(v) = Σ_{q∈Ov} fq(q)·Ca(v) − (refresh trigger)·Cm(v)``,
   in descending weight order;
2. pop the head ``v`` and evaluate its *incremental* saving ``Cs``
   (the access saving net of savings already captured by materialized
   descendants, minus maintenance);
3. ``Cs > 0`` → materialize ``v``; otherwise prune ``v``'s whole branch
   (its ancestors and descendants still listed — materializing them can
   only be worse, by the paper's argument in Section 4.3);
4. finally drop any selected vertex whose immediate destinations are all
   materialized (step 9) — it would never be read.

The full decision trace is recorded so the Figure-9 benchmark can print
the same run the paper walks through (accept tmp4-like node, reject the
query-result node, prune its branch, accept tmp2, skip tmp1).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Deque, FrozenSet, List, Optional, Set, Tuple

from repro import obs
from repro.mvpp.cost import MVPPCostCalculator, PER_PERIOD
from repro.mvpp.graph import MVPP, Vertex

if TYPE_CHECKING:  # pragma: no cover
    from repro.parallel.executor import Executor


@dataclass(frozen=True)
class SelectionStep:
    """One decision of the Figure-9 loop (for tracing/benchmarks)."""

    vertex: str
    weight: float
    saving: Optional[float]  # Cs; None when skipped without evaluation
    decision: str  # "materialize" | "reject" | "pruned"
    pruned: Tuple[str, ...] = ()


@dataclass
class MaterializationResult:
    """Chosen vertices plus the decision trace."""

    materialized: List[Vertex]
    trace: List[SelectionStep] = field(default_factory=list)

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(v.name for v in self.materialized)


def _record_step(span, step: SelectionStep) -> None:
    """Emit one Figure-9 decision as a span event + decision counter.

    Uses the same field names as the JSON trace serializer
    (:func:`repro.obs.export.selection_step_to_dict`), so the span
    events and ``repro trace --format json`` stay field-compatible.
    """
    from repro.obs.export import selection_step_to_dict

    span.event("decision", **selection_step_to_dict(step))
    obs.metrics().counter(
        "selection.decisions", decision=step.decision
    ).inc()


def select_views(
    mvpp: MVPP,
    calculator: Optional[MVPPCostCalculator] = None,
    refine: bool = False,
    space_budget: Optional[float] = None,
    executor: Optional["Executor"] = None,
) -> MaterializationResult:
    """Run the paper's Figure-9 heuristic on an annotated MVPP.

    With ``refine=True`` a post-pass (an extension beyond the paper)
    drops any selected vertex whose removal lowers the *true* total cost.
    The paper's ``Cs`` formula counts the full recompute cost ``Ca(v)``
    as the per-access saving but ignores that reading the stored view
    still costs ``B(v)`` blocks; when ``B(v)`` is close to ``Ca(v)`` the
    faithful heuristic can select a marginally harmful view.  The refined
    variant is what :func:`repro.mvpp.generation.design` uses.

    ``space_budget`` (in blocks) caps the total stored size of the chosen
    views — the classic space-constrained variant of the problem.  A
    vertex that no longer fits is skipped (decision ``"skip-budget"``)
    without pruning its branch: a smaller relative may still fit.

    ``executor`` (a :class:`repro.parallel.Executor`) fans out the
    initial per-vertex weight evaluation; the greedy loop itself is
    inherently sequential.  Results are identical for every backend —
    the weights are collected in vertex order before sorting.
    """
    calculator = calculator or MVPPCostCalculator(mvpp, PER_PERIOD)
    if space_budget is not None and space_budget < 0:
        raise ValueError(f"space budget must be >= 0: {space_budget}")

    with obs.span(
        "selection.figure9", mvpp=mvpp.name, refine=refine
    ) as span:
        emit = obs.enabled()
        trace: List[SelectionStep] = []

        def record(step: SelectionStep) -> None:
            trace.append(step)
            if emit:
                _record_step(span, step)

        # Step 2: candidates with positive weight, descending weight order.
        operations = mvpp.operations
        if executor is not None:
            weights = executor.map(calculator.weight, operations)
            weighted = list(zip(weights, operations))
        else:
            weighted = [
                (calculator.weight(vertex), vertex) for vertex in operations
            ]
        queue: Deque[Tuple[float, Vertex]] = deque(
            sorted(
                ((w, v) for w, v in weighted if w > 0),
                key=lambda item: (-item[0], item[1].vertex_id),
            )
        )
        span.set(candidates=len(queue))

        selected: Set[int] = set()
        used_blocks = 0.0

        while queue:
            weight, vertex = queue.popleft()
            blocks = float(vertex.stats.blocks) if vertex.stats is not None else 0.0
            if space_budget is not None and used_blocks + blocks > space_budget:
                record(SelectionStep(vertex.name, weight, None, "skip-budget"))
                continue
            saving = calculator.incremental_saving(vertex, frozenset(selected))
            if saving > 0:
                used_blocks += blocks
                selected.add(vertex.vertex_id)
                record(
                    SelectionStep(vertex.name, weight, saving, "materialize")
                )
                continue
            # Step 7: prune the rest of this branch — vertices related to v
            # by ancestry can only do worse once v itself is not worth it.
            branch = mvpp.ancestors(vertex) | mvpp.descendants(vertex)
            pruned = [u.name for _, u in queue if u.vertex_id in branch]
            queue = deque(
                (w, u) for w, u in queue if u.vertex_id not in branch
            )
            record(
                SelectionStep(vertex.name, weight, saving, "reject", tuple(pruned))
            )

        # Step 9: drop vertices entirely shadowed by materialized parents.
        final: List[Vertex] = []
        for vertex_id in sorted(selected):
            vertex = mvpp.vertex(vertex_id)
            parents = mvpp.parents_of(vertex)
            if parents and all(p.vertex_id in selected for p in parents):
                record(
                    SelectionStep(
                        vertex.name,
                        calculator.weight(vertex),
                        None,
                        "pruned",
                        (vertex.name,),
                    )
                )
                continue
            final.append(vertex)

        if refine:
            with obs.span("selection.refine", mvpp=mvpp.name):
                before = len(trace)
                final = _drop_net_losses(final, calculator, trace)
                if emit:
                    for step in trace[before:]:
                        _record_step(span, step)
        span.set(materialized=[v.name for v in final])
    return MaterializationResult(materialized=final, trace=trace)


def _drop_net_losses(
    chosen: List[Vertex],
    calculator: MVPPCostCalculator,
    trace: List[SelectionStep],
) -> List[Vertex]:
    """Iteratively remove vertices whose removal lowers the true total.

    Each candidate is probed with
    :meth:`MVPPCostCalculator.removal_delta` — an exact incremental
    re-cost of only the query roots reading through the candidate —
    rather than a full :meth:`~MVPPCostCalculator.breakdown` of the
    remaining design, which recomputed every root per probe.
    """
    current = list(chosen)
    improved = True
    while improved and current:
        improved = False
        with_ids = frozenset(v.vertex_id for v in current)
        for vertex in sorted(current, key=lambda v: v.access_cost):
            without_ids = with_ids - {vertex.vertex_id}
            if calculator.removal_delta(vertex, with_ids, without_ids) < 0:
                current = [
                    v for v in current if v.vertex_id != vertex.vertex_id
                ]
                improved = True
                trace.append(
                    SelectionStep(
                        vertex.name,
                        calculator.weight(vertex),
                        None,
                        "pruned",
                        (vertex.name,),
                    )
                )
                break
    return current
