"""Merging individual query plans into one MVPP (paper Figure 4, step 4.3).

Merging operates on *join skeletons* — plans whose selections and
projections have been pulled up (Figure 4 step 2), leaving only base
relation leaves and join nodes.  The invariant the paper's step 4.3
maintains is: *reuse the join patterns already present in the MVPP*.  For
each incoming plan we

1. partition its leaf set into subsets that are already joined in the
   MVPP (largest first — the "common ancestor" nodes of step 4.3.2) plus
   leftover single leaves;
2. join those pieces left-deep, following the incoming plan's own join
   predicates, starting from the piece containing the plan's first leaf.

A pooled node is only reused when its join predicates agree exactly with
the incoming query's predicates over the same leaves — reusing a node with
different conditions would change the query's meaning.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro import obs
from repro.algebra import predicates as P
from repro.algebra.expressions import Expression
from repro.algebra.operators import Join, Operator, Relation
from repro.algebra.tree import leaves as tree_leaves
from repro.errors import MVPPError


def skeleton_join_conjuncts(skeleton: Operator) -> List[Expression]:
    """All join-condition conjuncts attached to joins of a skeleton."""
    out: List[Expression] = []
    for node in skeleton.walk():
        if isinstance(node, Join) and node.condition is not None:
            out.extend(P.conjuncts(node.condition))
    return out


class SkeletonPool:
    """The join nodes currently present in an MVPP under construction."""

    def __init__(self) -> None:
        self._nodes: List[Operator] = []  # creation order
        self._signatures: Set[str] = set()

    def add_tree(self, skeleton: Operator) -> None:
        """Register every subtree of ``skeleton`` as available for reuse."""
        for node in skeleton.walk():
            if node.signature not in self._signatures:
                self._signatures.add(node.signature)
                self._nodes.append(node)

    def reusable_pieces(
        self, leaf_names: Set[str], predicates: Sequence[Expression]
    ) -> List[Operator]:
        """Greedy maximal cover of ``leaf_names`` by existing join nodes.

        Only nodes whose internal join predicates match the query's
        predicates over the covered leaves are candidates.  Larger nodes
        are preferred; earlier-created nodes break ties (the paper keeps
        the join pattern of the more expensive, earlier-merged plans).
        """
        predicate_signatures = {p.signature for p in predicates}
        candidates = []
        for position, node in enumerate(self._nodes):
            if not isinstance(node, Join):
                continue
            node_leaves = {leaf.name for leaf in tree_leaves(node)}
            if not node_leaves <= leaf_names:
                continue
            if not self._conditions_match(node, predicates, predicate_signatures):
                continue
            candidates.append((len(node_leaves), -position, node, node_leaves))
        candidates.sort(key=lambda item: (-item[0], -item[1]))

        chosen: List[Operator] = []
        covered: Set[str] = set()
        for _, _, node, node_leaves in candidates:
            if node_leaves & covered:
                continue
            chosen.append(node)
            covered |= node_leaves
        return chosen

    @staticmethod
    def _conditions_match(
        node: Operator,
        query_predicates: Sequence[Expression],
        query_signatures: Set[str],
    ) -> bool:
        """Node reusable iff its predicates == query's predicates over its leaves."""
        node_signatures = {p.signature for p in skeleton_join_conjuncts(node)}
        if not node_signatures <= query_signatures:
            return False
        node_columns = set(node.schema.attribute_names)
        within = {
            p.signature
            for p in query_predicates
            if p.columns() <= node_columns
        }
        return within == node_signatures


def merge_skeletons(
    ordered: Sequence[Tuple[str, Operator]],
) -> Dict[str, Operator]:
    """Merge query skeletons in the given order (Figure 4 steps 4.1–4.3).

    ``ordered`` holds ``(query name, join skeleton)`` pairs, most
    expensive plan first (the caller applies the ``fq · Ca`` ordering and
    the rotation).  Returns each query's merged skeleton; shared structure
    is shared as identical subtree objects, so interning the results into
    an :class:`~repro.mvpp.graph.MVPP` produces the shared DAG.
    """
    pool = SkeletonPool()
    merged: Dict[str, Operator] = {}
    for index, (name, skeleton) in enumerate(ordered):
        if index == 0:
            result = skeleton  # step 4.1/4.2: the seed keeps its join order
        else:
            result = _merge_one(skeleton, pool)
        merged[name] = result
        pool.add_tree(result)
    return merged


def _merge_one(skeleton: Operator, pool: SkeletonPool) -> Operator:
    plan_leaves = tree_leaves(skeleton)
    leaf_names = {leaf.name for leaf in plan_leaves}
    predicates = skeleton_join_conjuncts(skeleton)

    pieces = pool.reusable_pieces(leaf_names, predicates)
    if obs.enabled():
        registry = obs.metrics()
        registry.counter("generation.reuse_hits").inc(len(pieces))
        registry.counter("generation.reuse_covered_leaves").inc(
            sum(len(tree_leaves(piece)) for piece in pieces)
        )
        if not pieces:
            registry.counter("generation.reuse_misses").inc()
    covered = {leaf.name for piece in pieces for leaf in tree_leaves(piece)}
    for leaf in plan_leaves:
        if leaf.name not in covered:
            pieces.append(leaf)

    if len(pieces) == 1:
        return pieces[0]
    return _join_pieces(pieces, predicates, first_leaf=plan_leaves[0].name)


def _join_pieces(
    pieces: List[Operator], predicates: Sequence[Expression], first_leaf: str
) -> Operator:
    """Left-deep join of ``pieces`` along the query's join predicates."""
    remaining = list(pieces)
    pending = list(predicates)

    start = next(
        (
            p
            for p in remaining
            if first_leaf in {leaf.name for leaf in tree_leaves(p)}
        ),
        remaining[0],
    )
    remaining.remove(start)
    current = start

    # Drop predicates already satisfied inside the pieces.
    def internal(piece: Operator) -> Set[str]:
        return {p.signature for p in skeleton_join_conjuncts(piece)}

    satisfied = internal(current)
    for piece in remaining:
        satisfied |= internal(piece)
    pending = [p for p in pending if p.signature not in satisfied]

    while remaining:
        chosen: Optional[Operator] = None
        for piece in remaining:
            if _connecting(pending, current, piece):
                chosen = piece
                break
        if chosen is None:
            chosen = remaining[0]  # cross join as a last resort
        remaining.remove(chosen)
        applicable = _connecting(pending, current, chosen)
        for predicate in applicable:
            pending.remove(predicate)
        current = Join(current, chosen, P.conjunction(applicable))
    if pending:
        raise MVPPError(
            f"join predicates left over after merging: "
            f"{[p.signature for p in pending]}"
        )
    return current


def _connecting(
    predicates: Sequence[Expression], left: Operator, right: Operator
) -> List[Expression]:
    left_cols = set(left.schema.attribute_names)
    right_cols = set(right.schema.attribute_names)
    out = []
    for predicate in predicates:
        columns = predicate.columns()
        if (
            columns & left_cols
            and columns & right_cols
            and columns <= (left_cols | right_cols)
        ):
            out.append(predicate)
    return out
