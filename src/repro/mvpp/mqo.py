"""Multiple-query optimization (MQO) baseline — the paper's Section 3.2.

The paper differentiates MVPP design from classic multiple-query
processing: MQO shares common subexpressions to minimize the cost of
*one combined execution* of all queries, while MVPP weighs repeated
accesses (``fq``) against view maintenance (``fu``).  This module makes
the comparison executable:

* :func:`batch_execution` computes the Sellis-style objective — the cost
  of evaluating all queries once, sharing every common subexpression —
  versus evaluating them serially;
* :func:`mqo_as_design` treats MQO's sharing choice (persist every shared
  temporary) as a warehouse design and prices it under the MVPP total
  cost, quantifying the paper's argument that the two objectives diverge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.mvpp.cost import CostBreakdown, MVPPCostCalculator
from repro.mvpp.graph import MVPP, Vertex, VertexKind


@dataclass(frozen=True)
class BatchExecutionResult:
    """MQO's one-shot objective on an MVPP's shared DAG."""

    serial_cost: float  # evaluate each query independently, no sharing
    shared_cost: float  # evaluate the DAG once, each vertex computed once
    shared_vertices: Tuple[str, ...]  # temporaries used by >= 2 queries

    @property
    def saving(self) -> float:
        return self.serial_cost - self.shared_cost

    @property
    def speedup(self) -> float:
        if self.shared_cost <= 0:
            return float("inf")
        return self.serial_cost / self.shared_cost


def batch_execution(mvpp: MVPP) -> BatchExecutionResult:
    """The classic MQO accounting over an (already merged) MVPP.

    * serial: every query recomputes its full lineage — ``Σ_r Ca(r)``
      (frequencies deliberately ignored: MQO batches one execution);
    * shared: every vertex of the DAG is computed exactly once —
      ``Σ_v local_cost(v)``.
    """
    mvpp.require_annotation()
    serial = sum(root.access_cost for root in mvpp.roots)
    shared = sum(
        vertex.local_cost
        for vertex in mvpp
        if vertex.kind is VertexKind.OPERATION
    )
    shared_names = tuple(
        vertex.name
        for vertex in mvpp.topological_order()
        if vertex.kind is VertexKind.OPERATION
        and len(mvpp.queries_using(vertex)) >= 2
    )
    return BatchExecutionResult(serial, shared, shared_names)


def mqo_as_design(
    mvpp: MVPP,
    calculator: Optional[MVPPCostCalculator] = None,
) -> Tuple[List[Vertex], CostBreakdown]:
    """Price MQO's sharing choice as a materialized-view design.

    MQO would keep every common subexpression as a temporary; persisted
    as materialized views, those same nodes incur maintenance the MQO
    objective never sees.  Returns the shared-temporary set and its MVPP
    cost breakdown — compare against the Figure-9 heuristic to reproduce
    the paper's point that MQO's choice is not the warehouse optimum.
    """
    calculator = calculator or MVPPCostCalculator(mvpp)
    shared = [
        vertex
        for vertex in mvpp.topological_order()
        if vertex.kind is VertexKind.OPERATION
        and len(mvpp.queries_using(vertex)) >= 2
    ]
    # Keep only the topmost shared nodes: a shared node whose parent is
    # also shared adds maintenance without query benefit (its parent is
    # read instead) — the most charitable reading of the MQO choice.
    shared_ids = {v.vertex_id for v in shared}
    topmost = [
        v
        for v in shared
        if not any(p in shared_ids for p in v.parents)
    ]
    return topmost, calculator.breakdown(topmost)
