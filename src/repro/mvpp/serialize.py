"""JSON-serializable representations of plans, MVPPs, and designs.

A warehouse design is an artifact worth persisting: the operations team
reviews it, ops tooling provisions the views, and the next design run
diffs against it.  This module provides lossless dict representations
(safe for ``json.dumps``) of scalar expressions, operator trees, whole
MVPPs, and design results — plus loaders that rebuild live objects.

Dates are encoded as ``{"$date": "YYYY-MM-DD"}`` so round-trips preserve
types through JSON.
"""

from __future__ import annotations

import datetime
from typing import Any, Dict, List, Optional

from repro.algebra.expressions import (
    And,
    ColumnRef,
    Comparison,
    Expression,
    Literal,
    Not,
    Or,
)
from repro.algebra.operators import (
    Aggregate,
    AggregateFunction,
    AggregateSpec,
    Join,
    Limit,
    Operator,
    Project,
    Relation,
    Select,
    Sort,
)
from repro.catalog.datatypes import DataType
from repro.catalog.schema import Attribute, RelationSchema
from repro.errors import MVPPError
from repro.mvpp.graph import MVPP
from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.cost_model import CostModel, DEFAULT_COST_MODEL


# ---------------------------------------------------------------------------
# values & expressions
# ---------------------------------------------------------------------------
def value_to_json(value: Any) -> Any:
    if isinstance(value, datetime.date):
        return {"$date": value.isoformat()}
    return value


def value_from_json(value: Any) -> Any:
    if isinstance(value, dict) and "$date" in value:
        return datetime.date.fromisoformat(value["$date"])
    return value


def expression_to_dict(expression: Expression) -> Dict[str, Any]:
    if isinstance(expression, ColumnRef):
        return {"kind": "column", "name": expression.name}
    if isinstance(expression, Literal):
        return {
            "kind": "literal",
            "type": expression.datatype.value,
            "value": value_to_json(expression.value),
        }
    if isinstance(expression, Comparison):
        return {
            "kind": "comparison",
            "op": expression.op,
            "left": expression_to_dict(expression.left),
            "right": expression_to_dict(expression.right),
        }
    if isinstance(expression, (And, Or)):
        return {
            "kind": "and" if isinstance(expression, And) else "or",
            "operands": [expression_to_dict(c) for c in expression.children],
        }
    if isinstance(expression, Not):
        return {"kind": "not", "operand": expression_to_dict(expression.operand)}
    raise MVPPError(f"cannot serialize expression {type(expression).__name__}")


def expression_from_dict(data: Dict[str, Any]) -> Expression:
    kind = data["kind"]
    if kind == "column":
        return ColumnRef(data["name"])
    if kind == "literal":
        return Literal(value_from_json(data["value"]), DataType(data["type"]))
    if kind == "comparison":
        return Comparison(
            data["op"],
            expression_from_dict(data["left"]),
            expression_from_dict(data["right"]),
        )
    if kind == "and":
        return And([expression_from_dict(d) for d in data["operands"]])
    if kind == "or":
        return Or([expression_from_dict(d) for d in data["operands"]])
    if kind == "not":
        return Not(expression_from_dict(data["operand"]))
    raise MVPPError(f"unknown expression kind {kind!r}")


# ---------------------------------------------------------------------------
# schemas & operators
# ---------------------------------------------------------------------------
def schema_to_dict(schema: RelationSchema) -> Dict[str, Any]:
    return {
        "name": schema.name,
        "attributes": [
            {"name": a.name, "type": a.datatype.value} for a in schema
        ],
    }


def schema_from_dict(data: Dict[str, Any]) -> RelationSchema:
    return RelationSchema(
        data["name"],
        [Attribute(a["name"], DataType(a["type"])) for a in data["attributes"]],
    )


def operator_to_dict(operator: Operator) -> Dict[str, Any]:
    if isinstance(operator, Relation):
        return {
            "kind": "relation",
            "name": operator.name,
            "schema": schema_to_dict(operator.schema),
        }
    if isinstance(operator, Select):
        return {
            "kind": "select",
            "predicate": expression_to_dict(operator.predicate),
            "child": operator_to_dict(operator.child),
        }
    if isinstance(operator, Project):
        payload = {
            "kind": "project",
            "attributes": list(operator.attributes),
            "child": operator_to_dict(operator.child),
        }
        if operator.distinct:
            payload["distinct"] = True
        return payload
    if isinstance(operator, Join):
        return {
            "kind": "join",
            "condition": (
                expression_to_dict(operator.condition)
                if operator.condition is not None
                else None
            ),
            "left": operator_to_dict(operator.left),
            "right": operator_to_dict(operator.right),
        }
    if isinstance(operator, Aggregate):
        return {
            "kind": "aggregate",
            "group_by": list(operator.group_by),
            "aggregates": [
                {
                    "function": s.function.value,
                    "attribute": s.attribute,
                    "alias": s.alias,
                }
                for s in operator.aggregates
            ],
            "child": operator_to_dict(operator.child),
        }
    if isinstance(operator, Sort):
        return {
            "kind": "sort",
            "keys": [[name, ascending] for name, ascending in operator.keys],
            "child": operator_to_dict(operator.child),
        }
    if isinstance(operator, Limit):
        return {
            "kind": "limit",
            "count": operator.count,
            "child": operator_to_dict(operator.child),
        }
    raise MVPPError(f"cannot serialize operator {type(operator).__name__}")


def operator_from_dict(data: Dict[str, Any]) -> Operator:
    kind = data["kind"]
    if kind == "relation":
        return Relation(data["name"], schema_from_dict(data["schema"]))
    if kind == "select":
        return Select(
            operator_from_dict(data["child"]),
            expression_from_dict(data["predicate"]),
        )
    if kind == "project":
        return Project(
            operator_from_dict(data["child"]),
            data["attributes"],
            distinct=bool(data.get("distinct", False)),
        )
    if kind == "join":
        condition = (
            expression_from_dict(data["condition"])
            if data["condition"] is not None
            else None
        )
        return Join(
            operator_from_dict(data["left"]),
            operator_from_dict(data["right"]),
            condition,
        )
    if kind == "aggregate":
        specs = [
            AggregateSpec(
                AggregateFunction(s["function"]), s["attribute"], s["alias"]
            )
            for s in data["aggregates"]
        ]
        return Aggregate(operator_from_dict(data["child"]), data["group_by"], specs)
    if kind == "sort":
        return Sort(
            operator_from_dict(data["child"]),
            [(name, ascending) for name, ascending in data["keys"]],
        )
    if kind == "limit":
        return Limit(operator_from_dict(data["child"]), data["count"])
    raise MVPPError(f"unknown operator kind {kind!r}")


# ---------------------------------------------------------------------------
# MVPPs & designs
# ---------------------------------------------------------------------------
def mvpp_to_dict(mvpp: MVPP) -> Dict[str, Any]:
    """Serialize an MVPP as its query plans plus frequency annotations.

    The DAG itself is implicit: rebuilding interns the plans and recovers
    exactly the same shared structure (signature-identical vertices and
    deterministic ``tmp`` names).
    """
    return {
        "name": mvpp.name,
        "queries": [
            {
                "name": root.name,
                "frequency": root.frequency,
                "plan": operator_to_dict(root.operator),
            }
            for root in mvpp.roots
        ],
        "update_frequencies": {
            leaf.name: leaf.frequency for leaf in mvpp.leaves
        },
    }


def mvpp_from_dict(
    data: Dict[str, Any],
    estimator: Optional[CardinalityEstimator] = None,
    cost_model: CostModel = DEFAULT_COST_MODEL,
) -> MVPP:
    """Rebuild an MVPP; annotates it when an estimator is provided."""
    mvpp = MVPP(name=data["name"])
    for query in data["queries"]:
        mvpp.add_query(
            query["name"], operator_from_dict(query["plan"]), query["frequency"]
        )
    for relation, frequency in data["update_frequencies"].items():
        mvpp.set_update_frequency(relation, frequency)
    if estimator is not None:
        mvpp.annotate(estimator, cost_model)
    mvpp.assign_names()
    return mvpp


def design_to_dict(result) -> Dict[str, Any]:
    """Serialize a :class:`repro.mvpp.generation.DesignResult`."""
    return {
        "mvpp": mvpp_to_dict(result.mvpp),
        "materialized": [
            operator_to_dict(vertex.operator) for vertex in result.materialized
        ],
        "materialized_names": list(result.materialized_names),
        "cost": {
            "query_processing": result.breakdown.query_processing,
            "maintenance": result.breakdown.maintenance,
            "total": result.breakdown.total,
        },
    }
