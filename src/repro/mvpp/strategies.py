"""Named materialization strategies — the rows of the paper's Table 2.

Table 2 compares five strategies on the running example:

* keep only base relations (everything virtual),
* materialize selected intermediate sets (``{tmp2, tmp4, tmp6}``,
  ``{tmp2, tmp6}``, ``{tmp2, tmp4}``),
* materialize every query result.

This module provides those strategies generically (plus the Figure-9
heuristic, greedy, and exhaustive baselines), a string-keyed *strategy
registry* (the names :class:`~repro.mvpp.config.DesignConfig.strategy`
accepts), and a comparison harness that produces Table-2-style rows for
any MVPP.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import MVPPError
from repro.mvpp.config import DEFAULT_DESIGN_CONFIG, DesignConfig
from repro.mvpp.cost import CostBreakdown, MVPPCostCalculator
from repro.mvpp.exhaustive import exhaustive_optimal, greedy_forward
from repro.mvpp.graph import MVPP, Vertex, VertexKind
from repro.mvpp.materialization import select_views
from repro.parallel.executor import resolve_executor


@dataclass(frozen=True)
class StrategyResult:
    """One Table-2 row: strategy name, chosen views, cost breakdown.

    Implements the :class:`~repro.mvpp.config.CostedResult` protocol, so
    rows are interchangeable with full
    :class:`~repro.mvpp.generation.DesignResult` objects in reports.
    """

    name: str
    materialized: Tuple[str, ...]
    breakdown: CostBreakdown

    @property
    def query_cost(self) -> float:
        return self.breakdown.query_processing

    @property
    def maintenance_cost(self) -> float:
        return self.breakdown.maintenance

    @property
    def total_cost(self) -> float:
        return self.breakdown.total

    @property
    def views(self) -> Tuple[str, ...]:
        """Protocol alias for the materialized vertex names."""
        return self.materialized


# ---------------------------------------------------------------------------
# the strategy registry — the names DesignConfig.strategy accepts
# ---------------------------------------------------------------------------
#: A selection strategy: (annotated MVPP, calculator, config) -> vertices.
SelectionStrategy = Callable[
    [MVPP, MVPPCostCalculator, DesignConfig], List[Vertex]
]

_REGISTRY: Dict[str, SelectionStrategy] = {}


def register_strategy(
    name: str,
) -> Callable[[SelectionStrategy], SelectionStrategy]:
    """Register a selection strategy under ``name`` (decorator).

    Registered names become valid ``DesignConfig.strategy`` values and
    CLI ``--strategy`` choices.  Re-registering a name overrides it
    (last registration wins), so applications can swap in their own
    selectors.
    """

    def decorator(fn: SelectionStrategy) -> SelectionStrategy:
        _REGISTRY[name] = fn
        return fn

    return decorator


def get_strategy(name: str) -> SelectionStrategy:
    """Look up a registered strategy; raises with the known names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise MVPPError(
            f"unknown selection strategy {name!r}; "
            f"registered: {', '.join(strategy_names())}"
        ) from None


def strategy_names() -> Tuple[str, ...]:
    """Registered strategy names, in registration order."""
    return tuple(_REGISTRY)


@register_strategy("heuristic")
def _strategy_heuristic(
    mvpp: MVPP, calculator: MVPPCostCalculator, config: DesignConfig
) -> List[Vertex]:
    """Figure-9 weight-greedy selection with the refinement post-pass
    (what ``design()`` has always run)."""
    return select_views(mvpp, calculator, refine=True).materialized


@register_strategy("figure9")
def _strategy_figure9(
    mvpp: MVPP, calculator: MVPPCostCalculator, config: DesignConfig
) -> List[Vertex]:
    """The paper-faithful Figure-9 selection, no refinement."""
    return select_views(mvpp, calculator, refine=False).materialized


@register_strategy("greedy")
def _strategy_greedy(
    mvpp: MVPP, calculator: MVPPCostCalculator, config: DesignConfig
) -> List[Vertex]:
    chosen, _ = greedy_forward(mvpp, calculator)
    return chosen


@register_strategy("exhaustive")
def _strategy_exhaustive(
    mvpp: MVPP, calculator: MVPPCostCalculator, config: DesignConfig
) -> List[Vertex]:
    chosen, _ = exhaustive_optimal(mvpp, calculator)
    return chosen


@register_strategy("annealing")
def _strategy_annealing(
    mvpp: MVPP, calculator: MVPPCostCalculator, config: DesignConfig
) -> List[Vertex]:
    from repro.mvpp.annealing import AnnealingConfig, simulated_annealing

    chosen, _ = simulated_annealing(
        mvpp, calculator, config=AnnealingConfig.from_design(config)
    )
    return chosen


@register_strategy("genetic")
def _strategy_genetic(
    mvpp: MVPP, calculator: MVPPCostCalculator, config: DesignConfig
) -> List[Vertex]:
    from repro.mvpp.genetic import GeneticConfig, genetic_search

    chosen, _ = genetic_search(
        mvpp, calculator, config=GeneticConfig.from_design(config)
    )
    return chosen


@register_strategy("all-virtual")
def _strategy_all_virtual(
    mvpp: MVPP, calculator: MVPPCostCalculator, config: DesignConfig
) -> List[Vertex]:
    return []


@register_strategy("materialize-queries")
def _strategy_materialize_queries(
    mvpp: MVPP, calculator: MVPPCostCalculator, config: DesignConfig
) -> List[Vertex]:
    results = [mvpp.children_of(root)[0] for root in mvpp.roots]
    return list({v.vertex_id: v for v in results}.values())


@register_strategy("materialize-everything")
def _strategy_materialize_everything(
    mvpp: MVPP, calculator: MVPPCostCalculator, config: DesignConfig
) -> List[Vertex]:
    return mvpp.operations


def evaluate(
    mvpp: MVPP,
    calculator: MVPPCostCalculator,
    name: str,
    vertices: Iterable[Vertex],
) -> StrategyResult:
    """Cost a specific set of vertices as a named strategy."""
    vertex_list = list(vertices)
    return StrategyResult(
        name=name,
        materialized=tuple(v.name for v in vertex_list),
        breakdown=calculator.breakdown(vertex_list),
    )


def materialize_nothing(
    mvpp: MVPP, calculator: MVPPCostCalculator
) -> StrategyResult:
    """All views virtual — Table 2's 'base relations only' row."""
    return evaluate(mvpp, calculator, "all-virtual", ())


def materialize_all_queries(
    mvpp: MVPP, calculator: MVPPCostCalculator
) -> StrategyResult:
    """Materialize every query's result relation — Table 2's last row."""
    results = [mvpp.children_of(root)[0] for root in mvpp.roots]
    unique = {v.vertex_id: v for v in results}
    return evaluate(
        mvpp, calculator, "materialize-queries", unique.values()
    )


def materialize_everything(
    mvpp: MVPP, calculator: MVPPCostCalculator
) -> StrategyResult:
    """Materialize every non-leaf vertex (upper bound on maintenance)."""
    return evaluate(mvpp, calculator, "materialize-everything", mvpp.operations)


def heuristic(mvpp: MVPP, calculator: MVPPCostCalculator) -> StrategyResult:
    """The paper's Figure-9 weight-greedy selection."""
    result = select_views(mvpp, calculator)
    return evaluate(mvpp, calculator, "heuristic (Fig.9)", result.materialized)


def greedy(mvpp: MVPP, calculator: MVPPCostCalculator) -> StrategyResult:
    """Forward-greedy baseline."""
    chosen, _ = greedy_forward(mvpp, calculator)
    return evaluate(mvpp, calculator, "greedy-forward", chosen)


def exhaustive(
    mvpp: MVPP, calculator: MVPPCostCalculator, max_candidates: int = 18
) -> StrategyResult:
    """The 2^n optimum (small MVPPs only)."""
    chosen, _ = exhaustive_optimal(mvpp, calculator, max_candidates=max_candidates)
    return evaluate(mvpp, calculator, "exhaustive-optimal", chosen)


def annealing(
    mvpp: MVPP, calculator: MVPPCostCalculator, seed: int = 0
) -> StrategyResult:
    """Seeded simulated-annealing baseline."""
    from repro.mvpp.annealing import AnnealingConfig, simulated_annealing

    chosen, _ = simulated_annealing(
        mvpp, calculator, config=AnnealingConfig(seed=seed)
    )
    return evaluate(mvpp, calculator, "simulated-annealing", chosen)


def custom(
    mvpp: MVPP,
    calculator: MVPPCostCalculator,
    name: str,
    vertex_names: Sequence[str],
) -> StrategyResult:
    """Cost an explicit set of vertices given by their MVPP names."""
    vertices = [mvpp.vertex_by_name(n) for n in vertex_names]
    for vertex in vertices:
        if vertex.kind is VertexKind.QUERY:
            raise MVPPError(
                f"materialize the query's result vertex, not the root {vertex.name!r}"
            )
    return evaluate(mvpp, calculator, name, vertices)


def compare(
    mvpp: MVPP,
    calculator: MVPPCostCalculator,
    extra: Optional[Dict[str, Sequence[str]]] = None,
    include_exhaustive: bool = False,
    config: Optional[DesignConfig] = None,
) -> List[StrategyResult]:
    """Run the standard strategy suite (plus ``extra`` named vertex sets).

    With a ``config`` requesting workers, rows are evaluated on a
    parallel executor (thread-backed — strategy thunks are closures
    over the shared MVPP, so a ``process`` request degrades to
    threads).  Row order and contents are identical for every backend.
    """
    config = config or DEFAULT_DESIGN_CONFIG
    thunks: List[Callable[[], StrategyResult]] = [
        lambda: materialize_nothing(mvpp, calculator),
        lambda: materialize_all_queries(mvpp, calculator),
        lambda: materialize_everything(mvpp, calculator),
        lambda: heuristic(mvpp, calculator),
        lambda: greedy(mvpp, calculator),
    ]
    if include_exhaustive:
        thunks.append(lambda: exhaustive(mvpp, calculator))
    for name, vertex_names in (extra or {}).items():
        thunks.append(
            lambda name=name, vertex_names=vertex_names: custom(
                mvpp, calculator, name, vertex_names
            )
        )
    executor = resolve_executor(
        config.executor, config.workers, closures=True
    )
    return executor.map(lambda thunk: thunk(), thunks)
