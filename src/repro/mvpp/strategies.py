"""Named materialization strategies — the rows of the paper's Table 2.

Table 2 compares five strategies on the running example:

* keep only base relations (everything virtual),
* materialize selected intermediate sets (``{tmp2, tmp4, tmp6}``,
  ``{tmp2, tmp6}``, ``{tmp2, tmp4}``),
* materialize every query result.

This module provides those strategies generically (plus the Figure-9
heuristic, greedy, and exhaustive baselines) and a comparison harness
that produces Table-2-style rows for any MVPP.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import MVPPError
from repro.mvpp.cost import CostBreakdown, MVPPCostCalculator
from repro.mvpp.exhaustive import exhaustive_optimal, greedy_forward
from repro.mvpp.graph import MVPP, Vertex, VertexKind
from repro.mvpp.materialization import select_views


@dataclass(frozen=True)
class StrategyResult:
    """One Table-2 row: strategy name, chosen views, cost breakdown."""

    name: str
    materialized: Tuple[str, ...]
    breakdown: CostBreakdown

    @property
    def query_cost(self) -> float:
        return self.breakdown.query_processing

    @property
    def maintenance_cost(self) -> float:
        return self.breakdown.maintenance

    @property
    def total_cost(self) -> float:
        return self.breakdown.total


def evaluate(
    mvpp: MVPP,
    calculator: MVPPCostCalculator,
    name: str,
    vertices: Iterable[Vertex],
) -> StrategyResult:
    """Cost a specific set of vertices as a named strategy."""
    vertex_list = list(vertices)
    return StrategyResult(
        name=name,
        materialized=tuple(v.name for v in vertex_list),
        breakdown=calculator.breakdown(vertex_list),
    )


def materialize_nothing(
    mvpp: MVPP, calculator: MVPPCostCalculator
) -> StrategyResult:
    """All views virtual — Table 2's 'base relations only' row."""
    return evaluate(mvpp, calculator, "all-virtual", ())


def materialize_all_queries(
    mvpp: MVPP, calculator: MVPPCostCalculator
) -> StrategyResult:
    """Materialize every query's result relation — Table 2's last row."""
    results = [mvpp.children_of(root)[0] for root in mvpp.roots]
    unique = {v.vertex_id: v for v in results}
    return evaluate(
        mvpp, calculator, "materialize-queries", unique.values()
    )


def materialize_everything(
    mvpp: MVPP, calculator: MVPPCostCalculator
) -> StrategyResult:
    """Materialize every non-leaf vertex (upper bound on maintenance)."""
    return evaluate(mvpp, calculator, "materialize-everything", mvpp.operations)


def heuristic(mvpp: MVPP, calculator: MVPPCostCalculator) -> StrategyResult:
    """The paper's Figure-9 weight-greedy selection."""
    result = select_views(mvpp, calculator)
    return evaluate(mvpp, calculator, "heuristic (Fig.9)", result.materialized)


def greedy(mvpp: MVPP, calculator: MVPPCostCalculator) -> StrategyResult:
    """Forward-greedy baseline."""
    chosen, _ = greedy_forward(mvpp, calculator)
    return evaluate(mvpp, calculator, "greedy-forward", chosen)


def exhaustive(
    mvpp: MVPP, calculator: MVPPCostCalculator, max_candidates: int = 18
) -> StrategyResult:
    """The 2^n optimum (small MVPPs only)."""
    chosen, _ = exhaustive_optimal(mvpp, calculator, max_candidates=max_candidates)
    return evaluate(mvpp, calculator, "exhaustive-optimal", chosen)


def annealing(
    mvpp: MVPP, calculator: MVPPCostCalculator, seed: int = 0
) -> StrategyResult:
    """Seeded simulated-annealing baseline."""
    from repro.mvpp.annealing import AnnealingConfig, simulated_annealing

    chosen, _ = simulated_annealing(
        mvpp, calculator, config=AnnealingConfig(seed=seed)
    )
    return evaluate(mvpp, calculator, "simulated-annealing", chosen)


def custom(
    mvpp: MVPP,
    calculator: MVPPCostCalculator,
    name: str,
    vertex_names: Sequence[str],
) -> StrategyResult:
    """Cost an explicit set of vertices given by their MVPP names."""
    vertices = [mvpp.vertex_by_name(n) for n in vertex_names]
    for vertex in vertices:
        if vertex.kind is VertexKind.QUERY:
            raise MVPPError(
                f"materialize the query's result vertex, not the root {vertex.name!r}"
            )
    return evaluate(mvpp, calculator, name, vertices)


def compare(
    mvpp: MVPP,
    calculator: MVPPCostCalculator,
    extra: Optional[Dict[str, Sequence[str]]] = None,
    include_exhaustive: bool = False,
) -> List[StrategyResult]:
    """Run the standard strategy suite (plus ``extra`` named vertex sets)."""
    rows = [
        materialize_nothing(mvpp, calculator),
        materialize_all_queries(mvpp, calculator),
        materialize_everything(mvpp, calculator),
        heuristic(mvpp, calculator),
        greedy(mvpp, calculator),
    ]
    if include_exhaustive:
        rows.append(exhaustive(mvpp, calculator))
    for name, vertex_names in (extra or {}).items():
        rows.append(custom(mvpp, calculator, name, vertex_names))
    return rows
