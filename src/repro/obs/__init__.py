"""repro.obs — zero-cost-when-disabled observability for the pipeline.

The pipeline's hot paths are instrumented against this module's
*current* tracer and metrics registry::

    from repro import obs

    with obs.span("selection.figure9", mvpp=name) as span:
        span.event("decision", vertex="tmp2", decision="materialize")
    obs.metrics().counter("executor.blocks_read").inc(blocks)

By default both are no-op singletons: ``obs.span(...)`` returns a shared
inert context manager and every metric mutator does nothing, so the
disabled overhead is one function call per instrumentation point (the
tier-1 suite and production-path timings are unaffected; see
``tests/obs/test_noop_overhead.py``).

Enable collection explicitly::

    obs.enable()            # swap in a live Tracer + MetricsRegistry
    ...                     # run the pipeline
    snapshot = obs.snapshot()   # {"phases": ..., "spans": ..., "metrics": ...}
    obs.disable()

or set the ``REPRO_OBS`` environment variable (any non-empty value other
than ``0``/``false``/``off``) to enable it at import time.

The span taxonomy and metric names are documented in
``docs/observability.md``.
"""

from __future__ import annotations

import os
from typing import Any, Dict

from repro.obs.calibration import (
    CalibrationLog,
    CalibrationSample,
    NoopCalibrationLog,
)
from repro.obs.journal import EventJournal, JournalEvent, NoopJournal
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NoopMetricsRegistry,
)
from repro.obs.tracing import NOOP_SPAN, NoopSpan, NoopTracer, Span, Tracer
from repro.obs import export

__all__ = [
    "CalibrationLog",
    "CalibrationSample",
    "Counter",
    "EventJournal",
    "Gauge",
    "Histogram",
    "JournalEvent",
    "MetricsRegistry",
    "NoopCalibrationLog",
    "NoopJournal",
    "NoopMetricsRegistry",
    "NoopSpan",
    "NoopTracer",
    "Span",
    "Tracer",
    "calibration",
    "correlation",
    "enable",
    "disable",
    "enabled",
    "event",
    "export",
    "journal",
    "journal_event",
    "metrics",
    "reset",
    "snapshot",
    "span",
    "tracer",
]

#: Environment variable that enables collection at import time.
ENV_VAR = "REPRO_OBS"

_NOOP_TRACER = NoopTracer()
_NOOP_METRICS = NoopMetricsRegistry()
_NOOP_JOURNAL = NoopJournal()
_NOOP_CALIBRATION = NoopCalibrationLog()

_enabled = False
_tracer: Tracer = _NOOP_TRACER  # type: ignore[assignment]
_metrics: MetricsRegistry = _NOOP_METRICS
_journal: EventJournal = _NOOP_JOURNAL
_calibration: CalibrationLog = _NOOP_CALIBRATION


def enabled() -> bool:
    """Whether observability collection is currently on."""
    return _enabled


def enable(reset: bool = False) -> None:
    """Swap in a live tracer and metrics registry.

    Idempotent; with ``reset=True`` any previously collected spans and
    metrics are discarded first (also when already enabled).
    """
    global _enabled, _tracer, _metrics, _journal, _calibration
    if not _enabled:
        _tracer = Tracer()
        _metrics = MetricsRegistry()
        _journal = EventJournal()
        _calibration = CalibrationLog()
        _enabled = True
    elif reset:
        _tracer.reset()
        _metrics.reset()
        _journal.reset()
        _calibration.reset()


def disable() -> None:
    """Return to the zero-cost no-op mode (collected data is dropped)."""
    global _enabled, _tracer, _metrics, _journal, _calibration
    _enabled = False
    _tracer = _NOOP_TRACER  # type: ignore[assignment]
    _metrics = _NOOP_METRICS
    _journal = _NOOP_JOURNAL
    _calibration = _NOOP_CALIBRATION


def reset() -> None:
    """Drop collected spans and metrics, keeping the current mode."""
    _tracer.reset()
    _metrics.reset()
    _journal.reset()
    _calibration.reset()


def tracer() -> Tracer:
    """The current tracer (a :class:`NoopTracer` while disabled)."""
    return _tracer


def metrics() -> MetricsRegistry:
    """The current registry (a :class:`NoopMetricsRegistry` while disabled)."""
    return _metrics


def journal() -> EventJournal:
    """The current flight recorder (a :class:`NoopJournal` while disabled)."""
    return _journal


def calibration() -> CalibrationLog:
    """The current calibration log (no-op while disabled)."""
    return _calibration


def journal_event(
    kind: str,
    correlation_id: "str | None" = None,
    tick: "float | None" = None,
    **attributes: Any,
) -> None:
    """Record one flight-recorder event (no-op while disabled)."""
    if _enabled:
        _journal.record(
            kind, correlation_id=correlation_id, tick=tick, **attributes
        )


def correlation(scope: str = "corr", correlation_id: "str | None" = None):
    """Open a correlation scope on the current journal.

    Use as a context manager; the yielded id tags every
    :func:`journal_event` recorded inside, threading one logical
    operation (a refresh, a redesign, a served query) across
    subsystems.  While disabled this is a shared no-op scope yielding
    the empty id.
    """
    return _journal.correlation(scope, correlation_id)


def span(name: str, **attributes: Any):
    """Shorthand for ``tracer().span(...)`` against the current tracer."""
    if not _enabled:
        return NOOP_SPAN
    return _tracer.span(name, **attributes)


def event(name: str, **attributes: Any) -> None:
    """Record an event on the current span (no-op while disabled)."""
    if _enabled:
        _tracer.event(name, **attributes)


def snapshot(workload: str = "") -> Dict[str, Any]:
    """The full observability state as a JSON-safe profile document."""
    return export.profile_to_dict(
        _tracer, _metrics, workload=workload, journal=_journal
    )


if os.environ.get(ENV_VAR, "").lower() not in ("", "0", "false", "off"):
    enable()
