"""repro.obs — zero-cost-when-disabled observability for the pipeline.

The pipeline's hot paths are instrumented against this module's
*current* tracer and metrics registry::

    from repro import obs

    with obs.span("selection.figure9", mvpp=name) as span:
        span.event("decision", vertex="tmp2", decision="materialize")
    obs.metrics().counter("executor.blocks_read").inc(blocks)

By default both are no-op singletons: ``obs.span(...)`` returns a shared
inert context manager and every metric mutator does nothing, so the
disabled overhead is one function call per instrumentation point (the
tier-1 suite and production-path timings are unaffected; see
``tests/obs/test_noop_overhead.py``).

Enable collection explicitly::

    obs.enable()            # swap in a live Tracer + MetricsRegistry
    ...                     # run the pipeline
    snapshot = obs.snapshot()   # {"phases": ..., "spans": ..., "metrics": ...}
    obs.disable()

or set the ``REPRO_OBS`` environment variable (any non-empty value other
than ``0``/``false``/``off``) to enable it at import time.

The span taxonomy and metric names are documented in
``docs/observability.md``.
"""

from __future__ import annotations

import os
from typing import Any, Dict

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NoopMetricsRegistry,
)
from repro.obs.tracing import NOOP_SPAN, NoopSpan, NoopTracer, Span, Tracer
from repro.obs import export

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NoopMetricsRegistry",
    "NoopSpan",
    "NoopTracer",
    "Span",
    "Tracer",
    "enable",
    "disable",
    "enabled",
    "event",
    "export",
    "metrics",
    "reset",
    "snapshot",
    "span",
    "tracer",
]

#: Environment variable that enables collection at import time.
ENV_VAR = "REPRO_OBS"

_NOOP_TRACER = NoopTracer()
_NOOP_METRICS = NoopMetricsRegistry()

_enabled = False
_tracer: Tracer = _NOOP_TRACER  # type: ignore[assignment]
_metrics: MetricsRegistry = _NOOP_METRICS


def enabled() -> bool:
    """Whether observability collection is currently on."""
    return _enabled


def enable(reset: bool = False) -> None:
    """Swap in a live tracer and metrics registry.

    Idempotent; with ``reset=True`` any previously collected spans and
    metrics are discarded first (also when already enabled).
    """
    global _enabled, _tracer, _metrics
    if not _enabled:
        _tracer = Tracer()
        _metrics = MetricsRegistry()
        _enabled = True
    elif reset:
        _tracer.reset()
        _metrics.reset()


def disable() -> None:
    """Return to the zero-cost no-op mode (collected data is dropped)."""
    global _enabled, _tracer, _metrics
    _enabled = False
    _tracer = _NOOP_TRACER  # type: ignore[assignment]
    _metrics = _NOOP_METRICS


def reset() -> None:
    """Drop collected spans and metrics, keeping the current mode."""
    _tracer.reset()
    _metrics.reset()


def tracer() -> Tracer:
    """The current tracer (a :class:`NoopTracer` while disabled)."""
    return _tracer


def metrics() -> MetricsRegistry:
    """The current registry (a :class:`NoopMetricsRegistry` while disabled)."""
    return _metrics


def span(name: str, **attributes: Any):
    """Shorthand for ``tracer().span(...)`` against the current tracer."""
    if not _enabled:
        return NOOP_SPAN
    return _tracer.span(name, **attributes)


def event(name: str, **attributes: Any) -> None:
    """Record an event on the current span (no-op while disabled)."""
    if _enabled:
        _tracer.event(name, **attributes)


def snapshot(workload: str = "") -> Dict[str, Any]:
    """The full observability state as a JSON-safe profile document."""
    return export.profile_to_dict(_tracer, _metrics, workload=workload)


if os.environ.get(ENV_VAR, "").lower() not in ("", "0", "false", "off"):
    enable()
