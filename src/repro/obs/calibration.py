"""Cost-model calibration: estimated Ca/Cm against measured executor work.

The paper's whole selection argument rests on the Figure-9 weight
``w(v) = Σ fq·Ca(v) − Σ fu·Cm(v)``, yet ``Ca``/``Cm`` are *estimates*
(Table-1 statistics through the block cost model).  This module records
each estimate next to what the executor actually did, so the adaptive
redesign gate — and any future executor work — can know how far the
cost model is from the truth before trusting it.

Two phases are calibrated:

* ``access`` — a query answered through the installed views: estimated
  cost of the (rewritten) plan vs the measured block I/O;
* ``maintenance`` — a view refresh: the design-time ``Cm`` annotation
  vs the measured refresh I/O.

Each :meth:`CalibrationLog.record` call keeps a bounded
:class:`CalibrationSample` and feeds the ``calibration.error{phase,
operator}`` histogram in the live metrics registry, so profiles carry
the aggregate error distribution even after samples rotate out.
``calibration_report`` ranks the worst-calibrated views/queries —
surfaced by ``repro calibrate --workload paper``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

__all__ = [
    "CalibrationLog",
    "CalibrationReport",
    "CalibrationSample",
    "NoopCalibrationLog",
    "PHASE_ACCESS",
    "PHASE_MAINTENANCE",
    "calibration_report",
]

PHASE_ACCESS = "access"
PHASE_MAINTENANCE = "maintenance"

#: Samples retained per log (ring buffer; histograms keep aggregating).
DEFAULT_SAMPLE_CAPACITY = 4096


@dataclass(frozen=True)
class CalibrationSample:
    """One estimated-vs-measured observation."""

    phase: str  # PHASE_ACCESS | PHASE_MAINTENANCE
    name: str  # query or view name
    operator: str  # root operator kind of the costed plan
    estimated: float
    measured: float

    @property
    def ratio(self) -> float:
        """``estimated / measured`` (measured floored at one block)."""
        return self.estimated / max(self.measured, 1.0)

    @property
    def relative_error(self) -> float:
        """``|estimated − measured| / max(measured, 1)`` — 0 is perfect."""
        return abs(self.estimated - self.measured) / max(self.measured, 1.0)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "phase": self.phase,
            "name": self.name,
            "operator": self.operator,
            "estimated": self.estimated,
            "measured": self.measured,
            "ratio": self.ratio,
            "relative_error": self.relative_error,
        }


class CalibrationLog:
    """Collects calibration samples and publishes error histograms.

    Instrumented code calls :meth:`record` under ``obs.enabled()``; each
    call appends a sample (bounded ring) and observes the sample's
    relative error into ``calibration.error{phase, operator}`` on the
    current metrics registry.
    """

    def __init__(self, capacity: int = DEFAULT_SAMPLE_CAPACITY):
        self.capacity = capacity
        self._samples: "deque[CalibrationSample]" = deque(maxlen=capacity)

    def record(
        self,
        phase: str,
        name: str,
        operator: str,
        estimated: float,
        measured: float,
    ) -> Optional[CalibrationSample]:
        if phase not in (PHASE_ACCESS, PHASE_MAINTENANCE):
            raise ValueError(f"unknown calibration phase {phase!r}")
        sample = CalibrationSample(
            phase=phase,
            name=name,
            operator=operator,
            estimated=float(estimated),
            measured=float(measured),
        )
        self._samples.append(sample)
        from repro import obs

        obs.metrics().histogram(
            "calibration.error", phase=phase, operator=operator
        ).observe(sample.relative_error)
        return sample

    @property
    def samples(self) -> List[CalibrationSample]:
        return list(self._samples)

    def __len__(self) -> int:
        return len(self._samples)

    def reset(self) -> None:
        self._samples.clear()


class NoopCalibrationLog(CalibrationLog):
    """Disabled mode: recording does nothing, the log stays empty."""

    def record(
        self,
        phase: str,
        name: str,
        operator: str,
        estimated: float,
        measured: float,
    ) -> None:  # type: ignore[override]
        return None


# ---------------------------------------------------------------------------
# reporting
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class _Aggregate:
    """Per-(phase, name) roll-up of calibration samples."""

    phase: str
    name: str
    operator: str
    count: int
    estimated: float  # summed over samples
    measured: float  # summed over samples
    mean_relative_error: float
    worst_relative_error: float

    @property
    def ratio(self) -> float:
        return self.estimated / max(self.measured, 1.0)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "phase": self.phase,
            "name": self.name,
            "operator": self.operator,
            "count": self.count,
            "estimated": self.estimated,
            "measured": self.measured,
            "ratio": self.ratio,
            "mean_relative_error": self.mean_relative_error,
            "worst_relative_error": self.worst_relative_error,
        }


@dataclass(frozen=True)
class CalibrationReport:
    """Worst-calibrated-first ranking over one run's samples."""

    entries: List[_Aggregate]
    samples: int

    @property
    def mean_relative_error(self) -> float:
        if not self.entries:
            return 0.0
        total = sum(e.mean_relative_error * e.count for e in self.entries)
        return total / max(self.samples, 1)

    def worst(self, limit: int = 5) -> List[_Aggregate]:
        return self.entries[:limit]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "samples": self.samples,
            "mean_relative_error": self.mean_relative_error,
            "entries": [entry.to_dict() for entry in self.entries],
        }

    def render_text(self) -> str:
        lines = [
            f"calibration: {self.samples} sample(s), "
            f"mean relative error {self.mean_relative_error:.3f}",
            f"{'target':<16} {'phase':<12} {'operator':<10} "
            f"{'est':>10} {'meas':>10} {'ratio':>7} {'err':>7}",
        ]
        for entry in self.entries:
            lines.append(
                f"{entry.name:<16} {entry.phase:<12} {entry.operator:<10} "
                f"{entry.estimated:>10.0f} {entry.measured:>10.0f} "
                f"{entry.ratio:>7.2f} {entry.mean_relative_error:>7.3f}"
            )
        if not self.entries:
            lines.append("(no calibration samples were recorded)")
        return "\n".join(lines)


def calibration_report(
    samples: List[CalibrationSample],
) -> CalibrationReport:
    """Aggregate samples per (phase, target), worst-calibrated first.

    Ties (including the zero-error case) break on phase then name, so
    the ranking is deterministic for a seeded run.
    """
    grouped: Dict[tuple, List[CalibrationSample]] = {}
    for sample in samples:
        grouped.setdefault((sample.phase, sample.name), []).append(sample)
    entries: List[_Aggregate] = []
    for (phase, name), group in grouped.items():
        errors = [s.relative_error for s in group]
        entries.append(
            _Aggregate(
                phase=phase,
                name=name,
                operator=group[-1].operator,
                count=len(group),
                estimated=sum(s.estimated for s in group),
                measured=sum(s.measured for s in group),
                mean_relative_error=sum(errors) / len(errors),
                worst_relative_error=max(errors),
            )
        )
    entries.sort(
        key=lambda e: (-e.mean_relative_error, e.phase, e.name)
    )
    return CalibrationReport(entries=entries, samples=len(samples))
