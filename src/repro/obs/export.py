"""Shared JSON serialization for traces, metrics, and decision logs.

Everything observable — span trees, metrics snapshots, Figure-9
selection traces — funnels through this module, so ``repro profile
--trace-json``, ``repro trace --format json``, and the benchmark harness
all emit the same shapes.

The profile document schema (``PROFILE_SCHEMA_VERSION``)::

    {
      "schema": 2,
      "workload": "paper",
      "phases":  {"generation": {"wall_ms": ..., "spans": N}, ...},
      "spans":   [<span tree>, ...],
      "metrics": {"counters": {...}, "gauges": {...}, "histograms": {...}},
      "events":  [{"seq": 1, "kind": ..., "correlation_id": ..., ...}, ...]
    }

Span nodes carry ``name``, ``duration_ms``, ``attributes``, ``events``
(with times relative to the span start), and ``children``.  Version 2
added the ``resilience``/``adaptive`` phases and the flight-recorder
``events`` list (see :mod:`repro.obs.journal`).
"""

from __future__ import annotations

import datetime
import json
from typing import Any, Dict, IO, Iterable, List, Optional, Union

from repro.obs.journal import EventJournal
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Span, Tracer

PROFILE_SCHEMA_VERSION = 2

#: Pipeline phases a profile document reports (the span-name prefixes).
PHASES = (
    "generation",
    "selection",
    "execution",
    "maintenance",
    "resilience",
    "adaptive",
)


def jsonable(value: Any) -> Any:
    """Recursively convert ``value`` into JSON-encodable primitives."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (datetime.date, datetime.datetime)):
        return value.isoformat()
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [jsonable(v) for v in value]
    return repr(value)


# ---------------------------------------------------------------------------
# spans
# ---------------------------------------------------------------------------
def span_to_dict(span: Span) -> Dict[str, Any]:
    """One span subtree as a JSON-safe dict (times in milliseconds)."""
    return {
        "name": span.name,
        "duration_ms": round(span.duration * 1000, 6),
        "attributes": jsonable(span.attributes),
        "events": [
            {
                "name": event["name"],
                "offset_ms": round(
                    (event["time"] - span.start) * 1000, 6
                ),
                **jsonable(
                    {
                        k: v
                        for k, v in event.items()
                        if k not in ("name", "time")
                    }
                ),
            }
            for event in span.events
        ],
        "children": [span_to_dict(child) for child in span.children],
    }


def spans_to_list(tracer: Tracer) -> List[Dict[str, Any]]:
    return [span_to_dict(root) for root in tracer.finished()]


def _phase_of(name: str) -> str:
    return name.split(".", 1)[0]


def phase_summary(tracer: Tracer) -> Dict[str, Dict[str, float]]:
    """Per-phase wall time and span counts from the finished span trees.

    A span is charged to a phase when its name prefix (before the first
    ``.``) differs from its parent's — nested same-phase spans count
    toward ``spans`` but not ``wall_ms``, so phase times don't
    double-count their own subtrees.
    """
    summary: Dict[str, Dict[str, float]] = {}

    def visit(span: Span, parent_phase: str) -> None:
        phase = _phase_of(span.name)
        bucket = summary.setdefault(phase, {"wall_ms": 0.0, "spans": 0})
        bucket["spans"] += 1
        if phase != parent_phase:
            bucket["wall_ms"] += span.duration * 1000
        for child in span.children:
            visit(child, phase)

    for root in tracer.finished():
        visit(root, "")
    for bucket in summary.values():
        bucket["wall_ms"] = round(bucket["wall_ms"], 6)
    return summary


# ---------------------------------------------------------------------------
# selection traces (shared with ``repro trace --format json``)
# ---------------------------------------------------------------------------
def selection_step_to_dict(step: Any) -> Dict[str, Any]:
    """Serialize one Figure-9 :class:`SelectionStep` decision."""
    return {
        "vertex": step.vertex,
        "weight": step.weight,
        "saving": step.saving,
        "decision": step.decision,
        "pruned": list(step.pruned),
    }


def selection_trace_to_dict(
    mvpp_name: str, steps: Iterable[Any], materialized: Iterable[str],
    total_cost: float,
) -> Dict[str, Any]:
    """The full Figure-9 decision log as a JSON document."""
    return {
        "schema": PROFILE_SCHEMA_VERSION,
        "mvpp": mvpp_name,
        "steps": [selection_step_to_dict(step) for step in steps],
        "materialized": list(materialized),
        "total_cost": total_cost,
    }


# ---------------------------------------------------------------------------
# full profile documents
# ---------------------------------------------------------------------------
def events_to_list(journal: Optional[EventJournal]) -> List[Dict[str, Any]]:
    """The journal's retained events as JSON-safe dicts (oldest first)."""
    if journal is None:
        return []
    return journal.to_list()


def profile_to_dict(
    tracer: Tracer,
    registry: MetricsRegistry,
    workload: str = "",
    journal: Optional[EventJournal] = None,
) -> Dict[str, Any]:
    """The complete observability snapshot for one profiled run."""
    return {
        "schema": PROFILE_SCHEMA_VERSION,
        "workload": workload,
        "phases": phase_summary(tracer),
        "spans": spans_to_list(tracer),
        "metrics": registry.to_dict(),
        "events": events_to_list(journal),
    }


def validate_profile(document: Dict[str, Any]) -> List[str]:
    """Schema check for a profile document; returns problems (empty = ok).

    Used by the CI smoke step and the integration tests, so schema drift
    fails loudly instead of producing unreadable ``BENCH_*.json`` blobs.
    """
    problems: List[str] = []
    if document.get("schema") != PROFILE_SCHEMA_VERSION:
        problems.append(
            f"schema must be {PROFILE_SCHEMA_VERSION}: {document.get('schema')!r}"
        )
    for key in ("phases", "spans", "metrics", "events"):
        if key not in document:
            problems.append(f"missing top-level key {key!r}")
    for phase in PHASES:
        bucket = document.get("phases", {}).get(phase)
        if bucket is None:
            problems.append(f"missing phase {phase!r}")
        elif not bucket.get("spans"):
            problems.append(f"phase {phase!r} recorded no spans")
    metrics = document.get("metrics", {})
    for key in ("counters", "gauges", "histograms"):
        if not isinstance(metrics.get(key), dict):
            problems.append(f"metrics.{key} must be a dict")

    def check_span(node: Any, path: str) -> None:
        if not isinstance(node, dict):
            problems.append(f"span at {path} is not an object")
            return
        for key in ("name", "duration_ms", "attributes", "events", "children"):
            if key not in node:
                problems.append(f"span at {path} missing {key!r}")
        for index, child in enumerate(node.get("children", ())):
            check_span(child, f"{path}.{index}")

    for index, node in enumerate(document.get("spans", ())):
        check_span(node, f"spans[{index}]")

    events = document.get("events", [])
    if not isinstance(events, list):
        problems.append("events must be a list")
    else:
        for index, node in enumerate(events):
            if not isinstance(node, dict):
                problems.append(f"events[{index}] is not an object")
                continue
            for key in ("seq", "kind", "correlation_id", "tick", "attributes"):
                if key not in node:
                    problems.append(f"events[{index}] missing {key!r}")
    return problems


def dump_json(data: Any, target: Union[str, IO[str]], indent: int = 2) -> None:
    """Write any serialized document to a path or open file handle."""
    if isinstance(target, str):
        with open(target, "w") as handle:
            json.dump(jsonable(data), handle, indent=indent)
            handle.write("\n")
    else:
        json.dump(jsonable(data), target, indent=indent)
        target.write("\n")
