"""Flight recorder: a bounded, deterministic structured-event journal.

Spans answer "where did the time go"; the journal answers "what
*happened*, in what order, and on whose behalf".  Every entry is a
:class:`JournalEvent` — a monotonically numbered, structured record on
the pipeline's *logical* tick clock (never the wall clock, so a fixed
seed reproduces the exact event stream bit-identically) — and events
belonging to one request, refresh, or redesign share a **correlation
id**, threading the story of a single operation across subsystems::

    with obs.correlation("refresh") as cid:
        obs.journal_event("resilience.refresh.begin", view="mv_tmp3")
        ...
        obs.journal_event("resilience.epoch.advance", epoch=2)

    refresh = obs.journal().find(correlation_id=cid)

The journal is **bounded**: a ring buffer of ``capacity`` events keeps
memory constant on long-running simulations, and :attr:`EventJournal.
dropped` counts evictions so truncation is never silent.  Export is
JSONL (one event per line, ``repro trace --events``) or embedded in the
profile document (``events``; see :mod:`repro.obs.export`).

Like every other ``repro.obs`` surface, the disabled mode
(:class:`NoopJournal`) costs one method call per instrumentation point.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, IO, Iterator, List, Optional, Union

__all__ = [
    "DEFAULT_CAPACITY",
    "EventJournal",
    "JournalEvent",
    "NoopJournal",
]

#: Ring-buffer bound: events beyond this evict the oldest (counted in
#: :attr:`EventJournal.dropped`).
DEFAULT_CAPACITY = 4096


@dataclass(frozen=True)
class JournalEvent:
    """One structured flight-recorder entry.

    ``seq`` is a per-journal monotonic sequence number (total order even
    when ``tick`` stands still); ``tick`` is the logical-clock reading
    supplied by the instrumentation point (``None`` outside any clock);
    ``correlation_id`` groups the events of one logical operation
    (empty when recorded outside any :meth:`EventJournal.correlation`
    scope).
    """

    seq: int
    kind: str
    correlation_id: str = ""
    tick: Optional[float] = None
    attributes: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        from repro.obs.export import jsonable

        return {
            "seq": self.seq,
            "kind": self.kind,
            "correlation_id": self.correlation_id,
            "tick": self.tick,
            "attributes": jsonable(self.attributes),
        }

    def matches(
        self,
        kind: Optional[str] = None,
        correlation_id: Optional[str] = None,
        **attributes: Any,
    ) -> bool:
        """Whether this event satisfies every given filter.

        ``kind`` may be exact (``"resilience.refresh.begin"``) or a
        prefix ending in ``.`` (``"resilience."`` matches the whole
        subsystem).
        """
        if kind is not None:
            if kind.endswith("."):
                if not self.kind.startswith(kind):
                    return False
            elif self.kind != kind:
                return False
        if correlation_id is not None and self.correlation_id != correlation_id:
            return False
        for key, value in attributes.items():
            if self.attributes.get(key) != value:
                return False
        return True


class _NoopCorrelation:
    """Shared disabled-mode correlation scope (yields the empty id)."""

    __slots__ = ()

    def __enter__(self) -> str:
        return ""

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NOOP_CORRELATION = _NoopCorrelation()


class EventJournal:
    """Collects :class:`JournalEvent` records into a bounded ring buffer.

    Thread-safe: the buffer and sequence counter are lock-protected, and
    the correlation-scope stack is thread-local (each thread narrates
    its own operation).  Correlation ids are issued deterministically —
    ``"<scope>-<n>"`` from a per-journal counter — so a seeded run
    produces the same ids every time.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError(f"journal capacity must be >= 1: {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._events: "deque[JournalEvent]" = deque(maxlen=capacity)
        self._seq = 0
        self._correlations = 0
        self.dropped = 0
        self._local = threading.local()

    # ------------------------------------------------------------- recording
    def record(
        self,
        kind: str,
        correlation_id: Optional[str] = None,
        tick: Optional[float] = None,
        **attributes: Any,
    ) -> JournalEvent:
        """Append one event; inherits the current correlation scope."""
        if correlation_id is None:
            correlation_id = self.current_correlation()
        with self._lock:
            self._seq += 1
            if len(self._events) == self.capacity:
                self.dropped += 1
            event = JournalEvent(
                seq=self._seq,
                kind=kind,
                correlation_id=correlation_id,
                tick=tick,
                attributes=dict(attributes),
            )
            self._events.append(event)
        return event

    # ----------------------------------------------------------- correlation
    def _stack(self) -> List[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current_correlation(self) -> str:
        """The innermost correlation id on this thread ("" outside any)."""
        stack = self._stack()
        return stack[-1] if stack else ""

    @contextmanager
    def correlation(
        self, scope: str = "corr", correlation_id: Optional[str] = None
    ) -> Iterator[str]:
        """Open a correlation scope; events inside inherit its id.

        Scopes nest (the innermost wins), and a caller-supplied
        ``correlation_id`` joins an existing story instead of opening a
        new one — e.g. a refresh triggered by a migration records under
        the migration's id.
        """
        if correlation_id is None:
            with self._lock:
                self._correlations += 1
                correlation_id = f"{scope}-{self._correlations}"
        stack = self._stack()
        stack.append(correlation_id)
        try:
            yield correlation_id
        finally:
            if stack and stack[-1] == correlation_id:
                stack.pop()
            else:  # tolerate mis-nested exits rather than corrupt the stack
                try:
                    stack.remove(correlation_id)
                except ValueError:
                    pass

    # ------------------------------------------------------------ inspection
    @property
    def events(self) -> List[JournalEvent]:
        """Every retained event, oldest first."""
        with self._lock:
            return list(self._events)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def find(
        self,
        kind: Optional[str] = None,
        correlation_id: Optional[str] = None,
        **attributes: Any,
    ) -> List[JournalEvent]:
        """Retained events matching every filter (see
        :meth:`JournalEvent.matches`), oldest first."""
        return [
            event
            for event in self.events
            if event.matches(kind=kind, correlation_id=correlation_id, **attributes)
        ]

    def correlation_ids(self) -> List[str]:
        """Distinct non-empty correlation ids, in first-seen order."""
        return list(
            dict.fromkeys(
                event.correlation_id
                for event in self.events
                if event.correlation_id
            )
        )

    # --------------------------------------------------------------- exports
    def to_list(self) -> List[Dict[str, Any]]:
        return [event.to_dict() for event in self.events]

    def to_jsonl(self) -> str:
        """One compact JSON object per line (trailing newline when any)."""
        lines = [
            json.dumps(event.to_dict(), separators=(",", ":"))
            for event in self.events
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def dump_jsonl(self, target: Union[str, IO[str]]) -> None:
        """Write the JSONL exposition to a path or open file handle."""
        text = self.to_jsonl()
        if isinstance(target, str):
            with open(target, "w") as handle:
                handle.write(text)
        else:
            target.write(text)

    def reset(self) -> None:
        """Drop retained events; sequence and correlation counters keep
        counting so ids never repeat within one enabled session."""
        with self._lock:
            self._events.clear()
            self.dropped = 0
        self._local = threading.local()


class NoopJournal(EventJournal):
    """Disabled mode: recording does nothing, scopes yield the empty id."""

    def record(
        self,
        kind: str,
        correlation_id: Optional[str] = None,
        tick: Optional[float] = None,
        **attributes: Any,
    ) -> None:  # type: ignore[override]
        return None

    def correlation(
        self, scope: str = "corr", correlation_id: Optional[str] = None
    ) -> _NoopCorrelation:  # type: ignore[override]
        return _NOOP_CORRELATION

    def current_correlation(self) -> str:
        return ""

    def find(
        self,
        kind: Optional[str] = None,
        correlation_id: Optional[str] = None,
        **attributes: Any,
    ) -> List[JournalEvent]:
        return []
