"""The macro-benchmark harness behind ``repro bench --suite macro``.

One run sweeps the whole lifecycle — design, load, scaled Table-2 query
sweep, resilient refresh, adaptive drift replay — and emits a
schema-versioned document (committed as ``BENCH_macro.json`` at the repo
root) recording wall-ms per phase, block I/O per phase, latency
quantiles from the existing obs histograms, the calibration summary,
and the full metrics snapshot.  :func:`compare_bench` gates a fresh run
against the committed document with a tolerance, so CI fails when a
phase regresses.

Smoke mode (``REPRO_BENCH_SMOKE`` or ``MacroConfig.smoke``) zeroes the
wall-clock readings: everything left in the document is a deterministic
function of the seed (logical block I/O, tick clocks, counts), so
regenerating the file in smoke mode is bit-compatible with the
committed one — the property the CI gate and
``tests/obs/test_macro.py`` rely on.

This module lives under ``repro/obs/`` deliberately: benchmark timing
is the one place the codebase may read the wall clock (the same C104
lint exemption the rest of the observability layer uses).
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional

from repro import obs

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "MacroConfig",
    "compare_bench",
    "run_macro",
    "smoke_mode",
    "validate_bench",
]

BENCH_SCHEMA_VERSION = 1

#: Phases the macro suite reports, in execution order.
MACRO_PHASES = ("design", "load", "queries", "refresh", "drift")

#: Histogram-name prefixes exported into the document's latency section.
_LATENCY_PREFIXES = (
    "executor.query_io",
    "resilience.refresh.ticks",
    "maintenance.io",
)

#: Default headroom before a phase counts as regressed.
DEFAULT_TOLERANCE = 0.25

ENV_SMOKE = "REPRO_BENCH_SMOKE"


def smoke_mode() -> bool:
    """Whether ``REPRO_BENCH_SMOKE`` requests the deterministic mode."""
    return os.environ.get(ENV_SMOKE, "") not in ("", "0")


@dataclass(frozen=True)
class MacroConfig:
    """Knobs for one macro-suite run."""

    workload: str = "paper"
    scale: float = 0.01
    repeats: int = 3  # query-sweep repetitions
    windows: int = 4  # drift-replay observation windows
    seed: int = 0
    smoke: bool = False
    engine: Optional[str] = None  # None = the warehouse default

    def validate(self) -> None:
        if self.scale <= 0:
            raise ValueError(f"scale must be positive: {self.scale}")
        if self.repeats < 1:
            raise ValueError(f"repeats must be >= 1: {self.repeats}")
        if self.windows < 2:
            raise ValueError(f"windows must be >= 2: {self.windows}")
        if self.engine is not None:
            from repro.executor.engine import ENGINES

            if self.engine not in ENGINES:
                raise ValueError(
                    f"unknown execution engine {self.engine!r}; "
                    f"expected one of {ENGINES}"
                )


def _workload_rows(name: str, scale: float, seed: int):
    """A built-in workload plus synthetic rows at ``scale``."""
    from repro.workload import (
        GeneratorConfig,
        StarConfig,
        generate_workload,
        paper_workload,
        paper_workload_fig7,
        star_workload,
    )
    from repro.workload.datagen import paper_rows, star_rows, synthetic_rows

    if name == "paper":
        return paper_workload(), paper_rows(scale=scale, seed=seed)
    if name == "paper-fig7":
        return paper_workload_fig7(), paper_rows(scale=scale, seed=seed)
    if name == "star":
        config = StarConfig(seed=seed)
        return star_workload(config), star_rows(config, scale=scale, seed=seed)
    if name == "synthetic":
        generated = generate_workload(GeneratorConfig(seed=seed))
        return generated.workload, synthetic_rows(
            generated, scale=scale, seed=seed
        )
    raise ValueError(f"unknown macro workload {name!r}")


class _PhaseRecorder:
    """Accumulates per-phase wall time, I/O deltas, and counts."""

    def __init__(self, database, smoke: bool):
        self._database = database
        self._smoke = smoke
        self.phases: Dict[str, Dict[str, float]] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[Dict[str, float]]:
        bucket: Dict[str, float] = {"wall_ms": 0.0, "io_blocks": 0.0}
        before = self._database.io.snapshot()
        started = 0.0 if self._smoke else time.perf_counter()
        yield bucket
        if not self._smoke:
            bucket["wall_ms"] = round(
                (time.perf_counter() - started) * 1000, 3
            )
        bucket["io_blocks"] = float(self._database.io.since(before).total)
        self.phases[name] = bucket


def run_macro(config: Optional[MacroConfig] = None) -> Dict[str, Any]:
    """Run the full macro suite and return its benchmark document."""
    from repro.adaptive import simulation_policy
    from repro.mvpp.config import DesignConfig
    from repro.warehouse import DataWarehouse

    config = config or MacroConfig()
    config.validate()
    smoke = config.smoke or smoke_mode()

    was_enabled = obs.enabled()
    obs.enable(reset=True)
    try:
        workload, rows = _workload_rows(
            config.workload, config.scale, config.seed
        )
        engine_kwargs = (
            {} if config.engine is None else {"engine": config.engine}
        )
        warehouse = DataWarehouse.from_workload(workload, **engine_kwargs)
        recorder = _PhaseRecorder(warehouse.database, smoke)

        # Replay pacing mirrors `repro adapt`: one event per unit of
        # design-time frequency, hot set inverted in the second half.
        base_counts = {
            spec.name: max(1, int(round(spec.frequency)))
            for spec in workload.queries
        }
        updates = sorted(workload.update_frequencies)
        expected_events = sum(base_counts.values()) + len(updates)
        policy = simulation_policy(float(expected_events))

        with recorder.phase("design") as bucket:
            result = warehouse.design(
                DesignConfig(seed=config.seed, adaptive=policy)
            )
            bucket["views"] = float(len(warehouse.views))
            bucket["vertices"] = float(len(result.mvpp))

        with recorder.phase("load") as bucket:
            loaded = 0
            for relation, relation_rows in sorted(rows.items()):
                warehouse.load(relation, relation_rows)
                loaded += len(relation_rows)
            warehouse.materialize()
            bucket["rows"] = float(loaded)

        with recorder.phase("queries") as bucket:
            executed = 0
            for _ in range(config.repeats):
                for spec in workload.queries:
                    warehouse.execute(spec.name)
                    executed += 1
            bucket["executed"] = float(executed)

        with recorder.phase("refresh") as bucket:
            target = max(
                rows,
                key=lambda name: (workload.update_frequency(name), name),
            )
            delta = rows[target][: max(1, len(rows[target]) // 100)]
            warehouse.apply_update(target, delta, policy="defer")
            outcomes = warehouse.refresh_resilient()
            bucket["refreshed"] = float(sum(1 for o in outcomes if o.ok))
            bucket["failed"] = float(sum(1 for o in outcomes if not o.ok))

        with recorder.phase("drift") as bucket:
            controller = warehouse.controller()
            ranked = sorted(
                base_counts, key=lambda name: (base_counts[name], name)
            )
            drifted_counts = {
                name: base_counts[other]
                for name, other in zip(ranked, reversed(ranked))
            }
            switch = config.windows // 2
            accepted = 0
            for window in range(config.windows):
                counts = drifted_counts if window >= switch else base_counts
                for name in sorted(counts):
                    for _ in range(counts[name]):
                        controller.note_query(name, 1.0)
                for relation in updates:
                    controller.note_update(relation, 1.0)
                decision = controller.evaluate()
                accepted += 1 if decision.accepted else 0
            bucket["decisions"] = float(config.windows)
            bucket["accepted"] = float(accepted)

        metrics = obs.metrics().to_dict()
        latency = {
            name: summary
            for name, summary in sorted(metrics["histograms"].items())
            if name.startswith(_LATENCY_PREFIXES)
        }
        from repro.obs.calibration import calibration_report

        report = calibration_report(obs.calibration().samples)
        journal = obs.journal()
        document: Dict[str, Any] = {
            "schema": BENCH_SCHEMA_VERSION,
            "suite": "macro",
            "workload": workload.name,
            "config": {
                "scale": config.scale,
                "repeats": config.repeats,
                "windows": config.windows,
                "seed": config.seed,
                "engine": config.engine or warehouse.engine.engine,
            },
            "smoke": smoke,
            "phases": recorder.phases,
            "latency": latency,
            "calibration": {
                "samples": report.samples,
                "mean_relative_error": round(report.mean_relative_error, 6),
                "worst": [entry.to_dict() for entry in report.worst(5)],
            },
            "journal": {
                "events": len(journal),
                "correlations": len(journal.correlation_ids()),
                "dropped": journal.dropped,
            },
            "metrics": metrics,
        }
        return document
    finally:
        if not was_enabled:
            obs.disable()


def validate_bench(document: Dict[str, Any]) -> List[str]:
    """Schema check for a macro-bench document (empty list = ok)."""
    problems: List[str] = []
    if document.get("schema") != BENCH_SCHEMA_VERSION:
        problems.append(
            f"schema must be {BENCH_SCHEMA_VERSION}: "
            f"{document.get('schema')!r}"
        )
    for key in (
        "suite", "workload", "config", "smoke", "phases", "latency",
        "calibration", "journal", "metrics",
    ):
        if key not in document:
            problems.append(f"missing top-level key {key!r}")
    phases = document.get("phases", {})
    for name in MACRO_PHASES:
        bucket = phases.get(name)
        if not isinstance(bucket, dict):
            problems.append(f"missing phase {name!r}")
            continue
        for key in ("wall_ms", "io_blocks"):
            if key not in bucket:
                problems.append(f"phase {name!r} missing {key!r}")
    calibration = document.get("calibration", {})
    if isinstance(calibration, dict):
        for key in ("samples", "mean_relative_error", "worst"):
            if key not in calibration:
                problems.append(f"calibration missing {key!r}")
    return problems


def compare_bench(
    baseline: Dict[str, Any],
    current: Dict[str, Any],
    tolerance: float = DEFAULT_TOLERANCE,
) -> List[str]:
    """Regressions of ``current`` against ``baseline`` (empty = pass).

    Block I/O per phase is deterministic and compared always; wall time
    is compared only when *both* documents carry real timings (neither
    ran in smoke mode), since smoke runs record ``wall_ms = 0``.
    """
    if tolerance < 0:
        raise ValueError(f"tolerance must be >= 0: {tolerance}")
    regressions: List[str] = []
    if baseline.get("schema") != current.get("schema"):
        regressions.append(
            f"schema changed: {baseline.get('schema')!r} -> "
            f"{current.get('schema')!r}"
        )
        return regressions
    compare_wall = not baseline.get("smoke") and not current.get("smoke")
    for name, base_bucket in sorted(baseline.get("phases", {}).items()):
        cur_bucket = current.get("phases", {}).get(name)
        if cur_bucket is None:
            regressions.append(f"phase {name!r} disappeared")
            continue
        base_io = float(base_bucket.get("io_blocks", 0.0))
        cur_io = float(cur_bucket.get("io_blocks", 0.0))
        if cur_io > base_io * (1.0 + tolerance) + 1.0:
            regressions.append(
                f"phase {name!r} io_blocks regressed: "
                f"{base_io:g} -> {cur_io:g} (tolerance {tolerance:.0%})"
            )
        if compare_wall:
            base_wall = float(base_bucket.get("wall_ms", 0.0))
            cur_wall = float(cur_bucket.get("wall_ms", 0.0))
            if base_wall > 0 and cur_wall > base_wall * (1.0 + tolerance):
                regressions.append(
                    f"phase {name!r} wall_ms regressed: "
                    f"{base_wall:g} -> {cur_wall:g} "
                    f"(tolerance {tolerance:.0%})"
                )
    return regressions
