"""Counters, gauges, and histograms for the MVPP pipeline.

The registry hands out metric instruments keyed by name plus optional
labels::

    registry.counter("executor.blocks_read").inc(12)
    registry.counter("executor.rows_produced", operator="join").inc(n)
    registry.histogram("maintenance.io", policy="incremental").observe(io)

Instruments are cached, so repeated lookups return the same object;
creation and lookup are lock-protected (instrument updates themselves
rely on the GIL, matching the single-writer usage in the executor).

Two export formats are supported: a JSON-safe dict (:meth:`to_dict`)
and a Prometheus-style text exposition (:meth:`to_prometheus`) in which
histograms are rendered as summaries with p50/p95/p99 quantiles.

:class:`NoopMetricsRegistry` is the disabled mode: it returns shared
singleton instruments whose mutators do nothing.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NoopMetricsRegistry",
]

LabelKey = Tuple[Tuple[str, str], ...]

#: The quantiles every histogram reports.
QUANTILES = (0.5, 0.95, 0.99)


def _percentile(ordered: List[float], q: float) -> float:
    """Linear-interpolation percentile of an already-sorted sample."""
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    lower = math.floor(position)
    upper = math.ceil(position)
    if lower == upper:
        return ordered[lower]
    fraction = position - lower
    return ordered[lower] * (1 - fraction) + ordered[upper] * fraction


class Counter:
    """A monotonically increasing count (blocks read, reuse hits, ...)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey = ()):
        self.name = name
        self.labels = labels
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0: {amount}")
        self.value += amount


class Gauge:
    """A point-in-time value that can move both ways (drift ratio, ...)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey = ()):
        self.name = name
        self.labels = labels
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, amount: float) -> None:
        self.value = (self.value or 0.0) + amount


class Histogram:
    """A sample distribution summarized as count/sum/min/max/quantiles."""

    __slots__ = ("name", "labels", "_values")

    def __init__(self, name: str, labels: LabelKey = ()):
        self.name = name
        self.labels = labels
        self._values: List[float] = []

    def observe(self, value: float) -> None:
        self._values.append(float(value))

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def sum(self) -> float:
        return sum(self._values)

    def percentile(self, q: float) -> float:
        """The q-th percentile (q in [0, 1]) by linear interpolation."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1]: {q}")
        return _percentile(sorted(self._values), q)

    def summary(self) -> Dict[str, float]:
        ordered = sorted(self._values)
        if not ordered:
            return {"count": 0, "sum": 0.0}
        out: Dict[str, float] = {
            "count": len(ordered),
            "sum": sum(ordered),
            "min": ordered[0],
            "max": ordered[-1],
            "mean": sum(ordered) / len(ordered),
        }
        for q in QUANTILES:
            out[f"p{int(q * 100)}"] = _percentile(ordered, q)
        return out


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _prom_name(name: str) -> str:
    return name.replace(".", "_").replace("-", "_")


def _escape_label_value(value: str) -> str:
    """Prometheus text-exposition escaping: backslash, quote, newline."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _prom_labels(labels: LabelKey, extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    pairs = labels + extra
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in pairs)
    return "{" + body + "}"


class MetricsRegistry:
    """Creates, caches, and exports metric instruments."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[Tuple[str, LabelKey], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelKey], Histogram] = {}

    def counter(self, name: str, **labels: Any) -> Counter:
        key = (name, _label_key(labels))
        instrument = self._counters.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._counters.setdefault(key, Counter(*key))
        return instrument

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = (name, _label_key(labels))
        instrument = self._gauges.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._gauges.setdefault(key, Gauge(*key))
        return instrument

    def histogram(self, name: str, **labels: Any) -> Histogram:
        key = (name, _label_key(labels))
        instrument = self._histograms.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._histograms.setdefault(key, Histogram(*key))
        return instrument

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    # -------------------------------------------------------------- exports
    @staticmethod
    def _series_name(name: str, labels: LabelKey) -> str:
        if not labels:
            return name
        body = ",".join(f"{k}={v}" for k, v in labels)
        return f"{name}{{{body}}}"

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe snapshot: ``{"counters": ..., "gauges": ..., ...}``."""
        with self._lock:
            counters = list(self._counters.values())
            gauges = list(self._gauges.values())
            histograms = list(self._histograms.values())
        return {
            "counters": {
                self._series_name(c.name, c.labels): c.value for c in counters
            },
            "gauges": {
                self._series_name(g.name, g.labels): g.value for g in gauges
            },
            "histograms": {
                self._series_name(h.name, h.labels): h.summary()
                for h in histograms
            },
        }

    def to_prometheus(self) -> str:
        """Prometheus-style text exposition (histograms as summaries)."""
        lines: List[str] = []
        with self._lock:
            counters = sorted(
                self._counters.values(), key=lambda c: (c.name, c.labels)
            )
            gauges = sorted(
                self._gauges.values(), key=lambda g: (g.name, g.labels)
            )
            histograms = sorted(
                self._histograms.values(), key=lambda h: (h.name, h.labels)
            )
        seen_types: set = set()
        for counter in counters:
            name = _prom_name(counter.name)
            if name not in seen_types:
                lines.append(f"# TYPE {name} counter")
                seen_types.add(name)
            lines.append(
                f"{name}{_prom_labels(counter.labels)} {counter.value:g}"
            )
        for gauge in gauges:
            name = _prom_name(gauge.name)
            if name not in seen_types:
                lines.append(f"# TYPE {name} gauge")
                seen_types.add(name)
            value = gauge.value if gauge.value is not None else float("nan")
            lines.append(f"{name}{_prom_labels(gauge.labels)} {value:g}")
        for histogram in histograms:
            name = _prom_name(histogram.name)
            if name not in seen_types:
                lines.append(f"# TYPE {name} summary")
                seen_types.add(name)
            for q in QUANTILES:
                lines.append(
                    f"{name}"
                    f"{_prom_labels(histogram.labels, (('quantile', str(q)),))}"
                    f" {histogram.percentile(q):g}"
                )
            lines.append(
                f"{name}_count{_prom_labels(histogram.labels)} "
                f"{histogram.count}"
            )
            lines.append(
                f"{name}_sum{_prom_labels(histogram.labels)} "
                f"{histogram.sum:g}"
            )
        return "\n".join(lines) + ("\n" if lines else "")


class _NoopCounter(Counter):
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        return None


class _NoopGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        return None

    def add(self, amount: float) -> None:
        return None


class _NoopHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        return None


_NOOP_COUNTER = _NoopCounter("noop")
_NOOP_GAUGE = _NoopGauge("noop")
_NOOP_HISTOGRAM = _NoopHistogram("noop")


class NoopMetricsRegistry(MetricsRegistry):
    """Disabled mode: shared do-nothing instruments, empty exports."""

    def counter(self, name: str, **labels: Any) -> Counter:
        return _NOOP_COUNTER

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return _NOOP_GAUGE

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return _NOOP_HISTOGRAM
