"""Span-based tracing for the MVPP pipeline.

A :class:`Span` records one timed region of the pipeline — a Figure-4
merge, a Figure-9 selection run, a query execution — with structured
attributes and point-in-time events.  Spans nest: entering a span inside
another makes it a child, so one ``repro profile`` run yields a tree
whose roots are the pipeline phases.

The :class:`Tracer` is a context-manager factory::

    with tracer.span("selection.figure9", mvpp=mvpp.name) as span:
        ...
        span.event("decision", vertex="tmp2", decision="materialize")

Collection is thread-safe: the active-span stack is thread-local (each
thread builds its own subtree) and the finished-roots list is guarded by
a lock.  :class:`NoopTracer` provides the disabled mode: ``span()``
returns a shared singleton whose every method is a no-op, so
instrumented code pays only one method call when tracing is off.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Any, Dict, List, Optional

__all__ = ["Span", "Tracer", "NoopSpan", "NoopTracer", "NOOP_SPAN"]

_span_ids = itertools.count(1)


class Span:
    """One timed, attributed region; may contain child spans and events."""

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "attributes",
        "events",
        "start",
        "end",
        "children",
        "_tracer",
    )

    def __init__(
        self,
        name: str,
        tracer: "Tracer",
        parent_id: Optional[int] = None,
        attributes: Optional[Dict[str, Any]] = None,
    ):
        self.name = name
        self.span_id = next(_span_ids)
        self.parent_id = parent_id
        self.attributes: Dict[str, Any] = dict(attributes or {})
        self.events: List[Dict[str, Any]] = []
        self.children: List["Span"] = []
        self.start: float = 0.0
        self.end: Optional[float] = None
        self._tracer = tracer

    # ------------------------------------------------------------- recording
    def set(self, **attributes: Any) -> "Span":
        """Attach (or overwrite) structured attributes."""
        self.attributes.update(attributes)
        return self

    def event(self, name: str, **attributes: Any) -> "Span":
        """Record a point-in-time event inside this span."""
        self.events.append(
            {"name": name, "time": time.perf_counter(), **attributes}
        )
        return self

    # ------------------------------------------------------------ lifecycle
    def __enter__(self) -> "Span":
        self.start = time.perf_counter()
        self._tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end = time.perf_counter()
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        self._tracer._pop(self)
        return False

    # ------------------------------------------------------------ inspection
    @property
    def duration(self) -> float:
        """Wall-clock seconds (up to *now* for a still-open span)."""
        end = self.end if self.end is not None else time.perf_counter()
        return max(0.0, end - self.start)

    def find(self, name: str) -> List["Span"]:
        """All descendant spans (including self) with the given name."""
        found = [self] if self.name == name else []
        for child in self.children:
            found.extend(child.find(name))
        return found

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, {self.duration * 1000:.3f}ms, "
            f"children={len(self.children)})"
        )


class Tracer:
    """Collects spans into per-thread trees; finished roots are shared."""

    def __init__(self) -> None:
        self._local = threading.local()
        self._lock = threading.Lock()
        self._roots: List[Span] = []

    # ------------------------------------------------------------ span stack
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **attributes: Any) -> Span:
        """A new span; use as a context manager to time a region."""
        stack = self._stack()
        parent_id = stack[-1].span_id if stack else None
        return Span(name, self, parent_id=parent_id, attributes=attributes)

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span on this thread (None outside any)."""
        stack = self._stack()
        return stack[-1] if stack else None

    def event(self, name: str, **attributes: Any) -> None:
        """Record an event on the current span (dropped when outside one)."""
        current = self.current
        if current is not None:
            current.event(name, **attributes)

    def _push(self, span: Span) -> None:
        stack = self._stack()
        if stack:
            stack[-1].children.append(span)
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        else:  # tolerate mis-nested exits rather than corrupt the tree
            try:
                stack.remove(span)
            except ValueError:
                pass
        if span.parent_id is None:
            with self._lock:
                self._roots.append(span)

    # ------------------------------------------------------------ collection
    def finished(self) -> List[Span]:
        """Completed root spans, in completion order."""
        with self._lock:
            return list(self._roots)

    def reset(self) -> None:
        with self._lock:
            self._roots.clear()
        self._local = threading.local()

    def find(self, name: str) -> List[Span]:
        """All finished spans (at any depth) with the given name."""
        found: List[Span] = []
        for root in self.finished():
            found.extend(root.find(name))
        return found


class NoopSpan:
    """The shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def set(self, **attributes: Any) -> "NoopSpan":
        return self

    def event(self, name: str, **attributes: Any) -> "NoopSpan":
        return self

    def __enter__(self) -> "NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NOOP_SPAN = NoopSpan()


class NoopTracer:
    """Disabled-mode tracer: every ``span()`` is the shared no-op span."""

    def span(self, name: str, **attributes: Any) -> NoopSpan:
        return NOOP_SPAN

    @property
    def current(self) -> None:
        return None

    def event(self, name: str, **attributes: Any) -> None:
        return None

    def finished(self) -> List[Span]:
        return []

    def find(self, name: str) -> List[Span]:
        return []

    def reset(self) -> None:
        return None
