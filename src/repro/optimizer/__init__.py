"""Cost-based single-query optimization: estimation, costing, join order."""

from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.cost_model import (
    DEFAULT_COST_MODEL,
    CostModel,
    HashJoinCostModel,
    NestedLoopCostModel,
    SortMergeCostModel,
)
from repro.optimizer.heuristics import annotate, optimize_query
from repro.optimizer.join_order import MAX_DP_RELATIONS, best_join_tree
from repro.optimizer.plans import AnnotatedPlan, NodeCost

__all__ = [
    "AnnotatedPlan",
    "CardinalityEstimator",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "HashJoinCostModel",
    "MAX_DP_RELATIONS",
    "NestedLoopCostModel",
    "NodeCost",
    "SortMergeCostModel",
    "annotate",
    "best_join_tree",
    "optimize_query",
]
