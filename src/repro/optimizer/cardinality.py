"""Cardinality and selectivity estimation.

Follows the paper's statistical framework (Table 1): base relations carry
``(cardinality, blocks)``; selections scale by a selectivity ``s``; joins
scale by a join selectivity ``js`` with ``|R ⋈ S| = js · |R| · |S|``.

Explicitly registered selectivities (the paper's route) take precedence;
otherwise System-R-style defaults derived from column statistics are used,
so synthetic workloads do not need hand-written numbers.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.algebra.expressions import (
    And,
    ColumnRef,
    Comparison,
    Expression,
    Literal,
    Not,
    Or,
)
from repro.algebra.operators import (
    Aggregate,
    Join,
    Limit,
    Operator,
    Project,
    Relation,
    Select,
    Sort,
)
from repro.catalog.statistics import (
    DEFAULT_RANGE_SELECTIVITY,
    DEFAULT_SELECTION_SELECTIVITY,
    RelationStatistics,
    StatisticsCatalog,
    blocks_for,
)
from repro.errors import OptimizerError


class CardinalityEstimator:
    """Estimates output statistics for every node of an operator tree.

    Estimates are memoized by node signature, so equal subtrees across
    different plans (the MVPP's shared nodes) are estimated once and
    consistently.
    """

    def __init__(self, statistics: StatisticsCatalog):
        self._statistics = statistics
        self._cache: Dict[str, RelationStatistics] = {}

    @property
    def statistics(self) -> StatisticsCatalog:
        return self._statistics

    # ------------------------------------------------------------- relations
    def estimate(self, node: Operator) -> RelationStatistics:
        """Estimated (cardinality, blocks) of ``node``'s output."""
        cached = self._cache.get(node.signature)
        if cached is not None:
            return cached
        stats = self._estimate_uncached(node)
        self._cache[node.signature] = stats
        return stats

    def _estimate_uncached(self, node: Operator) -> RelationStatistics:
        if isinstance(node, Relation):
            return self._statistics.relation(node.name)
        if isinstance(node, Select):
            child = self.estimate(node.child)
            return child.scaled(self.selectivity(node.predicate))
        if isinstance(node, Project):
            child = self.estimate(node.child)
            # Narrower tuples pack more per block: scale block count by the
            # kept fraction of attributes (cardinality is unchanged — bag
            # semantics, no duplicate elimination, as in the paper).
            child_arity = max(1, node.child.schema.arity)
            fraction = len(node.attributes) / child_arity
            blocks = blocks_for(
                child.cardinality,
                child.blocking_factor / max(fraction, 1e-9),
            )
            return RelationStatistics(child.cardinality, blocks)
        if isinstance(node, Join):
            return self._estimate_join(node)
        if isinstance(node, Aggregate):
            return self._estimate_aggregate(node)
        if isinstance(node, Sort):
            return self.estimate(node.child)
        if isinstance(node, Limit):
            child = self.estimate(node.child)
            kept = min(child.cardinality, node.count)
            return RelationStatistics(
                kept, blocks_for(kept, child.blocking_factor)
            )
        raise OptimizerError(f"cannot estimate operator {type(node).__name__}")

    def _estimate_join(self, node: Join) -> RelationStatistics:
        left = self.estimate(node.left)
        right = self.estimate(node.right)
        cardinality = left.cardinality * right.cardinality
        selectivity = 1.0
        if node.condition is not None:
            selectivity = self._join_condition_selectivity(node.condition)
        cardinality = int(round(cardinality * selectivity))
        # Joined tuples are wider: records-per-block combine harmonically
        # (tuple widths add, block size is fixed).
        bf_left, bf_right = left.blocking_factor, right.blocking_factor
        bf_join = 1.0 / (1.0 / max(bf_left, 1e-9) + 1.0 / max(bf_right, 1e-9))
        return RelationStatistics(cardinality, blocks_for(cardinality, bf_join))

    def _estimate_aggregate(self, node: Aggregate) -> RelationStatistics:
        child = self.estimate(node.child)
        if not node.group_by:
            groups = min(child.cardinality, 1)
        else:
            distinct_product = 1
            for key in node.group_by:
                column = self._statistics.column(key)
                # Without statistics assume a tenth of the input per key —
                # grouping rarely keeps full cardinality.
                distinct_product *= (
                    column.distinct_values
                    if column is not None
                    else max(1, child.cardinality // 10)
                )
                if distinct_product > child.cardinality:
                    break
            groups = min(child.cardinality, distinct_product)
        blocks = blocks_for(groups, child.blocking_factor)
        return RelationStatistics(groups, blocks)

    def _join_condition_selectivity(self, condition: Expression) -> float:
        """Selectivity of a join condition (conjunction of predicates)."""
        if isinstance(condition, And):
            out = 1.0
            for part in condition.children:
                out *= self._join_condition_selectivity(part)
            return out
        if isinstance(condition, Comparison) and condition.is_equijoin:
            return self._equijoin_selectivity(condition)
        return self.selectivity(condition)

    def _equijoin_selectivity(self, predicate: Comparison) -> float:
        left = predicate.left.name  # type: ignore[union-attr]
        right = predicate.right.name  # type: ignore[union-attr]
        explicit = self._statistics.join_selectivity(left, right)
        if explicit is not None:
            return explicit
        # Pinned predicate selectivity (by signature) is also honoured.
        pinned = self._statistics.predicate_selectivity(predicate.signature)
        if pinned is not None:
            return pinned
        derived = self._statistics.default_join_selectivity(left, right)
        if derived is not None:
            return derived
        return DEFAULT_SELECTION_SELECTIVITY

    # ----------------------------------------------------------- selectivity
    def selectivity(self, predicate: Optional[Expression]) -> float:
        """Fraction of tuples satisfying ``predicate`` (1.0 for TRUE)."""
        if predicate is None:
            return 1.0
        pinned = self._statistics.predicate_selectivity(predicate.signature)
        if pinned is not None:
            return pinned
        if isinstance(predicate, And):
            out = 1.0
            for part in predicate.children:
                out *= self.selectivity(part)
            return out
        if isinstance(predicate, Or):
            miss = 1.0
            for part in predicate.children:
                miss *= 1.0 - self.selectivity(part)
            return 1.0 - miss
        if isinstance(predicate, Not):
            return max(0.0, 1.0 - self.selectivity(predicate.operand))
        if isinstance(predicate, Comparison):
            return self._comparison_selectivity(predicate)
        return DEFAULT_SELECTION_SELECTIVITY

    def _comparison_selectivity(self, predicate: Comparison) -> float:
        if predicate.is_equijoin:
            return self._equijoin_selectivity(predicate)
        if not isinstance(predicate.left, ColumnRef) or not isinstance(
            predicate.right, Literal
        ):
            return DEFAULT_SELECTION_SELECTIVITY
        histogram = self._statistics.histogram(predicate.left.name)
        if histogram is not None:
            try:
                return histogram.selectivity(predicate.op, predicate.right.value)
            except Exception:
                pass  # fall through to distinct-count heuristics
        column = self._statistics.column(predicate.left.name)
        if predicate.op == "=":
            if column is not None:
                return column.equality_selectivity()
            return DEFAULT_SELECTION_SELECTIVITY
        if predicate.op == "!=":
            if column is not None:
                return max(0.0, 1.0 - column.equality_selectivity())
            return 1.0 - DEFAULT_SELECTION_SELECTIVITY
        if column is not None:
            return column.range_selectivity(predicate.op, predicate.right.value)
        return DEFAULT_RANGE_SELECTIVITY
