"""Block-access cost models.

The paper costs plans in block accesses with *linear search* for
selections and *nested loop* for joins (Section 2).  That model is the
default here; a hash-join model is provided for the join-method ablation
called out in DESIGN.md.

A cost model prices one operator node assuming its inputs are already
available as relations (base, intermediate, or materialized); cumulative
plan costs are assembled by :class:`repro.optimizer.plans.AnnotatedPlan`
and by the MVPP cost functions.
"""

from __future__ import annotations

from typing import Protocol

from repro.algebra.operators import (
    Aggregate,
    Join,
    Limit,
    Operator,
    Project,
    Relation,
    Select,
    Sort,
)
from repro.catalog.statistics import RelationStatistics
from repro.errors import OptimizerError
from repro.optimizer.cardinality import CardinalityEstimator


class CostModel(Protocol):
    """Prices a single operator given an estimator for its children."""

    def local_cost(
        self, node: Operator, estimator: CardinalityEstimator
    ) -> float:
        """Block accesses to produce ``node``'s output from its inputs."""
        ...

    def scan_cost(self, stats: RelationStatistics) -> float:
        """Block accesses to read a stored relation of ``stats`` size."""
        ...


class NestedLoopCostModel:
    """The paper's cost model: linear-scan selection, nested-loop join.

    * ``select``/``project``: one pass over the input — ``B(child)``;
    * ``join``: ``B(outer) + B(outer) · B(inner)`` with the left input as
      the outer relation (the optimizer's join enumeration considers both
      orders, so the asymmetry is exploited rather than hidden);
    * ``aggregate``: one pass with an in-memory hash table — ``B(child)``;
    * reading a stored relation costs its block count.
    """

    name = "nested-loop"

    def local_cost(self, node: Operator, estimator: CardinalityEstimator) -> float:
        if isinstance(node, Relation):
            return 0.0
        if isinstance(node, (Select, Project, Aggregate, Limit)):
            return float(estimator.estimate(node.children[0]).blocks)
        if isinstance(node, Sort):
            import math

            blocks = estimator.estimate(node.child).blocks
            if blocks <= 1:
                return float(blocks)
            return float(blocks + blocks * math.ceil(math.log2(blocks)))
        if isinstance(node, Join):
            outer = estimator.estimate(node.left).blocks
            inner = estimator.estimate(node.right).blocks
            return float(outer + outer * inner)
        raise OptimizerError(f"cannot cost operator {type(node).__name__}")

    def scan_cost(self, stats: RelationStatistics) -> float:
        return float(stats.blocks)


class HashJoinCostModel(NestedLoopCostModel):
    """Grace-hash-join variant: ``3 · (B(left) + B(right))`` per join.

    Used by the join-method ablation to confirm the paper's qualitative
    conclusions are not an artifact of the nested-loop assumption.
    """

    name = "hash"

    def local_cost(self, node: Operator, estimator: CardinalityEstimator) -> float:
        if isinstance(node, Join):
            left = estimator.estimate(node.left).blocks
            right = estimator.estimate(node.right).blocks
            return float(3 * (left + right))
        return super().local_cost(node, estimator)


class SortMergeCostModel(NestedLoopCostModel):
    """Sort-merge variant: ``B·log2(B)`` sort per input plus a merge pass."""

    name = "sort-merge"

    def local_cost(self, node: Operator, estimator: CardinalityEstimator) -> float:
        if isinstance(node, Join):
            import math

            left = estimator.estimate(node.left).blocks
            right = estimator.estimate(node.right).blocks
            sort = sum(
                b * max(1.0, math.log2(b)) if b > 0 else 0.0 for b in (left, right)
            )
            return float(sort + left + right)
        return super().local_cost(node, estimator)


DEFAULT_COST_MODEL = NestedLoopCostModel()
