"""The single-query optimization pipeline.

``optimize_query`` is the paper's step 1 ("for each query, generate an
optimal query processing plan"): selections are pushed onto their
relations, join order is chosen by exact dynamic programming (greedy for
very wide queries), residual predicates/aggregation/projection are
re-applied on top.
"""

from __future__ import annotations

from typing import List, Optional

from repro.algebra import predicates as P
from repro.algebra.operators import Operator, Relation, project_if, select_if
from repro.algebra.rewrite import pull_up, push_down_projections
from repro.algebra.tree import leaves as tree_leaves
from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.optimizer.join_order import MAX_DP_RELATIONS, best_join_tree
from repro.optimizer.plans import AnnotatedPlan


def optimize_query(
    plan: Operator,
    estimator: CardinalityEstimator,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    push_projections: bool = False,
    max_dp_relations: int = MAX_DP_RELATIONS,
) -> Operator:
    """Return the optimized operator tree for a single query.

    ``push_projections=False`` (the default) keeps the projection at the
    top of the plan — the form the MVPP generator consumes, since Figure 4
    merges join patterns first and pushes projections down only at the
    very end (its step 6).  Pass ``True`` for a standalone executable plan
    with leaf-level projections.
    """
    pulled = pull_up(plan)

    # Split the residual selection into join predicates (for the join
    # enumerator), per-leaf selections, and whatever spans several leaves.
    selections, joins = P.split_selection_and_join(pulled.selection)
    skeleton_joins = _skeleton_join_predicates(pulled.skeleton)
    join_predicates = list(joins) + skeleton_joins

    leaf_nodes = tree_leaves(pulled.skeleton)
    leaf_plans: List[Operator] = []
    remaining = list(selections)
    for leaf in leaf_nodes:
        columns = set(leaf.schema.attribute_names)
        mine = [s for s in remaining if s.columns() <= columns]
        for predicate in mine:
            remaining.remove(predicate)
        leaf_plans.append(select_if(leaf, P.conjunction(mine)))

    body = best_join_tree(
        leaf_plans,
        join_predicates,
        estimator,
        cost_model,
        max_dp_relations=max_dp_relations,
    )
    body = select_if(body, P.conjunction(remaining))
    if pulled.aggregate is not None:
        body = pulled.aggregate.with_children((body,))
    result = project_if(body, pulled.projection, distinct=pulled.distinct)
    if push_projections:
        result = push_down_projections(result, result.schema.attribute_names)
    return pulled.decorate(result)


def annotate(
    plan: Operator,
    estimator: CardinalityEstimator,
    cost_model: CostModel = DEFAULT_COST_MODEL,
) -> AnnotatedPlan:
    """Convenience: wrap ``plan`` in an :class:`AnnotatedPlan`."""
    return AnnotatedPlan(plan, estimator, cost_model)


def _skeleton_join_predicates(skeleton: Operator) -> List:
    """All join-condition conjuncts attached to joins in a skeleton."""
    out = []
    from repro.algebra.operators import Join

    for node in skeleton.walk():
        if isinstance(node, Join) and node.condition is not None:
            out.extend(P.conjuncts(node.condition))
    return out
