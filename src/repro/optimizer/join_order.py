"""Join-order enumeration.

Produces each query's *individual optimal plan* — the input to the MVPP
generation algorithm (paper Figure 4, step 1).  Small queries are solved
exactly with dynamic programming over subsets (bushy trees allowed, both
join orders considered since nested-loop cost is asymmetric); larger
queries fall back to a greedy pairwise merge.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.algebra import predicates as P
from repro.algebra.expressions import Expression
from repro.algebra.operators import Join, Operator
from repro.errors import OptimizerError
from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.cost_model import CostModel, DEFAULT_COST_MODEL

#: Above this relation count the exact DP is replaced by the greedy.
MAX_DP_RELATIONS = 10


def best_join_tree(
    leaf_plans: Sequence[Operator],
    join_predicates: Sequence[Expression],
    estimator: CardinalityEstimator,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    max_dp_relations: int = MAX_DP_RELATIONS,
) -> Operator:
    """The cheapest join tree combining ``leaf_plans``.

    ``leaf_plans`` are arbitrary operator subtrees (typically base
    relations with their selections already applied).  ``join_predicates``
    are equi-join conjuncts referencing columns of exactly two leaves.
    """
    if not leaf_plans:
        raise OptimizerError("best_join_tree requires at least one input")
    if len(leaf_plans) == 1:
        return leaf_plans[0]
    if len(leaf_plans) <= max_dp_relations:
        return _dynamic_programming(
            list(leaf_plans), list(join_predicates), estimator, cost_model
        )
    return _greedy(list(leaf_plans), list(join_predicates), estimator, cost_model)


def _subtree_cost(
    plan: Operator, estimator: CardinalityEstimator, cost_model: CostModel
) -> float:
    return sum(cost_model.local_cost(node, estimator) for node in plan.walk())


def _connecting(
    predicates: Sequence[Expression], left: Operator, right: Operator
) -> List[Expression]:
    left_cols = set(left.schema.attribute_names)
    right_cols = set(right.schema.attribute_names)
    out = []
    for predicate in predicates:
        columns = predicate.columns()
        if (
            columns & left_cols
            and columns & right_cols
            and columns <= (left_cols | right_cols)
        ):
            out.append(predicate)
    return out


def _dynamic_programming(
    leaves: List[Operator],
    predicates: List[Expression],
    estimator: CardinalityEstimator,
    cost_model: CostModel,
) -> Operator:
    n = len(leaves)
    # DP table: frozenset of leaf indices -> (cost, plan, unused predicates)
    table: Dict[FrozenSet[int], Tuple[float, Operator]] = {}
    for index, leaf in enumerate(leaves):
        table[frozenset((index,))] = (
            _subtree_cost(leaf, estimator, cost_model),
            leaf,
        )

    all_indices = list(range(n))
    for size in range(2, n + 1):
        for subset in combinations(all_indices, size):
            key = frozenset(subset)
            best: Optional[Tuple[float, Operator]] = None
            best_cross: Optional[Tuple[float, Operator]] = None
            for split_size in range(1, size):
                for left_part in combinations(subset, split_size):
                    left_key = frozenset(left_part)
                    right_key = key - left_key
                    if left_key not in table or right_key not in table:
                        continue
                    left_cost, left_plan = table[left_key]
                    right_cost, right_plan = table[right_key]
                    connecting = _connecting(predicates, left_plan, right_plan)
                    join = Join(left_plan, right_plan, P.conjunction(connecting))
                    cost = (
                        left_cost
                        + right_cost
                        + cost_model.local_cost(join, estimator)
                    )
                    candidate = (cost, join)
                    if connecting:
                        if best is None or cost < best[0]:
                            best = candidate
                    else:
                        if best_cross is None or cost < best_cross[0]:
                            best_cross = candidate
            chosen = best if best is not None else best_cross
            if chosen is None:
                raise OptimizerError("join enumeration failed to cover a subset")
            table[key] = chosen

    return table[frozenset(all_indices)][1]


def _greedy(
    components: List[Operator],
    predicates: List[Expression],
    estimator: CardinalityEstimator,
    cost_model: CostModel,
) -> Operator:
    """Repeatedly join the cheapest (preferably connected) pair."""
    costs = [
        _subtree_cost(component, estimator, cost_model) for component in components
    ]
    while len(components) > 1:
        best_choice: Optional[Tuple[float, int, int, Operator]] = None
        best_cross: Optional[Tuple[float, int, int, Operator]] = None
        for i in range(len(components)):
            for j in range(len(components)):
                if i == j:
                    continue
                connecting = _connecting(predicates, components[i], components[j])
                join = Join(
                    components[i], components[j], P.conjunction(connecting)
                )
                cost = (
                    costs[i] + costs[j] + cost_model.local_cost(join, estimator)
                )
                candidate = (cost, i, j, join)
                if connecting:
                    if best_choice is None or cost < best_choice[0]:
                        best_choice = candidate
                else:
                    if best_cross is None or cost < best_cross[0]:
                        best_cross = candidate
        chosen = best_choice if best_choice is not None else best_cross
        assert chosen is not None  # len(components) > 1 guarantees a pair
        cost, i, j, join = chosen
        keep = [k for k in range(len(components)) if k not in (i, j)]
        components = [components[k] for k in keep] + [join]
        costs = [costs[k] for k in keep] + [cost]
    return components[0]
