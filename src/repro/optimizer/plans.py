"""Cost-annotated plans.

:class:`AnnotatedPlan` decorates an operator tree with per-node statistics
and costs under a given estimator and cost model.  ``Ca`` in the paper —
"the cost for producing R(v) from the base relations" — corresponds to
:meth:`AnnotatedPlan.cumulative_cost` of a node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Tuple

from repro.algebra.operators import Operator
from repro.catalog.statistics import RelationStatistics
from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.cost_model import CostModel, DEFAULT_COST_MODEL


@dataclass(frozen=True)
class NodeCost:
    """Costs of one plan node: local operation plus cumulative subtree."""

    stats: RelationStatistics
    local: float
    cumulative: float


class AnnotatedPlan:
    """An operator tree with per-node statistics and block-access costs."""

    def __init__(
        self,
        root: Operator,
        estimator: CardinalityEstimator,
        cost_model: CostModel = DEFAULT_COST_MODEL,
    ):
        self.root = root
        self.estimator = estimator
        self.cost_model = cost_model
        self._costs: Dict[str, NodeCost] = {}
        self._annotate(root)

    def _annotate(self, node: Operator) -> NodeCost:
        cached = self._costs.get(node.signature)
        if cached is not None:
            return cached
        child_cumulative = sum(
            self._annotate(child).cumulative for child in node.children
        )
        local = self.cost_model.local_cost(node, self.estimator)
        cost = NodeCost(
            stats=self.estimator.estimate(node),
            local=local,
            cumulative=local + child_cumulative,
        )
        self._costs[node.signature] = cost
        return cost

    def node_cost(self, node: Operator) -> NodeCost:
        """Costs of ``node`` (must belong to this plan or equal a subtree)."""
        if node.signature not in self._costs:
            self._annotate(node)
        return self._costs[node.signature]

    def stats(self, node: Operator) -> RelationStatistics:
        return self.node_cost(node).stats

    def local_cost(self, node: Operator) -> float:
        return self.node_cost(node).local

    def cumulative_cost(self, node: Operator) -> float:
        """The paper's ``Ca(v)``: cost of computing ``v`` from base relations."""
        return self.node_cost(node).cumulative

    @property
    def total_cost(self) -> float:
        return self.cumulative_cost(self.root)

    @property
    def output_stats(self) -> RelationStatistics:
        return self.stats(self.root)

    def walk_costs(self) -> Iterator[Tuple[Operator, NodeCost]]:
        """Post-order (node, cost) pairs over the whole plan."""
        for node in self.root.walk():
            yield node, self.node_cost(node)

    def describe(self) -> str:
        """Indented rendering with per-node cardinality and cost labels."""
        lines = []

        def render(node: Operator, indent: int) -> None:
            cost = self.node_cost(node)
            lines.append(
                "  " * indent
                + f"{node.label}  [rows={cost.stats.cardinality}, "
                f"blocks={cost.stats.blocks}, local={cost.local:.0f}, "
                f"Ca={cost.cumulative:.0f}]"
            )
            for child in node.children:
                render(child, indent + 1)

        render(self.root, 0)
        return "\n".join(lines)
