"""repro.parallel — deterministic fan-out for the design pipeline.

See :mod:`repro.parallel.executor` for the backend contract.  The
public entry point is :func:`resolve_executor`, which
:func:`repro.mvpp.generation.design`, :func:`repro.mvpp.strategies.compare`
and the CLI use to honour ``DesignConfig.workers`` / ``--workers``.
"""

from repro.parallel.executor import (
    AUTO,
    EXECUTOR_KINDS,
    MAX_AUTO_WORKERS,
    PROCESS,
    SERIAL,
    THREAD,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    default_workers,
    resolve_executor,
)

__all__ = [
    "AUTO",
    "EXECUTOR_KINDS",
    "MAX_AUTO_WORKERS",
    "PROCESS",
    "SERIAL",
    "THREAD",
    "Executor",
    "ProcessExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "default_workers",
    "resolve_executor",
]
