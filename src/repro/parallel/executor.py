"""Execution backends for fanning out independent pipeline stages.

The design pipeline has three embarrassingly parallel loops — the
Figure-4 seed rotations (one MVPP per rotation), the per-candidate
Figure-9 selection, and the Table-2 strategy comparison.  Each loop
hands its work to an *executor*: an object with an order-preserving
``map(fn, items)`` that may run tasks serially, on a thread pool, or on
a process pool.

Determinism is the contract: ``map`` always returns results in input
order and every backend produces bit-identical results for pure
functions, so a parallel design run picks the same views and reports
the same costs as a serial one.  Exceptions raised by a task propagate
to the caller (remaining tasks are cancelled by pool shutdown).

Backend selection:

* ``serial`` — plain loop; the default when ``workers <= 1``.
* ``thread`` — :class:`concurrent.futures.ThreadPoolExecutor`.  Safe
  for every task (closures, shared caches); CPU-bound pure-Python work
  is still GIL-serialized, but a shared :class:`~repro.mvpp.cost.CostCache`
  makes the fan-out pay through memoization rather than raw parallelism.
* ``process`` — :class:`concurrent.futures.ProcessPoolExecutor`.  Real
  CPU parallelism; tasks and arguments must be picklable (module-level
  functions), and in-memory caches are per-process.
* ``auto`` — ``serial`` when ``workers <= 1``, else ``thread``.

Per-``map`` task counts are exported through :mod:`repro.obs` as the
``parallel.tasks{backend=...}`` counter.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Iterable, List, Sequence, TypeVar

from repro import obs
from repro.errors import ReproError

__all__ = [
    "AUTO",
    "PROCESS",
    "SERIAL",
    "THREAD",
    "EXECUTOR_KINDS",
    "Executor",
    "ProcessExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "default_workers",
    "resolve_executor",
]

T = TypeVar("T")
R = TypeVar("R")

#: Backend names accepted by :func:`resolve_executor` (and the CLI's
#: ``--parallel`` flag / ``DesignConfig.executor``).
SERIAL = "serial"
THREAD = "thread"
PROCESS = "process"
AUTO = "auto"
EXECUTOR_KINDS = (AUTO, SERIAL, THREAD, PROCESS)

#: Cap for ``workers=0`` (auto-sized) pools; beyond this the pipeline's
#: fan-out width (one task per MVPP candidate) rarely keeps pools busy.
MAX_AUTO_WORKERS = 8


def default_workers() -> int:
    """Pool width used for ``workers=0``: CPU count, capped."""
    return max(1, min(os.cpu_count() or 1, MAX_AUTO_WORKERS))


class Executor:
    """Order-preserving ``map`` over independent tasks (base/serial)."""

    kind = SERIAL
    #: Whether tasks may be closures / bound methods (False means tasks
    #: must be picklable module-level callables).
    supports_closures = True

    def __init__(self, workers: int = 1):
        if workers < 1:
            raise ReproError(f"executor workers must be >= 1: {workers}")
        self.workers = workers

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        """Apply ``fn`` to every item; results in input order."""
        tasks = list(items)
        self._count(tasks)
        return self._run(fn, tasks)

    # ------------------------------------------------------------- internals
    def _run(self, fn: Callable[[T], R], tasks: Sequence[T]) -> List[R]:
        return [fn(item) for item in tasks]

    def _count(self, tasks: Sequence[Any]) -> None:
        if tasks:
            obs.metrics().counter("parallel.tasks", backend=self.kind).inc(
                len(tasks)
            )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(workers={self.workers})"


class SerialExecutor(Executor):
    """Plain in-order loop — the reference backend."""

    def __init__(self, workers: int = 1):
        super().__init__(1)


class ThreadExecutor(Executor):
    """Thread-pool backend; safe for closures and shared caches."""

    kind = THREAD

    def _run(self, fn: Callable[[T], R], tasks: Sequence[T]) -> List[R]:
        if len(tasks) <= 1 or self.workers <= 1:
            return [fn(item) for item in tasks]
        with ThreadPoolExecutor(
            max_workers=min(self.workers, len(tasks))
        ) as pool:
            return list(pool.map(fn, tasks))


class ProcessExecutor(Executor):
    """Process-pool backend; tasks and arguments must be picklable."""

    kind = PROCESS
    supports_closures = False

    def _run(self, fn: Callable[[T], R], tasks: Sequence[T]) -> List[R]:
        if len(tasks) <= 1 or self.workers <= 1:
            return [fn(item) for item in tasks]
        with ProcessPoolExecutor(
            max_workers=min(self.workers, len(tasks))
        ) as pool:
            return list(pool.map(fn, tasks))


def resolve_executor(
    kind: str = AUTO, workers: int = 1, closures: bool = False
) -> Executor:
    """Pick a backend for the requested ``kind`` and worker count.

    ``workers=0`` auto-sizes the pool (:func:`default_workers`);
    ``workers=1`` always yields the serial backend.  With
    ``closures=True`` a ``process`` request degrades to ``thread``,
    since closures and bound methods cannot cross process boundaries.
    """
    if kind not in EXECUTOR_KINDS:
        raise ReproError(
            f"unknown executor kind {kind!r}; expected one of {EXECUTOR_KINDS}"
        )
    if workers < 0:
        raise ReproError(f"workers must be >= 0: {workers}")
    if workers == 0:
        workers = default_workers()
    if workers <= 1:
        return SerialExecutor()
    if kind == PROCESS and closures:
        kind = THREAD
    if kind == PROCESS:
        return ProcessExecutor(workers)
    if kind in (THREAD, AUTO):
        return ThreadExecutor(workers)
    return SerialExecutor()
