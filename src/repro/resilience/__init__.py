"""Fault tolerance for view maintenance and serving.

The paper's framework trades query cost against maintenance cost under
the assumption that every refresh succeeds instantly; this package
supplies the production-side missing half (the ROADMAP's robustness
north star):

* :mod:`~repro.resilience.faults` — deterministic, seeded fault
  injection at the storage-I/O and site-communication boundaries;
* :mod:`~repro.resilience.scheduler` — a refresh scheduler with retry,
  bounded exponential backoff + seeded jitter, per-view circuit
  breakers and freshness epochs, all over a logical tick clock;
* :mod:`~repro.resilience.config` — the frozen configuration
  dataclasses (also reachable as ``DesignConfig.resilience``);
* :mod:`~repro.resilience.simulate` — the end-to-end seeded simulation
  behind ``repro simulate --faults`` and the resilience test suite.

See ``docs/resilience.md`` for the failure model and the staleness
contract.
"""

from repro.resilience.config import (
    DEFAULT_RESILIENCE_CONFIG,
    BreakerPolicy,
    ResilienceConfig,
    RetryPolicy,
)
from repro.resilience.faults import (
    SCOPE_ALL,
    SCOPE_MAINTENANCE,
    FaultInjector,
    FaultPolicy,
    FaultyTable,
    FaultyTopology,
)
from repro.resilience.scheduler import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    LogicalClock,
    RefreshOutcome,
    RefreshScheduler,
)
from repro.resilience.simulate import FaultSimulationResult, simulate_faults

__all__ = [
    "BreakerPolicy",
    "CircuitBreaker",
    "CLOSED",
    "DEFAULT_RESILIENCE_CONFIG",
    "FaultInjector",
    "FaultPolicy",
    "FaultSimulationResult",
    "FaultyTable",
    "FaultyTopology",
    "HALF_OPEN",
    "LogicalClock",
    "OPEN",
    "RefreshOutcome",
    "RefreshScheduler",
    "ResilienceConfig",
    "RetryPolicy",
    "SCOPE_ALL",
    "SCOPE_MAINTENANCE",
    "simulate_faults",
]
