"""Configuration for the resilience subsystem.

Three frozen dataclasses mirror the three mechanisms of
:mod:`repro.resilience`:

* :class:`RetryPolicy` — how a failed refresh attempt is retried
  (bounded exponential backoff with seeded jitter, an overall per-call
  timeout budget);
* :class:`BreakerPolicy` — when a repeatedly-failing view's circuit
  breaker opens, and when it probes again (half-open);
* :class:`ResilienceConfig` — the umbrella carried by
  :class:`repro.mvpp.config.DesignConfig` (``resilience=``) and by
  :meth:`DataWarehouse.scheduler
  <repro.warehouse.warehouse.DataWarehouse.scheduler>`.

All durations are expressed in *logical ticks*, not wall-clock seconds:
one tick per block of I/O performed plus whatever delay ticks the fault
injector adds.  The scheduler never reads a wall clock (the repo-wide
determinism contract, lint rule C104), so a fixed seed reproduces the
exact same retry/backoff/breaker trajectory on every run.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Optional

from repro.errors import ResilienceError

__all__ = [
    "RetryPolicy",
    "BreakerPolicy",
    "ResilienceConfig",
    "DEFAULT_RESILIENCE_CONFIG",
]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff for refresh attempts.

    Attempt ``k`` (1-based) that fails sleeps
    ``min(max_backoff, base_backoff · 2^(k-1)) · (1 + jitter·u)`` logical
    ticks before the next try, where ``u ∈ [0, 1)`` is drawn from the
    scheduler's seeded stream.  ``timeout_ticks`` caps the total ticks
    one refresh call may consume across all its attempts (``None`` =
    unbounded).
    """

    max_attempts: int = 5
    base_backoff: float = 4.0
    max_backoff: float = 64.0
    jitter: float = 0.5
    timeout_ticks: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ResilienceError(
                f"max_attempts must be >= 1: {self.max_attempts}"
            )
        if self.base_backoff < 0 or self.max_backoff < 0:
            raise ResilienceError("backoff durations must be >= 0")
        if self.max_backoff < self.base_backoff:
            raise ResilienceError(
                f"max_backoff ({self.max_backoff}) must be >= "
                f"base_backoff ({self.base_backoff})"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ResilienceError(f"jitter must be in [0, 1]: {self.jitter}")
        if self.timeout_ticks is not None and self.timeout_ticks <= 0:
            raise ResilienceError(
                f"timeout_ticks must be positive (or None): {self.timeout_ticks}"
            )

    def backoff_ticks(self, attempt: int, u: float) -> float:
        """Sleep duration after failed attempt ``attempt`` (1-based)."""
        base = min(self.max_backoff, self.base_backoff * (2.0 ** (attempt - 1)))
        return base * (1.0 + self.jitter * u)


@dataclass(frozen=True)
class BreakerPolicy:
    """Per-view circuit breaker thresholds.

    ``failure_threshold`` consecutive failed refreshes open the breaker;
    an open breaker rejects refreshes (and drops the view from query
    rewrites) until ``reset_ticks`` logical ticks have elapsed, at which
    point it goes *half-open* and admits a single probe refresh.  The
    probe's outcome closes or re-opens the breaker.
    """

    failure_threshold: int = 3
    reset_ticks: float = 128.0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ResilienceError(
                f"failure_threshold must be >= 1: {self.failure_threshold}"
            )
        if self.reset_ticks <= 0:
            raise ResilienceError(
                f"reset_ticks must be positive: {self.reset_ticks}"
            )


@dataclass(frozen=True)
class ResilienceConfig:
    """Every resilience knob in one immutable value.

    ``seed`` feeds the scheduler's jitter stream (the fault injector has
    its own seed on :class:`repro.resilience.faults.FaultPolicy`, so
    fault decisions and backoff jitter never share a stream).
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    breaker: BreakerPolicy = field(default_factory=BreakerPolicy)
    seed: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.retry, RetryPolicy):
            raise ResilienceError(f"not a RetryPolicy: {self.retry!r}")
        if not isinstance(self.breaker, BreakerPolicy):
            raise ResilienceError(f"not a BreakerPolicy: {self.breaker!r}")

    def replace(self, **changes: Any) -> "ResilienceConfig":
        """A copy with the given fields changed (re-validated)."""
        return replace(self, **changes)


#: The all-defaults resilience configuration.
DEFAULT_RESILIENCE_CONFIG = ResilienceConfig()
