"""Deterministic fault injection at the storage and communication boundaries.

A :class:`FaultInjector` draws every fault decision from one seeded
``random.Random`` stream, so a fixed :class:`FaultPolicy` reproduces the
exact same failure sequence on every run — the property the resilience
test suite asserts bit-identically.

Two boundaries are instrumented:

* **storage I/O** — :class:`FaultyTable` proxies a stored
  :class:`~repro.storage.table.Table` and consults the injector before
  every scan or write.  :meth:`repro.executor.engine.Database.table`
  returns the proxy automatically once an injector is attached, so
  plans execute unmodified.  A fault aborts *before* any row is
  appended: a failed write never leaves partial state behind.
* **site communication** — :meth:`FaultyTopology.transfer_cost` consults
  the injector before pricing a transfer, modelling an unreachable link.

``FaultPolicy.scope`` controls *when* faults fire: ``"maintenance"``
(the default) injects only inside a refresh — the scheduler's retry
loop is exercised while foreground queries stay failure-free —
while ``"all"`` also fails foreground reads.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, Mapping, Tuple

from repro.errors import CommFault, ResilienceError, StorageFault
from repro.storage.table import Table

__all__ = [
    "FaultPolicy",
    "FaultInjector",
    "FaultyTable",
    "FaultyTopology",
    "SCOPE_MAINTENANCE",
    "SCOPE_ALL",
]

SCOPE_MAINTENANCE = "maintenance"
SCOPE_ALL = "all"


def _check_rate(label: str, rate: float) -> None:
    if not 0.0 <= rate <= 1.0:
        raise ResilienceError(f"{label} must be in [0, 1]: {rate}")


@dataclass(frozen=True)
class FaultPolicy:
    """Seeded failure/delay rates per relation and per site.

    ``storage_failure_rate`` / ``comm_failure_rate`` are the default
    per-operation failure probabilities; ``relation_rates`` /
    ``site_rates`` override them for named targets (given as
    name→rate tuples to keep the dataclass hashable).  ``delay_rate``
    injects a delay of ``delay_ticks`` logical ticks (advancing the
    scheduler clock without failing the operation).
    """

    storage_failure_rate: float = 0.0
    comm_failure_rate: float = 0.0
    relation_rates: Tuple[Tuple[str, float], ...] = ()
    site_rates: Tuple[Tuple[str, float], ...] = ()
    delay_rate: float = 0.0
    delay_ticks: float = 1.0
    scope: str = SCOPE_MAINTENANCE
    seed: int = 0

    def __post_init__(self) -> None:
        _check_rate("storage_failure_rate", self.storage_failure_rate)
        _check_rate("comm_failure_rate", self.comm_failure_rate)
        _check_rate("delay_rate", self.delay_rate)
        for name, rate in self.relation_rates:
            _check_rate(f"relation rate for {name!r}", rate)
        for name, rate in self.site_rates:
            _check_rate(f"site rate for {name!r}", rate)
        if self.delay_ticks < 0:
            raise ResilienceError(
                f"delay_ticks must be >= 0: {self.delay_ticks}"
            )
        if self.scope not in (SCOPE_MAINTENANCE, SCOPE_ALL):
            raise ResilienceError(
                f"unknown fault scope {self.scope!r}; expected "
                f"{SCOPE_MAINTENANCE!r} or {SCOPE_ALL!r}"
            )

    def rate_for_relation(self, name: str) -> float:
        for target, rate in self.relation_rates:
            if target == name:
                return rate
        return self.storage_failure_rate

    def rate_for_site(self, name: str) -> float:
        for target, rate in self.site_rates:
            if target == name:
                return rate
        return self.comm_failure_rate

    @property
    def injects_anything(self) -> bool:
        return (
            self.storage_failure_rate > 0
            or self.comm_failure_rate > 0
            or self.delay_rate > 0
            or any(rate > 0 for _, rate in self.relation_rates)
            or any(rate > 0 for _, rate in self.site_rates)
        )


class FaultInjector:
    """Draws fault decisions from one seeded stream and counts them.

    The injector is deliberately *stateful but deterministic*: the
    decision sequence depends only on the policy seed and the order of
    instrumented operations, which the engine performs deterministically.
    """

    def __init__(self, policy: FaultPolicy):
        self.policy = policy
        self._rng = random.Random(policy.seed)
        self.storage_faults = 0
        self.comm_faults = 0
        self.delays = 0
        self.delay_ticks_total = 0.0
        self._maintenance_depth = 0
        #: Ticks injected since the last :meth:`drain_delay_ticks` call;
        #: the scheduler drains this into its logical clock.
        self._pending_delay = 0.0

    # ----------------------------------------------------------------- scope
    def maintenance(self) -> "_MaintenanceScope":
        """Context manager marking a maintenance window (refresh)."""
        return _MaintenanceScope(self)

    @property
    def in_maintenance(self) -> bool:
        return self._maintenance_depth > 0

    @property
    def active(self) -> bool:
        if self.policy.scope == SCOPE_ALL:
            return True
        return self.in_maintenance

    # ------------------------------------------------------------- decisions
    def maybe_fail_storage(self, relation: str, operation: str) -> None:
        """Raise :class:`StorageFault` with the policy's probability."""
        if not self.active:
            return
        self._maybe_delay()
        rate = self.policy.rate_for_relation(relation)
        if rate > 0 and self._rng.random() < rate:
            self.storage_faults += 1
            self._count("storage", relation)
            raise StorageFault(relation, operation)

    def maybe_fail_comm(self, source: str, destination: str) -> None:
        """Raise :class:`CommFault` for the costlier endpoint's rate."""
        if not self.active:
            return
        self._maybe_delay()
        rate = max(
            self.policy.rate_for_site(source),
            self.policy.rate_for_site(destination),
        )
        if rate > 0 and self._rng.random() < rate:
            self.comm_faults += 1
            self._count("comm", f"{source}->{destination}")
            raise CommFault(f"{source}->{destination}", "transfer")

    def _maybe_delay(self) -> None:
        if self.policy.delay_rate > 0 and self._rng.random() < self.policy.delay_rate:
            self.delays += 1
            self.delay_ticks_total += self.policy.delay_ticks
            self._pending_delay += self.policy.delay_ticks

    def drain_delay_ticks(self) -> float:
        """Injected delay ticks accumulated since the last drain."""
        ticks = self._pending_delay
        self._pending_delay = 0.0
        return ticks

    # --------------------------------------------------------------- metrics
    def _count(self, kind: str, target: str) -> None:
        from repro import obs

        if obs.enabled():
            obs.metrics().counter(
                "resilience.faults_injected", kind=kind, target=target
            ).inc()

    def stats(self) -> Dict[str, float]:
        """A JSON-safe snapshot of the injected-fault counters."""
        return {
            "storage_faults": self.storage_faults,
            "comm_faults": self.comm_faults,
            "delays": self.delays,
            "delay_ticks": self.delay_ticks_total,
        }


class _MaintenanceScope:
    """Re-entrant ``with injector.maintenance():`` marker."""

    def __init__(self, injector: FaultInjector):
        self._injector = injector

    def __enter__(self) -> FaultInjector:
        self._injector._maintenance_depth += 1
        return self._injector

    def __exit__(self, *exc_info: Any) -> None:
        self._injector._maintenance_depth -= 1


class FaultyTable(Table):
    """A table proxy that consults a :class:`FaultInjector` before I/O.

    Shares the inner table's row list, schema and I/O counter, so reads
    and writes that survive injection behave exactly like the real
    table (including block accounting).  A raised fault aborts before
    any row is appended — partial writes are impossible.
    """

    def __init__(self, inner: Table, name: str, injector: FaultInjector):
        self.schema = inner.schema
        self.blocking_factor = inner.blocking_factor
        self.io = inner.io
        self._rows = inner._rows  # shared: the proxy IS the stored table
        self._colcache = inner.column_view()  # shared columnar cache
        # Change capture rides through the proxy: a write that survives
        # injection must emit exactly the records a direct write would.
        self.write_hook = inner.write_hook
        self._name = name
        self._injector = injector

    def scan(self, count_io: bool = True) -> Iterator[Dict[str, Any]]:
        self._injector.maybe_fail_storage(self._name, "scan")
        return super().scan(count_io)

    def rows(self) -> list:
        self._injector.maybe_fail_storage(self._name, "read")
        return super().rows()

    def insert(self, row: Mapping[str, Any], count_io: bool = False) -> None:
        self._injector.maybe_fail_storage(self._name, "write")
        super().insert(row, count_io)

    def insert_many(
        self, rows: Iterable[Mapping[str, Any]], count_io: bool = True
    ) -> int:
        self._injector.maybe_fail_storage(self._name, "write")
        return super().insert_many(rows, count_io)

    def delete_many(
        self, rows: Iterable[Mapping[str, Any]], count_io: bool = True
    ) -> list:
        self._injector.maybe_fail_storage(self._name, "delete")
        return super().delete_many(rows, count_io)


class FaultyTopology:
    """A :class:`~repro.distributed.sites.Topology` wrapper that may fail.

    Produced by :meth:`Topology.with_faults
    <repro.distributed.sites.Topology.with_faults>`; every
    :meth:`transfer_cost` call first asks the injector whether the link
    is up.  All other topology methods delegate unchanged.
    """

    def __init__(self, inner: Any, injector: FaultInjector):
        self._inner = inner
        self._injector = injector

    def transfer_cost(
        self, source: str, destination: str, blocks: float
    ) -> float:
        if source != destination:
            self._injector.maybe_fail_comm(source, destination)
        return self._inner.transfer_cost(source, destination, blocks)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)

    def __contains__(self, name: str) -> bool:
        return name in self._inner
