"""Fault-tolerant refresh scheduling: retry, backoff, breaker, epochs.

The :class:`RefreshScheduler` runs :class:`~repro.warehouse.maintenance.
ViewMaintainer` refreshes under failure: each view refresh is retried
with bounded exponential backoff and seeded jitter, guarded by a
per-view :class:`CircuitBreaker`, and accounted against a per-call
timeout budget.  A successful refresh bumps the view's *freshness
epoch*; the warehouse query path reads the breaker and epoch state to
decide which views are servable (see
:meth:`repro.warehouse.warehouse.DataWarehouse.serve`).

Time is a :class:`LogicalClock` counting ticks — one per block of I/O
performed plus injected delay ticks — never the wall clock, so a fixed
seed reproduces the exact trajectory (backoffs, breaker transitions,
outcomes) bit-identically across runs.

Atomicity: the maintainer already refreshes into a shadow table and
swaps on success (see :mod:`repro.warehouse.maintenance`), and the
fault injector aborts *before* mutating rows, so a failed attempt
leaves the previously-served contents untouched — queries racing a
failing refresh see the old consistent state, never a partial one.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro import obs
from repro.errors import ReproError, ResilienceError
from repro.resilience.config import (
    BreakerPolicy,
    ResilienceConfig,
    RetryPolicy,
)
from repro.resilience.faults import FaultInjector

if TYPE_CHECKING:  # pragma: no cover
    from repro.warehouse.view import MaterializedView
    from repro.warehouse.warehouse import DataWarehouse

__all__ = [
    "LogicalClock",
    "CircuitBreaker",
    "RefreshOutcome",
    "RefreshScheduler",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

#: Breaker-state gauge encoding (stable across runs for dashboards).
_STATE_CODES = {CLOSED: 0.0, HALF_OPEN: 1.0, OPEN: 2.0}


class LogicalClock:
    """Deterministic time: ticks advanced explicitly, never read from OS."""

    def __init__(self) -> None:
        self.now = 0.0

    def advance(self, ticks: float) -> float:
        if ticks < 0:
            raise ResilienceError(f"cannot advance the clock by {ticks}")
        self.now += ticks
        return self.now


class CircuitBreaker:
    """CLOSED → OPEN → HALF_OPEN state machine over a logical clock.

    ``failure_threshold`` consecutive failures open the breaker; after
    ``reset_ticks`` it half-opens and admits one probe.  A success in
    any state closes it and zeroes the failure count.
    """

    def __init__(self, policy: BreakerPolicy, clock: LogicalClock):
        self.policy = policy
        self.clock = clock
        self.failures = 0
        self.opened_at: Optional[float] = None
        self._probing = False

    @property
    def state(self) -> str:
        if self.opened_at is None:
            return CLOSED
        if self.clock.now - self.opened_at >= self.policy.reset_ticks:
            return HALF_OPEN
        return OPEN

    def allows(self) -> bool:
        """Whether a refresh attempt may proceed right now."""
        state = self.state
        if state == CLOSED:
            return True
        if state == HALF_OPEN and not self._probing:
            return True
        return False

    def begin_probe(self) -> None:
        if self.state == HALF_OPEN:
            self._probing = True

    def record_success(self) -> None:
        self.failures = 0
        self.opened_at = None
        self._probing = False

    def record_failure(self) -> None:
        self.failures += 1
        self._probing = False
        if self.opened_at is not None or (
            self.failures >= self.policy.failure_threshold
        ):
            # Re-open (or open for the first time) from *now*: a failed
            # half-open probe restarts the full reset window.
            self.opened_at = self.clock.now


@dataclass(frozen=True)
class RefreshOutcome:
    """What happened to one view in one scheduler pass."""

    view: str
    status: str  # "refreshed" | "failed" | "skipped"
    attempts: int
    ticks: float
    epoch: int
    error: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "refreshed"


class RefreshScheduler:
    """Runs view refreshes with retry/backoff/breaker/epoch semantics."""

    def __init__(
        self,
        warehouse: "DataWarehouse",
        config: Optional[ResilienceConfig] = None,
        injector: Optional[FaultInjector] = None,
    ):
        self.warehouse = warehouse
        self.config = config or ResilienceConfig()
        self.injector = injector
        self.clock = LogicalClock()
        self._rng = random.Random(self.config.seed)
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._epochs: Dict[str, int] = {}

    # ----------------------------------------------------------------- state
    def breaker(self, view_name: str) -> CircuitBreaker:
        breaker = self._breakers.get(view_name)
        if breaker is None:
            breaker = CircuitBreaker(self.config.breaker, self.clock)
            self._breakers[view_name] = breaker
        return breaker

    def breaker_state(self, view_name: str) -> str:
        return self.breaker(view_name).state

    def epoch(self, view_name: str) -> int:
        """Monotonic per-view freshness epoch (0 = never refreshed here)."""
        return self._epochs.get(view_name, 0)

    def allows(self, view_name: str) -> bool:
        """Whether the query path may serve this view (breaker not open)."""
        return self.breaker(view_name).state != OPEN

    # --------------------------------------------------------------- refresh
    def refresh_view(self, view: "MaterializedView") -> RefreshOutcome:
        """Refresh one view under the retry/backoff/breaker policy.

        Never raises on refresh failure: the outcome's ``status`` says
        whether the view converged, and breaker/epoch state is updated
        either way.  Timeout is a total tick budget for the call.
        """
        retry = self.config.retry
        breaker = self.breaker(view.name)
        started = self.clock.now
        deadline = (
            None
            if retry.timeout_ticks is None
            else started + retry.timeout_ticks
        )

        with obs.correlation("refresh"), obs.span(
            "resilience.refresh", view=view.name, breaker=breaker.state
        ) as span:
            self._journal(
                "resilience.refresh.begin",
                view=view.name,
                breaker=breaker.state,
            )
            if not breaker.allows():
                self._gauge(view.name, breaker)
                self._counter("resilience.refresh.skipped", view=view.name)
                span.set(status="skipped")
                self._journal(
                    "resilience.refresh.end", view=view.name, status="skipped"
                )
                return RefreshOutcome(
                    view.name, "skipped", 0, 0.0, self.epoch(view.name),
                    error="circuit breaker open",
                )
            breaker.begin_probe()

            error = ""
            attempts = 0
            for attempt in range(1, retry.max_attempts + 1):
                attempts = attempt
                self._counter("resilience.refresh.attempts", view=view.name)
                self._journal(
                    "resilience.refresh.attempt",
                    view=view.name,
                    attempt=attempt,
                )
                io_before = self.warehouse.database.io.snapshot()
                try:
                    if self.injector is not None:
                        with self.injector.maintenance():
                            report = self.warehouse.maintainer.materialize(view)
                    else:
                        report = self.warehouse.maintainer.materialize(view)
                except ReproError as exc:
                    spent = self.warehouse.database.io.since(io_before).total
                    self.clock.advance(float(spent))
                    self._drain_delays()
                    error = str(exc)
                    self._counter("resilience.refresh.failures", view=view.name)
                    if attempt < retry.max_attempts:
                        backoff = retry.backoff_ticks(
                            attempt, self._rng.random()
                        )
                        if deadline is not None and (
                            self.clock.now + backoff > deadline
                        ):
                            error = (
                                f"timeout after {attempt} attempts: {error}"
                            )
                            break
                        self._counter(
                            "resilience.refresh.retries", view=view.name
                        )
                        self._journal(
                            "resilience.refresh.retry",
                            view=view.name,
                            attempt=attempt,
                            backoff=backoff,
                            error=error,
                        )
                        self.clock.advance(backoff)
                        continue
                    break
                else:
                    self.clock.advance(float(report.io.total))
                    self._drain_delays()
                    self._breaker_event(view.name, breaker, breaker.record_success)
                    self.warehouse._mark_fresh(view)
                    self.warehouse.engine.indexes.invalidate(view.name)
                    self._epochs[view.name] = self.epoch(view.name) + 1
                    self._journal(
                        "resilience.epoch.advance",
                        view=view.name,
                        epoch=self._epochs[view.name],
                    )
                    self._gauge(view.name, breaker)
                    ticks = self.clock.now - started
                    self._histogram(
                        "resilience.refresh.ticks", view.name, ticks
                    )
                    span.set(
                        status="refreshed", attempts=attempt,
                        epoch=self._epochs[view.name],
                    )
                    self._journal(
                        "resilience.refresh.end",
                        view=view.name,
                        status="refreshed",
                        attempts=attempt,
                    )
                    return RefreshOutcome(
                        view.name, "refreshed", attempt, ticks,
                        self._epochs[view.name],
                    )

            self._breaker_event(view.name, breaker, breaker.record_failure)
            self._gauge(view.name, breaker)
            ticks = self.clock.now - started
            self._histogram("resilience.refresh.ticks", view.name, ticks)
            span.set(status="failed", attempts=attempts, error=error)
            self._journal(
                "resilience.refresh.end",
                view=view.name,
                status="failed",
                attempts=attempts,
                error=error,
            )
            return RefreshOutcome(
                view.name, "failed", attempts, ticks,
                self.epoch(view.name), error=error,
            )

    def refresh_partitions(
        self,
        view: "MaterializedView",
        shards: Optional[Tuple[int, ...]] = None,
        workers: int = 1,
        executor: str = "auto",
    ) -> List[RefreshOutcome]:
        """Partition-wise refresh of a co-partitioned view.

        Refreshes one shard table (``mv_X#s``) per requested shard —
        defaulting to exactly the *stale* shards, i.e. the partitions
        named by update batches since the last refresh.  Every shard
        gets its own circuit breaker and freshness epoch on the shared
        logical clock.

        ``workers > 1`` computes shard refreshes concurrently (each task
        against private table clones and a private I/O counter) and then
        commits serially in shard order, so stored rows, measured I/O,
        and the clock trajectory are bit-identical to a serial run.
        With a fault injector attached the scheduler always runs the
        serial path: seeded fault draws must happen in deterministic
        order.
        """
        manager = getattr(self.warehouse, "sharding", None)
        if manager is None:
            raise ResilienceError(
                "partition-wise refresh needs a sharded warehouse; "
                "call DataWarehouse.enable_sharding() first"
            )
        base = manager.copartition_base(view)
        if base is None:
            raise ResilienceError(
                f"view {view.name!r} is not co-partitioned with any "
                f"sharded relation"
            )
        scheme = manager.catalog.require_scheme(base)
        if shards is None:
            if manager.view_shards_available(view):
                shards = manager.stale_shards(view)
            else:
                shards = scheme.all_shards
        shards = tuple(sorted(shards))
        if not shards:
            return []
        shard_views = [manager.shard_view(view, shard) for shard in shards]

        if workers <= 1 or self.injector is not None:
            outcomes = []
            for shard, shard_view in zip(shards, shard_views):
                outcome = self.refresh_view(shard_view)
                if outcome.ok:
                    manager.record_fresh(view, shard)
                outcomes.append(outcome)
            return outcomes

        from repro.executor.engine import Database, ExecutionEngine
        from repro.executor.physical import charge_materialize
        from repro.parallel import resolve_executor
        from repro.storage.table import Table

        database = self.warehouse.database
        engine = self.warehouse.engine

        def compute(shard_view):
            # Clone every input into a private database with a private
            # I/O counter: tasks share nothing, so thread scheduling
            # cannot reorder charges on the real counter.
            private = Database()
            for relation in sorted(shard_view.plan.base_relations()):
                source = database.table(relation)
                clone = Table(source.schema, source.blocking_factor)
                clone.insert_many(source.rows(), count_io=False)
                private.register(relation, clone)
            task_engine = ExecutionEngine(
                private,
                engine.join_method,
                engine=engine.engine,
                batch_size=engine.batch_size,
                lint=engine.lint,
            )
            result = task_engine.execute(shard_view.plan)
            stored = Table(
                result.schema, result.blocking_factor, io=private.io
            )
            stored.insert_many(result.rows(), count_io=False)
            charge_materialize(stored)
            return stored, private.io.snapshot()

        pool = resolve_executor(executor, workers, closures=True)
        computed = pool.map(compute, shard_views)

        # Serial commit in shard order: the shared counter, clock,
        # breakers and epochs advance exactly as a serial run would.
        outcomes = []
        for shard, shard_view, (stored, spent) in zip(
            shards, shard_views, computed
        ):
            started = self.clock.now
            breaker = self.breaker(shard_view.name)
            database.io.read_blocks(spent.reads)
            database.io.write_blocks(spent.writes)
            database.register(shard_view.name, stored)
            self.clock.advance(float(spent.total))
            self._breaker_event(
                shard_view.name, breaker, breaker.record_success
            )
            self.warehouse._mark_fresh(shard_view)
            self.warehouse.engine.indexes.invalidate(shard_view.name)
            self._epochs[shard_view.name] = self.epoch(shard_view.name) + 1
            manager.record_fresh(view, shard)
            self._journal(
                "resilience.epoch.advance",
                view=shard_view.name,
                epoch=self._epochs[shard_view.name],
            )
            self._gauge(shard_view.name, breaker)
            outcomes.append(
                RefreshOutcome(
                    shard_view.name,
                    "refreshed",
                    1,
                    self.clock.now - started,
                    self._epochs[shard_view.name],
                )
            )
        return outcomes

    def refresh_all(self) -> List[RefreshOutcome]:
        """One scheduler pass over every installed view (name order)."""
        outcomes = []
        for view in sorted(self.warehouse.views, key=lambda v: v.name):
            outcomes.append(self.refresh_view(view))
        return outcomes

    def refresh_until_converged(
        self, max_passes: int = 10
    ) -> List[RefreshOutcome]:
        """Repeat scheduler passes until every view is fresh (or give up).

        Between passes the clock keeps advancing, so open breakers get
        their half-open probe on a later pass.  Returns the outcomes of
        the final pass.
        """
        outcomes: List[RefreshOutcome] = []
        for _ in range(max_passes):
            stale = [
                view
                for view in sorted(self.warehouse.views, key=lambda v: v.name)
                if not self.warehouse.is_fresh(view)
            ]
            if not stale:
                break
            outcomes = [self.refresh_view(view) for view in stale]
            if all(o.ok for o in outcomes):
                break
            # Let open breakers age toward their half-open probe.
            self.clock.advance(self.config.breaker.reset_ticks)
        return outcomes

    # ------------------------------------------------------------- streaming
    def note_io(self, blocks: float) -> float:
        """Advance the logical clock for I/O performed outside a refresh.

        The CDC drain loop evaluates deltas itself (no
        :meth:`refresh_view` call) but must still move shared time — the
        breakers' reset windows and the bounded-staleness tick clock all
        read this clock.  Injected delay ticks accumulated meanwhile are
        drained as well.  Returns the new time.
        """
        self.clock.advance(float(blocks))
        self._drain_delays()
        return self.clock.now

    def degrade(self, view: "MaterializedView", reason: str) -> RefreshOutcome:
        """Fall back from streaming to a batch refresh of ``view``.

        Called by the :class:`~repro.cdc.streaming.StreamingMaintainer`
        when a view cannot absorb a delta (propagation fault, retention
        gap, recompute-only edge).  Records the failure against the
        view's circuit breaker only when the cause was a fault — a
        planned recompute is not an error — then runs the normal
        retry/backoff refresh path.
        """
        self._counter("cdc.degraded", view=view.name, reason=reason)
        self._journal("cdc.degrade", view=view.name, reason=reason)
        return self.refresh_view(view)

    # --------------------------------------------------------------- metrics
    def _drain_delays(self) -> None:
        if self.injector is not None:
            self.clock.advance(self.injector.drain_delay_ticks())

    def _journal(self, kind: str, **attributes) -> None:
        """One flight-recorder event stamped with the logical clock."""
        if obs.enabled():
            obs.journal_event(kind, tick=self.clock.now, **attributes)

    def _breaker_event(self, view_name: str, breaker: CircuitBreaker, action) -> None:
        """Run a breaker state change, journaling any observable transition."""
        before = breaker.state
        action()
        after = breaker.state
        if after != before:
            self._journal(
                "resilience.breaker.transition",
                view=view_name,
                from_state=before,
                to_state=after,
            )

    @staticmethod
    def _counter(name: str, **labels: str) -> None:
        if obs.enabled():
            obs.metrics().counter(name, **labels).inc()

    @staticmethod
    def _histogram(name: str, view: str, value: float) -> None:
        if obs.enabled():
            obs.metrics().histogram(name, view=view).observe(value)

    def _gauge(self, view_name: str, breaker: CircuitBreaker) -> None:
        if obs.enabled():
            obs.metrics().gauge(
                "resilience.breaker_state", view=view_name
            ).set(_STATE_CODES[breaker.state])
