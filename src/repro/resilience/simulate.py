"""End-to-end fault simulation: design, load, inject, refresh, serve.

:func:`simulate_faults` drives a complete warehouse lifecycle under a
seeded :class:`~repro.resilience.faults.FaultPolicy`: design the views,
load the paper-scale data, then alternate base-relation updates,
scheduled refreshes (with retries/backoff/breakers) and foreground
queries.  It returns a JSON-safe summary the ``repro simulate --faults``
CLI prints and the resilience test suite asserts on — including
bit-identical reproducibility for a fixed seed.

Every query answer is cross-checked against a view-free execution of
the same query over the *served* snapshot semantics: a query must
return either the fresh answer or the answer as of the view's last
successful refresh (stale-but-consistent), never anything else.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.resilience.config import ResilienceConfig
from repro.resilience.faults import FaultInjector, FaultPolicy
from repro.resilience.scheduler import RefreshScheduler

__all__ = ["FaultSimulationResult", "simulate_faults"]


@dataclass
class FaultSimulationResult:
    """Summary of one seeded fault-injection run."""

    workload: str
    seed: int
    rounds: int
    refreshes_attempted: int = 0
    refreshes_succeeded: int = 0
    refreshes_failed: int = 0
    refreshes_skipped: int = 0
    retries: int = 0
    faults_injected: Dict[str, float] = field(default_factory=dict)
    queries_run: int = 0
    queries_fresh: int = 0
    queries_stale: int = 0
    queries_degraded: int = 0
    consistency_violations: int = 0
    converged: bool = False
    final_epochs: Dict[str, int] = field(default_factory=dict)
    final_ticks: float = 0.0

    @property
    def ok(self) -> bool:
        """Refreshes converged and no query broke the staleness contract."""
        return self.converged and self.consistency_violations == 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "workload": self.workload,
            "seed": self.seed,
            "rounds": self.rounds,
            "refreshes": {
                "attempted": self.refreshes_attempted,
                "succeeded": self.refreshes_succeeded,
                "failed": self.refreshes_failed,
                "skipped": self.refreshes_skipped,
                "retries": self.retries,
            },
            "faults_injected": dict(self.faults_injected),
            "queries": {
                "run": self.queries_run,
                "fresh": self.queries_fresh,
                "stale": self.queries_stale,
                "degraded": self.queries_degraded,
                "consistency_violations": self.consistency_violations,
            },
            "converged": self.converged,
            "final_epochs": dict(self.final_epochs),
            "final_ticks": self.final_ticks,
        }


def simulate_faults(
    failure_rate: float = 0.3,
    seed: int = 0,
    rounds: int = 3,
    scale: float = 0.02,
    resilience: Optional[ResilienceConfig] = None,
    workload=None,
    rows: Optional[Mapping[str, List[Mapping[str, object]]]] = None,
) -> FaultSimulationResult:
    """Run the seeded fault-injection lifecycle and summarize it.

    Each round: append a delta to the most-frequently-updated relation
    (making dependent views stale), run every query through
    :meth:`~repro.warehouse.warehouse.DataWarehouse.serve` while the
    failure window is open, then run scheduler passes until the views
    converge back to fresh.  ``failure_rate`` applies to every stored
    relation during maintenance only, so foreground queries exercise
    the staleness/degradation path rather than failing outright.
    """
    from repro.mvpp.config import DesignConfig
    from repro.warehouse import DataWarehouse
    from repro.workload import paper_workload
    from repro.workload.datagen import paper_rows

    if workload is None:
        workload = paper_workload()
    if rows is None:
        rows = paper_rows(scale=scale, seed=seed)

    warehouse = DataWarehouse.from_workload(workload)
    warehouse.design(DesignConfig(seed=seed))
    for relation, relation_rows in rows.items():
        warehouse.load(relation, relation_rows)
    warehouse.materialize()

    policy = FaultPolicy(storage_failure_rate=failure_rate, seed=seed)
    injector = warehouse.attach_faults(policy)
    config = resilience or ResilienceConfig(seed=seed)
    scheduler = warehouse.scheduler(config, injector=injector)

    result = FaultSimulationResult(
        workload=workload.name, seed=seed, rounds=rounds
    )

    target = max(
        rows, key=lambda name: (workload.update_frequency(name), name)
    )
    delta = rows[target][: max(1, len(rows[target]) // 50)]

    for round_index in range(rounds):
        warehouse.apply_update(target, delta, policy="defer")

        # Failure window: refreshes may be failing/lagging, but queries
        # must still be answered — fresh, stale-but-consistent, or
        # degraded to base relations.
        for spec in workload.queries:
            served = warehouse.serve(spec.name)
            result.queries_run += 1
            if served.degraded:
                result.queries_degraded += 1
            elif served.max_staleness > 0:
                result.queries_stale += 1
            else:
                result.queries_fresh += 1
            if not _consistent(warehouse, spec.name, served):
                result.consistency_violations += 1

        outcomes = scheduler.refresh_until_converged()
        for outcome in outcomes:
            result.refreshes_attempted += outcome.attempts
            if outcome.status == "refreshed":
                result.refreshes_succeeded += 1
                result.retries += outcome.attempts - 1
            elif outcome.status == "failed":
                result.refreshes_failed += 1
                result.retries += outcome.attempts - 1
            else:
                result.refreshes_skipped += 1

    result.converged = not warehouse.stale_views()
    result.faults_injected = injector.stats()
    result.final_epochs = {
        view.name: scheduler.epoch(view.name) for view in warehouse.views
    }
    result.final_ticks = scheduler.clock.now
    return result


def _consistent(warehouse, query_name: str, served) -> bool:
    """A served answer must equal the fresh answer or a stale epoch's.

    The never-partial contract: compare the served rows against the
    current base data's answer (fresh) — if the answer used stale views
    it may differ, but then every view it read must itself be a
    complete, previously-committed snapshot (the maintainer only swaps
    complete shadow tables, so row counts of a stale view must match
    its last committed refresh, which :meth:`serve` records).
    """
    from repro.algebra.operators import Relation

    if served.max_staleness == 0 and not served.degraded:
        fresh, _ = warehouse.execute(query_name, use_views=False)
        return _same_rows(served.table.rows(), fresh.rows())
    if served.degraded or not served.views_used:
        # Degraded answers come straight from base relations: they must
        # equal the fresh answer exactly.
        fresh, _ = warehouse.execute(query_name, use_views=False)
        return _same_rows(served.table.rows(), fresh.rows())
    # Stale-but-consistent: the answer is complete w.r.t. the snapshot
    # the views committed last.  We verify no partially-refreshed view
    # was read: each used view's stored cardinality must match the
    # cardinality recorded at its last successful swap.
    for name in served.views_used:
        if name not in warehouse.database:
            return False
        recorded = warehouse.committed_cardinality(name)
        if recorded is not None and (
            warehouse.database.table(name).cardinality != recorded
        ):
            return False
    return True


def _same_rows(a: List[Mapping[str, object]], b: List[Mapping[str, object]]) -> bool:
    def key(rows):
        return sorted(
            tuple(sorted(row.items(), key=lambda kv: kv[0])) for row in rows
        )

    return key(a) == key(b)
