"""SQL front end: lexer, parser, and translator to relational algebra."""

from repro.sql.ast_nodes import (
    AggregateCall,
    BooleanCondition,
    ColumnName,
    ComparisonCondition,
    LiteralValue,
    NotCondition,
    SelectItem,
    SelectStatement,
    TableRef,
)
from repro.sql.lexer import Token, TokenType, tokenize
from repro.sql.parser import parse
from repro.sql.translator import parse_query, translate

__all__ = [
    "AggregateCall",
    "BooleanCondition",
    "ColumnName",
    "ComparisonCondition",
    "LiteralValue",
    "NotCondition",
    "SelectItem",
    "SelectStatement",
    "TableRef",
    "Token",
    "TokenType",
    "parse",
    "parse_query",
    "tokenize",
    "translate",
]
